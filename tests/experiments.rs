//! Small-scale regenerations of the paper's experiments, asserting the
//! qualitative claims each table/figure makes.

use hotpath::prelude::*;

fn record(w: &Workload) -> (PathStream, PathTable) {
    let mut ex = PathExtractor::new(StreamingSink::new());
    Vm::new(&w.program).run(&mut ex).expect("runs");
    let (sink, table) = ex.into_parts();
    (sink.into_stream(), table)
}

/// Table 1's spectrum: compress-like benchmarks concentrate their flow in
/// few hot paths; gcc spreads it across many weakly-weighted paths.
#[test]
fn table1_dominance_spectrum() {
    let compress = build(WorkloadName::Compress, Scale::Smoke);
    let gcc = build(WorkloadName::Gcc, Scale::Smoke);
    let (cs, _) = record(&compress);
    let (gs, gt) = record(&gcc);
    let c_hot = cs.to_profile().hot_set(0.001);
    let g_hot = gs.to_profile().hot_set(0.001);
    assert!(
        c_hot.flow_percentage() > 95.0,
        "compress hot flow {:.1}%",
        c_hot.flow_percentage()
    );
    assert!(
        g_hot.flow_percentage() < c_hot.flow_percentage(),
        "gcc must be less dominant than compress"
    );
    assert!(gt.len() > 500, "gcc has a large path population");
}

/// Table 2 / Figure 4: NET's counter space (unique heads) is a fraction of
/// the path count, for every benchmark.
#[test]
fn fig4_counter_space_reduction() {
    let mut ratios = Vec::new();
    for w in suite(Scale::Smoke) {
        let (_, table) = record(&w);
        let ratio = table.unique_heads() as f64 / table.len().max(1) as f64;
        assert!(
            ratio <= 1.0,
            "{}: heads {} cannot exceed paths {}",
            w.name,
            table.unique_heads(),
            table.len()
        );
        ratios.push(ratio);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        avg < 0.9,
        "average counter-space ratio {avg:.2} must be < 1"
    );
}

/// Figure 2's headline: at practically relevant delays, NET's hit rate is
/// comparable to path-profile based prediction's.
#[test]
fn fig2_net_matches_path_profile_at_low_delay() {
    for name in [WorkloadName::Compress, WorkloadName::Deltablue] {
        let w = build(name, Scale::Smoke);
        let (stream, table) = record(&w);
        let hot = stream.to_profile().hot_set(0.001);
        let net = evaluate(&stream, &table, &hot, &mut NetPredictor::new(10));
        let pp = evaluate(&stream, &table, &hot, &mut PathProfilePredictor::new(10));
        assert!(
            (net.hit_rate() - pp.hit_rate()).abs() < 5.0,
            "{name}: NET {:.1}% vs PP {:.1}%",
            net.hit_rate(),
            pp.hit_rate()
        );
        assert!(
            net.hit_rate() > 85.0,
            "{name}: NET hit {:.1}%",
            net.hit_rate()
        );
    }
}

/// Figure 2's other headline: hit rate decays as the prediction delay
/// (profiled flow) grows — the missed-opportunity-cost argument.
#[test]
fn fig2_hit_rate_decays_with_delay() {
    let w = build(WorkloadName::Compress, Scale::Smoke);
    let (stream, table) = record(&w);
    let hot = stream.to_profile().hot_set(0.001);
    let pts = sweep(
        &stream,
        &table,
        &hot,
        SchemeKind::Net,
        &[10, 1_000, 100_000],
    );
    assert!(pts[0].outcome.hit_rate() > pts[1].outcome.hit_rate());
    assert!(pts[1].outcome.hit_rate() >= pts[2].outcome.hit_rate());
    assert!(pts[0].outcome.profiled_flow_pct() < pts[2].outcome.profiled_flow_pct());
}

/// Figure 3: noise decreases as the delay grows (longer profiling rules
/// out cold paths).
#[test]
fn fig3_noise_decays_with_delay() {
    let w = build(WorkloadName::Gcc, Scale::Smoke);
    let (stream, table) = record(&w);
    let hot = stream.to_profile().hot_set(0.001);
    for scheme in [SchemeKind::Net, SchemeKind::PathProfile] {
        let pts = sweep(&stream, &table, &hot, scheme, &[5, 500]);
        assert!(
            pts[0].outcome.noise_rate() >= pts[1].outcome.noise_rate(),
            "{scheme}: noise {:.1}% -> {:.1}%",
            pts[0].outcome.noise_rate(),
            pts[1].outcome.noise_rate()
        );
    }
}

/// Figure 5's mechanism: Dynamo with NET beats pure interpretation by a
/// wide margin on a trace-friendly benchmark, and NET's profiling op count
/// stays far below path-profile's.
#[test]
fn fig5_dynamo_net_beats_interpretation() {
    let w = build(WorkloadName::Deltablue, Scale::Smoke);
    let native = run_native(&w.program).unwrap();
    let net = run_dynamo(&w.program, &DynamoConfig::new(Scheme::Net, 50)).unwrap();
    // Pure interpretation = absurd delay (nothing ever cached).
    let interp = run_dynamo(&w.program, &DynamoConfig::new(Scheme::Net, u64::MAX)).unwrap();
    assert!(net.cycles.total() < interp.cycles.total() / 2.0);
    assert!(net.speedup_percent(native) > interp.speedup_percent(native));
    let pp = run_dynamo(&w.program, &DynamoConfig::new(Scheme::PathProfile, 50)).unwrap();
    assert!(
        pp.cycles.profiling > net.cycles.profiling * 5.0,
        "path profiling ops must dwarf NET's: {} vs {}",
        pp.cycles.profiling,
        net.cycles.profiling
    );
}

/// §6: gcc churns through fragments while compress settles into a handful;
/// under the same tight fragment budget the bail-out heuristic fires for
/// gcc and not for compress.
#[test]
fn dynamo_bails_out_on_gcc_like_workloads() {
    let tight = |w: &Workload| {
        let mut cfg = DynamoConfig::new(Scheme::Net, 50);
        cfg.bailout = Some(hotpath::dynamo::BailoutPolicy {
            check_every_paths: 5_000,
            max_installs: 50,
        });
        run_dynamo(&w.program, &cfg).unwrap()
    };
    let gcc = tight(&build(WorkloadName::Gcc, Scale::Small));
    assert!(gcc.bailed_out, "gcc should trigger the bail-out heuristic");
    let compress = tight(&build(WorkloadName::Compress, Scale::Small));
    assert!(!compress.bailed_out, "compress must stay under the budget");
}
