//! Trace-optimizer equivalence: every optimization level must be an
//! *invisible* transformation. Guard elision, entry-guard hoisting,
//! constant folding, exit-stub sinking, and direct-threaded dispatch all
//! rewrite the installed fragment — and none of it may change a single
//! observable bit relative to plain interpretation, at any level.
//!
//! Layers of coverage:
//!
//! 1. **Workload sweep.** All nine benchmarks at Small scale, at every
//!    [`OptLevel`]: `RunStats`, final memory, and every global register
//!    bit-identical between `Vm::run` and the optimized linked backend.
//! 2. **Pass corners.** Crafted programs pin each mechanism: aliased
//!    guards eliding through a `Mov` chain, an entry guard hoisted out
//!    of a loop that still takes its guard-fail exit, links severed by a
//!    flush mid-optimized-complex, and re-optimization after a flush.
//! 3. **Accounting.** Fuel exhaustion stays position-exact under block
//!    merging, and end-to-end guard executions never increase with the
//!    optimizer on.

use hotpath::dynamo::{run_dynamo_linked, DynamoConfig, LinkedEngine, Scheme};
use hotpath::ir::builder::{FunctionBuilder, ProgramBuilder};
use hotpath::ir::{CmpOp, GlobalReg, Program};
use hotpath::vm::{
    BlockEvent, ExecutionObserver, NullObserver, OptLevel, RunConfig, RunStats, ScriptedController,
    TraceCommand, TraceController, TraceExcursion, Vm, VmError,
};
use hotpath::workloads::{suite, Scale};

const LEVELS: [OptLevel; 3] = [OptLevel::None, OptLevel::Guards, OptLevel::Full];

/// Runs `program` plain and linked-at-`level` (under `engine`), asserting
/// stats, memory, and globals are bit-identical; returns the shared stats.
fn assert_bit_identical_at<C: TraceController>(
    program: &Program,
    level: OptLevel,
    engine: &mut C,
    tag: &str,
) -> RunStats {
    let mut plain_vm = Vm::new(program);
    let plain = plain_vm.run(&mut NullObserver).unwrap();

    let mut linked_vm = Vm::new(program).with_opt_level(level);
    let linked = linked_vm.run_linked(engine).unwrap();

    assert_eq!(plain, linked, "{tag}/{}: RunStats", level.as_str());
    assert_eq!(
        plain_vm.memory(),
        linked_vm.memory(),
        "{tag}/{}: final memory",
        level.as_str()
    );
    for g in 0..GlobalReg::COUNT {
        let g = GlobalReg::new(g as u8);
        assert_eq!(
            plain_vm.global(g),
            linked_vm.global(g),
            "{tag}/{}: global {g:?}",
            level.as_str()
        );
    }
    linked
}

#[test]
fn all_nine_workloads_bit_identical_at_every_level() {
    for level in LEVELS {
        for w in suite(Scale::Small) {
            let mut engine =
                LinkedEngine::new(DynamoConfig::new(Scheme::Net, 50).with_opt_level(level));
            assert_bit_identical_at(&w.program, level, &mut engine, &format!("{:?}", w.name));
        }
    }
}

/// Block ids, in build order: 0 = implicit entry, then `new_block` order:
/// header=1, body=2, hot=3, latch=4, exit=5. The loop condition `c` is
/// `Mov`-copied in the body and the copy is guarded again — on-trace the
/// second guard is always satisfied by the first, so `OptLevel::Guards`
/// must elide it through the alias.
fn aliased_guard_loop(trip: i64) -> Program {
    let mut fb = FunctionBuilder::new("main");
    let i = fb.reg();
    let x = fb.reg();
    let header = fb.new_block();
    let body = fb.new_block();
    let hot = fb.new_block();
    let latch = fb.new_block();
    let exit = fb.new_block();
    fb.const_(i, 0);
    fb.const_(x, 0);
    fb.jump(header);
    fb.switch_to(header);
    let c = fb.cmp_imm(CmpOp::Lt, i, trip);
    fb.branch(c, body, exit);
    fb.switch_to(body);
    let c2 = fb.reg();
    fb.mov(c2, c);
    fb.branch(c2, hot, exit);
    fb.switch_to(hot);
    fb.add_imm(x, x, 3);
    fb.jump(latch);
    fb.switch_to(latch);
    fb.add_imm(i, i, 1);
    fb.jump(header);
    fb.switch_to(exit);
    fb.set_global(GlobalReg::new(0), x);
    fb.halt();
    let mut pb = ProgramBuilder::new();
    pb.add_function(fb).unwrap();
    pb.finish().unwrap()
}

/// A guard on a `Mov` alias of an already-guarded register is redundant:
/// `OptLevel::Guards` elides it, strictly reducing per-iteration guard
/// executions while staying bit-identical.
#[test]
fn aliased_guards_elide_through_copies() {
    let p = aliased_guard_loop(1_000);
    let trace = vec![1, 2, 3, 4];

    let mut guard_execs = Vec::new();
    for level in LEVELS {
        let mut ctl = ScriptedController::new(vec![TraceCommand::Install(trace.clone())]);
        assert_bit_identical_at(&p, level, &mut ctl, "aliased");
        assert!(!ctl.excursions.is_empty(), "trace must run at {level:?}");
        guard_execs.push(ctl.excursions.iter().map(|e| e.guard_execs).sum::<u64>());
    }
    assert!(
        guard_execs[1] < guard_execs[0],
        "Guards must elide the aliased guard: {} vs {} at None",
        guard_execs[1],
        guard_execs[0]
    );
    assert!(
        guard_execs[2] <= guard_execs[1],
        "Full must not reintroduce guards: {guard_execs:?}"
    );
}

/// Block ids, in build order: 0 = implicit entry, then outer_header=1,
/// outer_body=2, inner_header=3, inner_body=4, fast=5, slow=6,
/// inner_latch=7, outer_latch=8, exit=9.
///
/// Two phases of an outer loop run the same inner loop with `flag` = 1
/// then `flag` = 0. A trace over [3, 4, 5, 7] guards `flag` every
/// iteration, but `flag` is never defined inside the (cyclic, call-free)
/// trace — so `OptLevel::Guards` hoists it to a single entry guard. The
/// trip-count guard stays inline and takes its guard-fail exit at the
/// end of each phase; phase two then fails the hoisted entry guard at
/// dispatch and must fall back to interpretation, bit-identically.
fn phased_flag_loop(trip: i64) -> Program {
    let mut fb = FunctionBuilder::new("main");
    let g = fb.reg();
    let x = fb.reg();
    let i = fb.reg();
    let flag = fb.reg();
    let outer_header = fb.new_block();
    let outer_body = fb.new_block();
    let inner_header = fb.new_block();
    let inner_body = fb.new_block();
    let fast = fb.new_block();
    let slow = fb.new_block();
    let inner_latch = fb.new_block();
    let outer_latch = fb.new_block();
    let exit = fb.new_block();
    fb.const_(g, 0);
    fb.const_(x, 0);
    fb.jump(outer_header);
    fb.switch_to(outer_header);
    let oc = fb.cmp_imm(CmpOp::Lt, g, 2);
    fb.branch(oc, outer_body, exit);
    fb.switch_to(outer_body);
    let fc = fb.cmp_imm(CmpOp::Eq, g, 0);
    fb.mov(flag, fc);
    fb.const_(i, 0);
    fb.jump(inner_header);
    fb.switch_to(inner_header);
    let c = fb.cmp_imm(CmpOp::Lt, i, trip);
    fb.branch(c, inner_body, outer_latch);
    fb.switch_to(inner_body);
    fb.branch(flag, fast, slow);
    fb.switch_to(fast);
    fb.add_imm(x, x, 1);
    fb.jump(inner_latch);
    fb.switch_to(slow);
    fb.add_imm(x, x, 2);
    fb.jump(inner_latch);
    fb.switch_to(inner_latch);
    fb.add_imm(i, i, 1);
    fb.jump(inner_header);
    fb.switch_to(outer_latch);
    fb.add_imm(g, g, 1);
    fb.jump(outer_header);
    fb.switch_to(exit);
    fb.set_global(GlobalReg::new(0), x);
    fb.halt();
    let mut pb = ProgramBuilder::new();
    pb.add_function(fb).unwrap();
    pb.finish().unwrap()
}

/// Hoisting a loop-invariant guard to the trace entry survives the
/// guard-fail exit of the *remaining* inline guard, and a later dispatch
/// with the invariant flipped is rejected at entry (interpreting instead
/// of entering a trace whose guard would fail every time).
#[test]
fn hoisted_entry_guard_survives_guard_fail_exit_and_rejects_at_dispatch() {
    let trip = 500;
    let p = phased_flag_loop(trip);
    // The fast-path inner-loop trace; `flag` is loop-invariant inside it.
    let trace = vec![3, 4, 5, 7];

    let mut excursions = Vec::new();
    let mut interpreted = Vec::new();
    for level in LEVELS {
        let mut ctl = ScriptedController::new(vec![TraceCommand::Install(trace.clone())]);
        assert_bit_identical_at(&p, level, &mut ctl, "phased-flag");
        excursions.push(ctl.excursions.len());
        interpreted.push(ctl.interpreted);
    }

    // Without hoisting, phase two enters the trace every iteration and
    // fails the flag guard mid-trace. With the guard hoisted, dispatch
    // rejects the trace up front — far fewer excursions, more
    // interpretation, identical results.
    assert!(
        excursions[0] > trip as usize / 2,
        "at None phase two should re-enter and guard-fail repeatedly: {excursions:?}"
    );
    assert!(
        excursions[1] < 10,
        "at Guards phase two should be rejected at dispatch: {excursions:?}"
    );
    assert!(
        interpreted[1] > interpreted[0],
        "rejected dispatches interpret instead: {interpreted:?}"
    );
}

/// A controller that installs fragments up front, flushes after a fixed
/// number of excursions, and optionally reinstalls afterwards.
struct FlushAfter {
    after: usize,
    reinstall: Vec<Vec<u32>>,
    pending: Vec<TraceCommand>,
    excursions: Vec<TraceExcursion>,
    interpreted: u64,
}

impl ExecutionObserver for FlushAfter {
    fn on_block(&mut self, _event: &BlockEvent) {
        self.interpreted += 1;
    }
}

impl TraceController for FlushAfter {
    fn on_trace_exit(&mut self, excursion: &TraceExcursion) {
        self.excursions.push(*excursion);
        if self.excursions.len() == self.after {
            for blocks in self.reinstall.drain(..) {
                self.pending.push(TraceCommand::Install(blocks));
            }
            self.pending.push(TraceCommand::Flush);
        }
    }

    fn poll_command(&mut self) -> Option<TraceCommand> {
        self.pending.pop()
    }
}

fn two_path_loop(trip: i64) -> Program {
    let mut fb = FunctionBuilder::new("main");
    let i = fb.reg();
    let header = fb.new_block();
    let body = fb.new_block();
    let odd = fb.new_block();
    let even = fb.new_block();
    let latch = fb.new_block();
    let exit = fb.new_block();
    fb.const_(i, 0);
    fb.jump(header);
    fb.switch_to(header);
    let c = fb.cmp_imm(CmpOp::Lt, i, trip);
    fb.branch(c, body, exit);
    fb.switch_to(body);
    let par = fb.reg();
    fb.and_imm(par, i, 1);
    fb.branch(par, odd, even);
    fb.switch_to(odd);
    fb.jump(latch);
    fb.switch_to(even);
    fb.jump(latch);
    fb.switch_to(latch);
    fb.add_imm(i, i, 1);
    fb.jump(header);
    fb.switch_to(exit);
    fb.halt();
    let mut pb = ProgramBuilder::new();
    pb.add_function(fb).unwrap();
    pb.finish().unwrap()
}

/// Block ids, in build order: 0 = implicit entry, then outer_header=1,
/// outer_body=2, inner_header=3, inner_body=4, odd=5, even=6,
/// inner_latch=7, outer_latch=8, exit=9. The inner parity loop restarts
/// once per outer iteration, so a fully-linked inner complex produces one
/// excursion per outer iteration (entered at the inner header, exited
/// when the inner trip guard fails toward the uncovered outer latch).
fn nested_two_path_loop(outer_trip: i64, inner_trip: i64) -> Program {
    let mut fb = FunctionBuilder::new("main");
    let o = fb.reg();
    let i = fb.reg();
    let outer_header = fb.new_block();
    let outer_body = fb.new_block();
    let inner_header = fb.new_block();
    let inner_body = fb.new_block();
    let odd = fb.new_block();
    let even = fb.new_block();
    let inner_latch = fb.new_block();
    let outer_latch = fb.new_block();
    let exit = fb.new_block();
    fb.const_(o, 0);
    fb.jump(outer_header);
    fb.switch_to(outer_header);
    let oc = fb.cmp_imm(CmpOp::Lt, o, outer_trip);
    fb.branch(oc, outer_body, exit);
    fb.switch_to(outer_body);
    fb.const_(i, 0);
    fb.jump(inner_header);
    fb.switch_to(inner_header);
    let c = fb.cmp_imm(CmpOp::Lt, i, inner_trip);
    fb.branch(c, inner_body, outer_latch);
    fb.switch_to(inner_body);
    let par = fb.reg();
    fb.and_imm(par, i, 1);
    fb.branch(par, odd, even);
    fb.switch_to(odd);
    fb.jump(inner_latch);
    fb.switch_to(even);
    fb.jump(inner_latch);
    fb.switch_to(inner_latch);
    fb.add_imm(i, i, 1);
    fb.jump(inner_header);
    fb.switch_to(outer_latch);
    fb.add_imm(o, o, 1);
    fb.jump(outer_header);
    fb.switch_to(exit);
    fb.halt();
    let mut pb = ProgramBuilder::new();
    pb.add_function(fb).unwrap();
    pb.finish().unwrap()
}

/// Flushing a linked, fully-optimized complex (primary + tail fragment,
/// chains patched, blocks merged) severs everything mid-run without
/// perturbing execution; the block ledger still balances because merged
/// steps report their original block counts.
#[test]
fn links_severed_mid_optimized_complex_is_bit_identical() {
    let p = nested_two_path_loop(20, 100);
    // Primary through the even parity, tail fragment for the odd one:
    // once linked, each outer iteration is one chained excursion.
    let mut ctl = FlushAfter {
        after: 5,
        reinstall: Vec::new(),
        pending: vec![
            TraceCommand::Install(vec![5, 7]),
            TraceCommand::Install(vec![3, 4, 6, 7]),
        ],
        excursions: Vec::new(),
        interpreted: 0,
    };
    let stats = assert_bit_identical_at(&p, OptLevel::Full, &mut ctl, "flush-optimized");
    assert_eq!(ctl.excursions.len(), 5, "no excursions after the flush");
    let links: u64 = ctl.excursions.iter().map(|e| e.links).sum();
    assert!(links > 100, "the complex must actually chain: {links}");
    let trace_blocks: u64 = ctl.excursions.iter().map(|e| e.blocks).sum();
    assert_eq!(
        trace_blocks + ctl.interpreted,
        stats.blocks_executed,
        "every block is either in an excursion or interpreted"
    );
}

/// After a flush, a reinstalled trace goes through the optimizer again
/// from scratch and keeps running correctly — re-optimization does not
/// depend on any state from the flushed incarnation.
#[test]
fn reinstall_after_flush_reoptimizes_cleanly() {
    let p = nested_two_path_loop(20, 100);
    let mut ctl = FlushAfter {
        after: 5,
        reinstall: vec![vec![3, 4, 6, 7], vec![5, 7]],
        pending: vec![
            TraceCommand::Install(vec![5, 7]),
            TraceCommand::Install(vec![3, 4, 6, 7]),
        ],
        excursions: Vec::new(),
        interpreted: 0,
    };
    let stats = assert_bit_identical_at(&p, OptLevel::Full, &mut ctl, "reinstall");
    assert!(
        ctl.excursions.len() > 5,
        "the reinstalled traces must run after the flush: {}",
        ctl.excursions.len()
    );
    let trace_blocks: u64 = ctl.excursions.iter().map(|e| e.blocks).sum();
    assert_eq!(trace_blocks + ctl.interpreted, stats.blocks_executed);
}

/// Fuel exhaustion is position-exact even when block merging collapses
/// several trace steps into one dispatch: the per-traversal fuel
/// precheck uses the original block count, so `OutOfFuel` fires at the
/// very same block as plain interpretation.
#[test]
fn fuel_exhaustion_is_exact_under_block_merging() {
    let p = two_path_loop(1_000);
    let config = RunConfig {
        max_blocks: 777,
        ..RunConfig::default()
    };

    let plain = Vm::new(&p)
        .with_config(config)
        .run(&mut NullObserver)
        .unwrap_err();
    for level in LEVELS {
        let mut ctl = ScriptedController::new(vec![TraceCommand::Install(vec![1, 2, 4, 5])]);
        let linked = Vm::new(&p)
            .with_config(config)
            .with_opt_level(level)
            .run_linked(&mut ctl)
            .unwrap_err();
        assert_eq!(plain, linked, "at {level:?}");
    }
    assert_eq!(plain, VmError::OutOfFuel { budget: 777 });
}

/// End to end through the full engine (NET prediction, real installs,
/// linking), optimization never *increases* guard executions and never
/// changes results.
#[test]
fn full_engine_guard_execs_never_increase() {
    let p = aliased_guard_loop(20_000);
    let mut baseline = None;
    for level in LEVELS {
        let config = DynamoConfig::new(Scheme::Net, 50).with_opt_level(level);
        let run = run_dynamo_linked(&p, &config).unwrap();
        match &baseline {
            None => baseline = Some(run.clone()),
            Some(base) => {
                assert_eq!(base.stats, run.stats, "stats at {level:?}");
                assert!(
                    run.outcome.guard_execs <= base.outcome.guard_execs,
                    "guard execs increased at {level:?}: {} vs {}",
                    run.outcome.guard_execs,
                    base.outcome.guard_execs
                );
            }
        }
    }
}
