//! Counter-table equivalence: the dense Vec-indexed profiling tables must
//! behave *exactly* like the original `HashMap` implementations.
//!
//! Two guards, over a real workload (`perl`/Small: 11 NET heads, 198
//! edges) and a generated multi-function program (30 heads, 134 edges):
//!
//! 1. **Golden values.** Counter spaces, prediction counts, profiling
//!    costs, and order-independent FNV checksums of the final counter
//!    contents, captured from the `HashMap`-backed implementations before
//!    the dense rewrite. Any behavioral drift — a lost counter, a changed
//!    reset, a different trace tie-break — moves at least one number.
//! 2. **Reference recomputation.** The edge profile is recomputed from a
//!    recorded trace with a plain `HashMap` right here in the test and
//!    compared entry by entry, so the dense representation is checked
//!    against an independent implementation, not just against history.

use std::collections::HashMap;

use hotpath::ir::gen::{generate, GenConfig};
use hotpath::ir::{BlockId, Layout, Program};
use hotpath::prelude::*;
use hotpath::profiles::{PathExecution, PathSink};
use hotpath::vm::{BlockEvent, ExecutionObserver, TraceRecorder};

/// Order-independent accumulation is deliberately NOT used: every checksum
/// below folds counters in ascending block-id order, which both the dense
/// and the hash-backed representations can produce via their getters.
fn mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x0000_0100_0000_01B3)
}

const FNV: u64 = 0xCBF2_9CE4_8422_2325;

/// Golden numbers captured from the `HashMap` implementations.
struct Golden {
    net_counter_space: usize,
    net_predictions: usize,
    net_increments: u64,
    net_checksum: u64,
    boa_counter_space: usize,
    boa_traces: usize,
    boa_increments: u64,
    boa_trace_checksum: u64,
    edge_count: usize,
    edge_transfers: u64,
    edge_block_checksum: u64,
    blocks_executed: u64,
}

const PERL_SMALL: Golden = Golden {
    net_counter_space: 11,
    net_predictions: 454,
    net_increments: 22_951,
    net_checksum: 0x72DD_029F_A6EB_53DC,
    boa_counter_space: 198,
    boa_traces: 17,
    boa_increments: 171_873,
    boa_trace_checksum: 0xEFB1_E779_D9D4_D2E7,
    edge_count: 198,
    edge_transfers: 171_873,
    edge_block_checksum: 0xD865_3659_A572_8015,
    blocks_executed: 171_874,
};

const GENERATED_A5: Golden = Golden {
    net_counter_space: 30,
    net_predictions: 59,
    net_increments: 346,
    net_checksum: 0x0F16_7CD1_BDFB_8DF5,
    boa_counter_space: 134,
    boa_traces: 21,
    boa_increments: 1_060,
    boa_trace_checksum: 0x713E_ECAE_5C7D_CC58,
    edge_count: 134,
    edge_transfers: 1_060,
    edge_block_checksum: 0x3A21_EE37_2FCC_C40C,
    blocks_executed: 1_061,
};

struct Feed(NetPredictor);

impl PathSink for Feed {
    fn on_path(&mut self, e: &PathExecution) {
        let _ = self.0.observe(e);
    }
}

fn check_against_golden(p: &Program, tau: u64, g: &Golden, tag: &str) {
    let nblocks = Layout::new(p).block_count();

    // NET head counters, fed by live path extraction.
    let mut ex = PathExtractor::new(Feed(NetPredictor::new(tau)));
    Vm::new(p).run(&mut ex).unwrap();
    let (Feed(net), _) = ex.into_parts();
    assert_eq!(
        net.counter_space(),
        g.net_counter_space,
        "{tag}: NET counter space"
    );
    assert_eq!(
        net.predictions(),
        g.net_predictions,
        "{tag}: NET predictions"
    );
    assert_eq!(
        net.cost().counter_increments,
        g.net_increments,
        "{tag}: NET increments"
    );
    let mut h = FNV;
    for b in 0..nblocks {
        let c = net.head_count(BlockId::new(b as u32));
        if c > 0 {
            h = mix(mix(h, b as u64), c);
        }
    }
    assert_eq!(h, g.net_checksum, "{tag}: NET head-counter contents");

    // Boa per-edge counters and argmax trace construction. The trace
    // checksum pins the tie-break order (last max wins) and the
    // first-seen successor ordering the HashMap version produced.
    let mut boa = BoaSelector::new(tau);
    Vm::new(p).run(&mut boa).unwrap();
    assert_eq!(
        boa.counter_space(),
        g.boa_counter_space,
        "{tag}: Boa counter space"
    );
    assert_eq!(boa.traces().len(), g.boa_traces, "{tag}: Boa trace count");
    assert_eq!(
        boa.cost().counter_increments,
        g.boa_increments,
        "{tag}: Boa increments"
    );
    let mut h = FNV;
    for t in boa.traces() {
        h = mix(h, t.len() as u64);
        for &b in t {
            h = mix(h, b as u64);
        }
    }
    assert_eq!(h, g.boa_trace_checksum, "{tag}: Boa constructed traces");

    // Edge profile totals and per-block counts.
    let mut edges = EdgeProfiler::new();
    let stats = Vm::new(p).run(&mut edges).unwrap();
    assert_eq!(
        stats.blocks_executed, g.blocks_executed,
        "{tag}: dynamic blocks"
    );
    assert_eq!(
        edges.edge_count(),
        g.edge_count,
        "{tag}: edge counter space"
    );
    assert_eq!(edges.transfers(), g.edge_transfers, "{tag}: transfers");
    let mut h = FNV;
    for b in 0..nblocks {
        let c = edges.block(b as u32);
        if c > 0 {
            h = mix(mix(h, b as u64), c);
        }
    }
    assert_eq!(h, g.edge_block_checksum, "{tag}: block-counter contents");
}

#[test]
fn perl_small_matches_hashmap_goldens() {
    let w = hotpath::workloads::build(WorkloadName::Perl, Scale::Small);
    check_against_golden(&w.program, 50, &PERL_SMALL, "perl/Small tau=50");
}

#[test]
fn generated_program_matches_hashmap_goldens() {
    let p = generate(0xA5, &GenConfig::default());
    check_against_golden(&p, 5, &GENERATED_A5, "gen(0xA5) tau=5");
}

/// Recomputes the whole edge profile with a plain `HashMap` from a
/// recorded trace and compares every entry against [`EdgeProfiler`].
#[derive(Default)]
struct ReferenceEdges {
    edges: HashMap<(u32, u32), u64>,
    blocks: HashMap<u32, u64>,
    transfers: u64,
}

impl ExecutionObserver for ReferenceEdges {
    fn on_block(&mut self, event: &BlockEvent) {
        *self.blocks.entry(event.block.as_u32()).or_insert(0) += 1;
        if let Some(from) = event.from {
            *self
                .edges
                .entry((from.as_u32(), event.block.as_u32()))
                .or_insert(0) += 1;
            self.transfers += 1;
        }
    }
}

#[test]
fn edge_profile_matches_reference_recomputation() {
    for (program, tag) in [
        (
            hotpath::workloads::build(WorkloadName::Perl, Scale::Small).program,
            "perl",
        ),
        (generate(0xA5, &GenConfig::default()), "gen"),
    ] {
        let mut rec = TraceRecorder::new();
        Vm::new(&program).run(&mut rec).unwrap();
        let trace = rec.into_trace();

        let mut reference = ReferenceEdges::default();
        trace.replay(&mut reference);
        let mut edges = EdgeProfiler::new();
        trace.replay(&mut edges);

        assert_eq!(edges.transfers(), reference.transfers, "{tag}: transfers");
        assert_eq!(
            edges.edge_count(),
            reference.edges.len(),
            "{tag}: edge count"
        );
        for (&(from, to), &count) in &reference.edges {
            assert_eq!(edges.edge(from, to), count, "{tag}: edge {from}->{to}");
        }
        for (&b, &count) in &reference.blocks {
            assert_eq!(edges.block(b), count, "{tag}: block {b}");
        }
        // Probabilities normalize against the same block totals.
        for (&(from, to), &count) in &reference.edges {
            let expect = count as f64 / reference.blocks[&from] as f64;
            assert!(
                (edges.transition_probability(from, to) - expect).abs() < 1e-12,
                "{tag}: P({from}->{to})"
            );
        }
    }
}
