//! Reactor front-end contract tests: frame reassembly over real
//! sockets, bounded-buffer backpressure, oversize rejection, and
//! graceful drain with warm-session snapshot parity against the
//! blocking front-end.
//!
//! The invariant carried over from `tests/serve.rs`: no matter how the
//! bytes are sliced, refused, or drained, every session that finishes —
//! before or after a snapshot/restore hop — ends bit-identical to a
//! plain interpreted run.
#![cfg(unix)]

use std::io::{Read, Write};
use std::net::TcpStream;

use hotpath::prelude::*;
use hotpath::serve::{
    read_frame, serve, serve_blocking, write_frame, Client, ConnLimits, ConnState, PrewarmOutcome,
    Request, Response, ServeConfig, ServerHandle, SessionConfig, SessionManager, MAX_FRAME_BYTES,
};

/// A plain interpreted run: the reference every serving path must match.
fn plain(name: WorkloadName, scale: Scale) -> hotpath::vm::RunStats {
    let program = build(name, scale).program;
    Vm::new(&program)
        .run(&mut hotpath::vm::NullObserver)
        .expect("workload runs")
}

/// Sends one request over a raw stream and decodes the reply.
fn roundtrip(stream: &mut TcpStream, request: &Request) -> Response {
    write_frame(stream, &request.encode()).expect("write frame");
    let payload = read_frame(stream)
        .expect("read frame")
        .expect("server kept the connection");
    Response::decode(&payload).expect("reply decodes")
}

/// The reactor must reassemble frames however the bytes arrive: the
/// length prefix split from the payload, the payload dribbled one byte
/// at a time, and two frames glued into a single write.
#[test]
fn partial_frames_reassemble_across_split_reads() {
    let name = WorkloadName::Compress;
    let reference = plain(name, Scale::Smoke);
    let handle = serve("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    // Open, dribbled byte by byte with pauses so the reactor sees many
    // partial reads for one frame.
    let payload = Request::Open {
        config: SessionConfig::exec(name, Scale::Smoke),
    }
    .encode();
    let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
    frame.extend_from_slice(&payload);
    for chunk in frame.chunks(3) {
        stream.write_all(chunk).expect("write chunk");
        stream.flush().expect("flush");
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let reply = read_frame(&mut stream)
        .expect("read")
        .expect("reply after reassembly");
    let Response::Opened { session, .. } = Response::decode(&reply).expect("decodes") else {
        panic!("open failed");
    };

    // Two frames in one write: a fuel slice and a query, answered in
    // order from a single read burst.
    let run = Request::Run {
        session,
        fuel: Some(100),
    }
    .encode();
    let query = Request::Query { session }.encode();
    let mut glued = Vec::new();
    for payload in [&run, &query] {
        glued.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        glued.extend_from_slice(payload);
    }
    stream.write_all(&glued).expect("write glued frames");
    let first = read_frame(&mut stream).expect("read").expect("run reply");
    assert!(matches!(
        Response::decode(&first).expect("decodes"),
        Response::Ran { .. }
    ));
    let second = read_frame(&mut stream).expect("read").expect("query reply");
    let Response::Status(status) = Response::decode(&second).expect("decodes") else {
        panic!("query failed");
    };
    assert_eq!(status.session, session);

    // The session still finishes bit-identical after all that slicing.
    let stats = loop {
        match roundtrip(
            &mut stream,
            &Request::Run {
                session,
                fuel: None,
            },
        ) {
            Response::Ran { done: true, stats } => break stats,
            Response::Ran { done: false, .. } => {}
            other => panic!("run failed: {other:?}"),
        }
    };
    assert_eq!(stats, reference, "sliced frames changed the execution");
    roundtrip(&mut stream, &Request::Close { session });
    roundtrip(&mut stream, &Request::Shutdown);
    handle.wait();
}

/// A length prefix over the 64 MiB cap is fatal for that connection —
/// no reply, no allocation, immediate close — while other connections
/// keep working.
#[test]
fn oversize_length_prefix_closes_only_that_connection() {
    let handle = serve("127.0.0.1:0", ServeConfig::default()).expect("bind");

    let mut attacker = TcpStream::connect(handle.addr()).expect("connect");
    let oversize = (MAX_FRAME_BYTES as u32 + 1).to_le_bytes();
    attacker.write_all(&oversize).expect("write prefix");
    attacker.flush().expect("flush");
    let mut buf = [0u8; 16];
    let n = attacker.read(&mut buf).expect("read after oversize");
    assert_eq!(n, 0, "oversize prefix must close the connection, not reply");

    // A well-behaved connection on the same server is unaffected.
    let mut client = Client::connect(handle.addr()).expect("connect");
    let (session, _) = client
        .open(SessionConfig::exec(WorkloadName::Compress, Scale::Smoke))
        .expect("open after oversize attack");
    client.close(session).expect("close");
    client.shutdown_server().expect("shutdown");
    handle.wait();
}

/// A burst of frames beyond the per-connection queue bound is refused
/// with `Busy` — in order, over the wire — and the connection stays
/// usable afterwards.
#[test]
fn frame_burst_beyond_queue_bound_answers_busy_in_order() {
    let handle = serve("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    let Response::Opened { session, .. } = roundtrip(
        &mut stream,
        &Request::Open {
            config: SessionConfig::exec(WorkloadName::Compress, Scale::Smoke),
        },
    ) else {
        panic!("open failed");
    };

    // 30 queries in a single write: the reactor ingests the burst in
    // one pass, queues up to its bound, and answers the overflow Busy.
    const BURST: usize = 30;
    let payload = Request::Query { session }.encode();
    let mut burst = Vec::new();
    for _ in 0..BURST {
        burst.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        burst.extend_from_slice(&payload);
    }
    stream.write_all(&burst).expect("write burst");
    let (mut served, mut busy) = (0, 0);
    for i in 0..BURST {
        let reply = read_frame(&mut stream)
            .expect("read")
            .unwrap_or_else(|| panic!("missing reply {i}"));
        match Response::decode(&reply).expect("decodes") {
            Response::Status(_) => served += 1,
            Response::Busy => busy += 1,
            other => panic!("unexpected reply {i}: {other:?}"),
        }
    }
    assert_eq!(served + busy, BURST);
    assert!(busy >= 1, "burst must overflow the queue bound");
    assert!(served >= 1, "some of the burst must be served");

    // Backpressure is refusal, not damage: the next request succeeds.
    let Response::Status(status) = roundtrip(&mut stream, &Request::Query { session }) else {
        panic!("connection unusable after backpressure");
    };
    assert_eq!(status.session, session);
    roundtrip(&mut stream, &Request::Close { session });
    roundtrip(&mut stream, &Request::Shutdown);
    handle.wait();
}

/// The soft write-buffer bound surfaces as `Busy` too: once unflushed
/// replies pile past it, new frames are refused until the buffer
/// drains. Driven through the exported state machine — the bound is
/// about an unread peer, which a same-process socket cannot simulate
/// deterministically.
#[test]
fn write_buffer_backpressure_refuses_frames_with_busy() {
    let limits = ConnLimits::with_write_soft(64);
    let mut conn = ConnState::new(limits);
    let frame = |payload: &[u8]| {
        let mut f = (payload.len() as u32).to_le_bytes().to_vec();
        f.extend_from_slice(payload);
        f
    };
    let query = Request::Query { session: 1 }.encode();

    conn.ingest(&frame(&query)).expect("ingest");
    let dispatched = conn.next_dispatch().expect("dispatches");
    assert_eq!(dispatched, query);
    // A reply bigger than the soft bound, not yet flushed to the socket.
    conn.respond(&[0u8; 128]).expect("respond");
    assert!(conn.buffered_write_bytes() > 64);

    // New frames are refused while the buffer is over the bound...
    conn.ingest(&frame(&query)).expect("ingest under pressure");
    assert!(
        conn.next_dispatch().is_none(),
        "refused frame must not dispatch"
    );
    let busy_at = conn.writable().len();
    assert!(
        busy_at > 128,
        "Busy reply must be queued behind the big one"
    );

    // ...and served again once the peer drains it.
    let flushed = conn.writable().len();
    conn.advance_write(flushed);
    assert_eq!(conn.buffered_write_bytes(), 0);
    conn.ingest(&frame(&query)).expect("ingest after drain");
    assert_eq!(conn.next_dispatch().expect("dispatches again"), query);
}

/// Opens `count` sessions over individual connections and advances each
/// to its midpoint, leaving the sessions warm on the server.
fn open_warm_sessions(
    addr: std::net::SocketAddr,
    count: usize,
    midpoint: u64,
) -> Vec<(Client, u64)> {
    (0..count)
        .map(|_| {
            let mut client = Client::connect(addr).expect("connect");
            let (session, _) = client
                .open(SessionConfig::exec(WorkloadName::Compress, Scale::Smoke))
                .expect("open");
            let (done, _) = client.run(session, Some(midpoint)).expect("midpoint");
            assert!(!done, "midpoint must not complete the run");
            (client, session)
        })
        .collect()
}

/// Drains a server under live load and proves the warm sessions survive:
/// snapshots taken after the drain restore into a fresh pool and finish
/// bit-identical to a plain run.
fn drain_and_restore(mut handle: ServerHandle, sessions: usize) -> Vec<hotpath::vm::RunStats> {
    let reference = plain(WorkloadName::Compress, Scale::Smoke);
    let midpoint = reference.blocks_executed / 2;
    let warm = open_warm_sessions(handle.addr(), sessions, midpoint);

    // Live load while the drain fires: one session keeps taking fuel
    // slices until the server tells it to go away.
    let addr = handle.addr();
    let load = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        let (session, _) = client
            .open(SessionConfig::exec(WorkloadName::Go, Scale::Smoke))
            .expect("open");
        let mut slices = 0u64;
        while let Ok((done, _)) = client.run(session, Some(50)) {
            slices += 1;
            if done {
                break;
            }
        }
        slices
    });
    // Give the load loop time to get going, then pull the plug.
    std::thread::sleep(std::time::Duration::from_millis(50));
    handle.drain();
    let slices = load.join().expect("load thread");
    assert!(slices > 0, "load must make progress before the drain");
    handle.join_front();

    // The front is gone: new connections are refused, not accepted.
    assert!(
        Client::connect(addr).is_err(),
        "drained server must stop accepting"
    );

    // Warm sessions survived the drain; restore them elsewhere and
    // finish. Every one must land exactly where a plain run lands.
    let blobs = handle.manager().snapshot_all();
    assert!(
        blobs.len() >= sessions,
        "expected >= {sessions} warm sessions, snapshot found {}",
        blobs.len()
    );
    drop(warm);
    let fresh = SessionManager::new(ServeConfig::default());
    let mut finished = Vec::new();
    for (_, blob) in blobs {
        let Response::Opened { session, .. } = fresh.request(Request::Restore { blob }) else {
            panic!("restore failed");
        };
        let stats = loop {
            match fresh.request(Request::Run {
                session,
                fuel: Some(1000),
            }) {
                Response::Ran { done: true, stats } => break stats,
                Response::Ran { done: false, .. } => {}
                other => panic!("restored run failed: {other:?}"),
            }
        };
        finished.push(stats);
    }
    finished
}

/// Graceful drain under load on the reactor front-end, with snapshot
/// restore parity against the blocking front-end: both paths hand every
/// warm session over bit-identical.
#[test]
fn drain_under_load_restores_warm_sessions_on_both_front_ends() {
    let compress = plain(WorkloadName::Compress, Scale::Smoke);
    let go = plain(WorkloadName::Go, Scale::Smoke);
    let verify = |finished: &[hotpath::vm::RunStats], front: &str| {
        assert!(finished.len() >= 3, "{front}: lost warm sessions");
        for stats in finished {
            assert!(
                *stats == compress || *stats == go,
                "{front}: restored session diverged from plain execution: {stats:?}"
            );
        }
        assert!(
            finished.iter().filter(|s| **s == compress).count() >= 3,
            "{front}: the midpoint sessions must all finish as compress"
        );
    };

    let reactor = serve("127.0.0.1:0", ServeConfig::default()).expect("bind reactor");
    verify(&drain_and_restore(reactor, 3), "reactor");

    let blocking = serve_blocking("127.0.0.1:0", ServeConfig::default()).expect("bind blocking");
    verify(&drain_and_restore(blocking, 3), "blocking");
}

/// `Stats` counts sessions and connections truthfully — the invariant
/// the CI scale smoke leans on for its zero-leak assertion.
#[test]
fn server_stats_track_sessions_and_connections() {
    let handle = serve("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let before = client.stats().expect("stats");

    let config = SessionConfig::exec(WorkloadName::Compress, Scale::Smoke);
    let (a, _) = client.open(config.clone()).expect("open");
    let (b, _) = client.open(config).expect("open");
    let during = client.stats().expect("stats");
    assert_eq!(during.live_sessions, before.live_sessions + 2);
    assert_eq!(during.sessions_opened, before.sessions_opened + 2);
    assert!(during.connections >= 1, "this connection must be counted");

    client.close(a).expect("close");
    client.close(b).expect("close");
    let after = client.stats().expect("stats");
    assert_eq!(
        after.live_sessions, before.live_sessions,
        "session table leaked"
    );
    assert_eq!(after.sessions_closed, before.sessions_closed + 2);
    #[cfg(target_os = "linux")]
    assert!(
        after.rss_max_bytes > 0,
        "peak RSS must be reported on linux"
    );

    // Fleet profile-store counters ride the same reply: empty before
    // the first publish, populated after, and the pre-warm tally moves.
    assert_eq!(after.profiles_held, 0, "no profile published yet");
    assert_eq!(after.profile_bytes, 0, "empty store reports zero bytes");
    assert_eq!(after.sessions_prewarmed, 0);
    let config = SessionConfig::exec(WorkloadName::Compress, Scale::Smoke);
    let (publisher, _) = client.open(config.clone()).expect("open");
    while !client.run(publisher, None).expect("run").0 {}
    client.publish_profile(publisher).expect("publish");
    client.close(publisher).expect("close");
    let (warmed, _, outcome) = client
        .open_detailed(config.with_prewarm(true))
        .expect("open pre-warmed");
    assert!(
        matches!(outcome, PrewarmOutcome::Warmed { .. }),
        "expected a warmed admission, got {outcome:?}"
    );
    client.close(warmed).expect("close");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.profiles_held, 1, "one workload key aggregated");
    assert!(stats.profile_bytes > 0, "aggregate bytes reported");
    assert_eq!(stats.sessions_prewarmed, 1);
    assert!(
        stats.profile_refresh_age <= 1,
        "only shards that admitted a pre-warm have synced; the lag must \
         never exceed the single publish, got {}",
        stats.profile_refresh_age
    );

    client.shutdown_server().expect("shutdown");
    handle.wait();
}
