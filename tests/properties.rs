//! Property-based tests over randomly generated programs.
//!
//! Instead of an external property-testing framework these run each
//! property over a deterministic seed sweep (the generator is already
//! seed-driven, so "shrinking" is just re-running one seed). A failure
//! message always names the seed that broke.

use std::collections::HashMap;

use hotpath::ir::ball_larus::BallLarus;
use hotpath::ir::gen::{generate, GenConfig};
use hotpath::prelude::*;
use hotpath::profiles::{PathExecution, PathId, PathSink};
use hotpath::vm::{BlockEvent, ExecutionObserver};

/// Seeds swept by each property; capped to keep `cargo test` quick while
/// still covering dozens of distinct program shapes.
const CASES: u64 = 48;

/// Observer that records each completed path's exact block sequence and
/// checks that one [`PathId`] always maps to one sequence.
#[derive(Default)]
struct IdentityChecker {
    extractor: Option<PathExtractor<LastId>>,
    cur: Vec<u32>,
    by_id: HashMap<PathId, Vec<u32>>,
    violations: usize,
}

#[derive(Default)]
struct LastId(Option<PathExecution>);

impl PathSink for LastId {
    fn on_path(&mut self, exec: &PathExecution) {
        self.0 = Some(*exec);
    }
}

impl IdentityChecker {
    fn new() -> Self {
        IdentityChecker {
            extractor: Some(PathExtractor::new(LastId::default())),
            ..Default::default()
        }
    }

    fn check_completed(&mut self) {
        let ex = self.extractor.as_mut().expect("present");
        if let Some(exec) = ex.sink_mut().0.take() {
            let blocks = std::mem::take(&mut self.cur);
            match self.by_id.entry(exec.path) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    if e.get() != &blocks {
                        self.violations += 1;
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(blocks);
                }
            }
        }
    }
}

impl ExecutionObserver for IdentityChecker {
    fn on_block(&mut self, event: &BlockEvent) {
        self.extractor.as_mut().expect("present").on_block(event);
        self.check_completed();
        self.cur.push(event.block.as_u32());
    }

    fn on_halt(&mut self) {
        self.extractor.as_mut().expect("present").on_halt();
        self.check_completed();
    }
}

/// Ball–Larus numbering is a bijection: decode is injective over
/// `0..num_paths` and encode inverts it, for every function of a random
/// structured program.
#[test]
fn ball_larus_numbering_is_a_bijection() {
    for seed in 0..CASES {
        let program = generate(seed * 199, &GenConfig::default());
        for func in &program.functions {
            let bl = BallLarus::new(func).expect("generated CFGs are reducible");
            let n = bl.num_paths();
            if n > 512 {
                continue; // keep enumeration cheap
            }
            let mut seen = std::collections::HashSet::new();
            for id in 0..n {
                let blocks = bl.decode(id).expect("id in range decodes");
                assert!(
                    seen.insert(blocks.clone()),
                    "seed {seed}: duplicate path for {id}"
                );
                assert_eq!(bl.encode(&blocks), Some(id), "seed {seed}");
            }
        }
    }
}

/// Path extraction partitions the dynamic block stream exactly.
#[test]
fn extraction_partitions_random_runs() {
    for seed in 0..CASES {
        let program = generate(seed * 211, &GenConfig::default());
        let mut ex = PathExtractor::new(StreamingSink::new());
        let stats = Vm::new(&program)
            .with_config(RunConfig {
                max_blocks: 2_000_000,
                ..RunConfig::default()
            })
            .run(&mut ex)
            .expect("generated programs halt");
        let (sink, table) = ex.into_parts();
        let stream = sink.into_stream();
        let total: u64 = (0..stream.len())
            .map(|i| table.info(stream.path(i)).blocks as u64)
            .sum();
        assert_eq!(total, stats.blocks_executed, "seed {seed}");
        assert!(stream.ended(), "seed {seed}");
    }
}

/// Same seed, same everything: builds, streams, and tables.
#[test]
fn random_runs_are_deterministic() {
    for seed in 0..CASES {
        let run = || {
            let program = generate(seed * 223, &GenConfig::default());
            let mut ex = PathExtractor::new(StreamingSink::new());
            Vm::new(&program).run(&mut ex).expect("halts");
            let (sink, table) = ex.into_parts();
            (sink.into_stream(), table)
        };
        let (s1, t1) = run();
        let (s2, t2) = run();
        assert_eq!(s1.len(), s2.len(), "seed {seed}");
        assert_eq!(t1.len(), t2.len(), "seed {seed}");
        for i in 0..s1.len() {
            assert_eq!(s1.path(i), s2.path(i), "seed {seed} at {i}");
        }
    }
}

/// The evaluator's flow identity holds for arbitrary programs and delays,
/// for both schemes.
#[test]
fn metric_flow_identity() {
    for seed in 0..CASES {
        let program = generate(seed * 227, &GenConfig::default());
        // Sweep delays pseudo-randomly too, derived from the seed.
        let delay = 1 + (seed * 97) % 499;
        let mut ex = PathExtractor::new(StreamingSink::new());
        Vm::new(&program).run(&mut ex).expect("halts");
        let (sink, table) = ex.into_parts();
        let stream = sink.into_stream();
        let hot = stream.to_profile().hot_set(0.001);
        for outcome in [
            evaluate(&stream, &table, &hot, &mut NetPredictor::new(delay)),
            evaluate(&stream, &table, &hot, &mut PathProfilePredictor::new(delay)),
        ] {
            assert_eq!(
                outcome.profiled_flow + outcome.hits + outcome.noise,
                outcome.total_flow,
                "seed {seed} delay {delay}"
            );
            assert!(outcome.hit_rate() <= 100.0 + 1e-9, "seed {seed}");
            assert!(outcome.hit_rate() >= 0.0, "seed {seed}");
            assert!(outcome.profiled_flow_pct() <= 100.0 + 1e-9, "seed {seed}");
        }
    }
}

/// One PathId, one block sequence: the bit-tracing signature is a faithful
/// identity over arbitrary programs.
#[test]
fn path_ids_identify_block_sequences() {
    for seed in 0..CASES {
        let program = generate(seed * 229, &GenConfig::default());
        let mut checker = IdentityChecker::new();
        Vm::new(&program).run(&mut checker).expect("halts");
        assert_eq!(checker.violations, 0, "seed {seed}");
    }
}

/// Hot sets are monotone in the threshold fraction: a stricter threshold
/// selects a subset with no more flow.
#[test]
fn hot_sets_are_monotone() {
    for seed in 0..CASES {
        let program = generate(seed * 233, &GenConfig::default());
        let mut ex = PathExtractor::new(StreamingSink::new());
        Vm::new(&program).run(&mut ex).expect("halts");
        let (sink, _) = ex.into_parts();
        let profile = sink.into_stream().to_profile();
        let loose = profile.hot_set(0.001);
        let strict = profile.hot_set(0.05);
        assert!(strict.len() <= loose.len(), "seed {seed}");
        assert!(strict.hot_flow() <= loose.hot_flow(), "seed {seed}");
        for p in strict.paths() {
            assert!(loose.contains(*p), "seed {seed}: strict ⊆ loose");
        }
    }
}

/// Dynamo cycle accounting: the breakdown sums to the total; bail-out
/// implies native cycles.
#[test]
fn dynamo_accounting_is_consistent() {
    for seed in 0..CASES {
        let program = generate(
            seed * 239,
            &GenConfig {
                max_depth: 4,
                max_trip: 12,
                ..GenConfig::default()
            },
        );
        let out = run_dynamo(&program, &DynamoConfig::new(Scheme::Net, 5))
            .expect("generated programs halt");
        let c = out.cycles;
        let sum = c.interp + c.trace + c.native + c.profiling + c.build + c.transitions;
        assert!((sum - c.total()).abs() < 1e-6, "seed {seed}");
        assert!(c.total() > 0.0, "seed {seed}");
        if !out.bailed_out {
            assert_eq!(c.native, 0.0, "seed {seed}");
        }
        assert!(
            (0.0..=1.0).contains(&out.cached_block_fraction),
            "seed {seed}"
        );
    }
}
