//! Self-profiler integration: the subsystem must observe without
//! perturbing.
//!
//! Four claims, checked through the `hotpath` facade so every feature
//! chain (`selfprof`, `selfprof-alloc`, and the default disabled build)
//! is exercised exactly as downstream binaries link it:
//!
//! 1. **Attribution** (`selfprof` feature): nested stage scopes restore
//!    the outer stage, cross-thread work drains into one report, and —
//!    with the measuring allocator — bytes land on the innermost stage.
//! 2. **Zero-cost disabled** (default build): guards are ZSTs and
//!    [`report`] is the empty report, no matter how many scopes ran.
//! 3. **Sealed reports** (all builds): the versioned FNV-sealed encoding
//!    round-trips and rejects corrupt or stale bytes, exactly like
//!    serve's session snapshots.
//! 4. **Bit-identity**: running every workload inside stage scopes —
//!    plain and fuel-sliced linked execution, whose slice path carries
//!    its own internal `VmSlice` guard — produces [`RunStats`], memory,
//!    and globals identical to an unscoped run. Profiling the profiler
//!    must not move a single number.
//!
//! [`report`]: hotpath::selfprof::report
//! [`RunStats`]: hotpath::vm::RunStats

use hotpath::selfprof::{self, ReportError, SelfProfReport, Stage};
use hotpath::vm::{NullObserver, StepOutcome, Vm};
use hotpath::workloads::{build, Scale, ALL_WORKLOADS};

// ---------------------------------------------------------------------
// 1. Attribution (collecting builds only)
// ---------------------------------------------------------------------

#[cfg(feature = "selfprof")]
#[test]
fn nested_scopes_attribute_to_the_innermost_stage() {
    selfprof::stage!(Stage::ShardDispatch, {
        selfprof::stage!(Stage::SnapshotSave, {
            std::hint::black_box(vec![0u8; 4096]);
        });
        std::hint::black_box(1 + 1);
    });
    let report = selfprof::report();
    let outer = report.stage("shard_dispatch").expect("outer recorded");
    let inner = report.stage("snapshot_save").expect("inner recorded");
    assert!(outer.visits() >= 1);
    assert!(inner.visits() >= 1);
    if selfprof::alloc_tracking() {
        // The Vec bytes belong to the innermost scope, not the outer one.
        assert!(inner.alloc_bytes >= 4096, "{}", report.render_table());
        assert!(inner.bytes_max_visit >= 4096);
    }
}

#[cfg(feature = "selfprof")]
#[test]
fn cross_thread_scopes_drain_into_one_report() {
    let workers: Vec<_> = (0..4)
        .map(|i| {
            std::thread::spawn(move || {
                selfprof::stage!(Stage::Prewarm, {
                    std::hint::black_box(vec![i as u8; 256]);
                })
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker");
    }
    let report = selfprof::report();
    let stage = report.stage("prewarm").expect("prewarm recorded");
    assert!(stage.visits() >= 4);
    assert!(report.peak_rss_bytes > 0, "peak RSS sampled on linux");
    // The report must survive its own wire format.
    let decoded = SelfProfReport::decode(&report.encode()).expect("round-trip");
    assert_eq!(
        decoded.stage("prewarm").map(|s| s.visits()),
        Some(stage.visits())
    );
}

// ---------------------------------------------------------------------
// 2. Zero-cost disabled (default build only)
// ---------------------------------------------------------------------

#[cfg(not(feature = "selfprof"))]
#[test]
fn disabled_build_reports_no_events() {
    assert!(!selfprof::enabled());
    assert!(!selfprof::alloc_tracking());
    for _ in 0..100 {
        selfprof::stage!(Stage::VmSlice, {
            std::hint::black_box(vec![0u8; 64]);
        });
    }
    let report = selfprof::report();
    assert!(report.is_empty(), "disabled build recorded: {report:?}");
    // Peak RSS stays available even disabled — serve's `max_rss` reads
    // it on request with no collection machinery behind it.
    if cfg!(target_os = "linux") {
        assert!(report.peak_rss_bytes > 0);
    }
    // The ZST guard really is zero-sized — nothing to construct or drop.
    assert_eq!(std::mem::size_of::<selfprof::StageGuard>(), 0);
}

// ---------------------------------------------------------------------
// 3. Sealed reports (all builds)
// ---------------------------------------------------------------------

#[test]
fn sealed_encoding_rejects_corrupt_and_stale_bytes() {
    let report = SelfProfReport::empty();
    let bytes = report.encode();
    assert_eq!(
        SelfProfReport::decode(&bytes).expect("clean decode"),
        report
    );

    // A flipped payload byte breaks the FNV seal.
    let mut corrupt = bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    assert_eq!(
        SelfProfReport::decode(&corrupt),
        Err(ReportError::ChecksumMismatch)
    );

    // A future version is stale-rejected before the seal is even read,
    // so a truncated-but-reversioned blob still names the real problem.
    let mut stale = bytes.clone();
    stale[4..8].copy_from_slice(&99u32.to_le_bytes());
    assert_eq!(
        SelfProfReport::decode(&stale),
        Err(ReportError::UnsupportedVersion(99))
    );

    // Wrong magic and truncation each get their own error.
    let mut wrong_magic = bytes.clone();
    wrong_magic[0] = b'X';
    assert_eq!(
        SelfProfReport::decode(&wrong_magic),
        Err(ReportError::BadMagic)
    );
    assert_eq!(
        SelfProfReport::decode(&bytes[..3]),
        Err(ReportError::TooShort)
    );
}

// ---------------------------------------------------------------------
// 4. Bit-identity under instrumentation
// ---------------------------------------------------------------------

/// One workload's observable outcome: everything a profiler could perturb.
#[derive(PartialEq, Debug)]
struct Outcome {
    stats: hotpath::vm::RunStats,
    memory: Vec<i64>,
    globals: Vec<i64>,
}

fn run_plain(name: hotpath::workloads::WorkloadName) -> Outcome {
    let w = build(name, Scale::Smoke);
    let mut vm = Vm::new(&w.program);
    let stats = vm.run(&mut NullObserver).expect("workload halts");
    Outcome {
        stats,
        memory: vm.memory().to_vec(),
        globals: vm.globals().to_vec(),
    }
}

fn run_scoped(name: hotpath::workloads::WorkloadName) -> Outcome {
    let w = build(name, Scale::Smoke);
    let mut vm = Vm::new(&w.program);
    let stats = selfprof::stage!(Stage::FrameDecode, {
        vm.run(&mut NullObserver).expect("workload halts")
    });
    Outcome {
        stats,
        memory: vm.memory().to_vec(),
        globals: vm.globals().to_vec(),
    }
}

/// Fuel-sliced linked execution: every slice passes through
/// `step_linked`'s internal `VmSlice` stage guard.
fn run_sliced_linked(name: hotpath::workloads::WorkloadName, fuel: u64) -> Outcome {
    let w = build(name, Scale::Smoke);
    let mut vm = Vm::new(&w.program);
    let mut state = vm.start_linked();
    let stats = loop {
        match vm
            .step_linked(&mut state, &mut NullObserver, Some(fuel))
            .expect("workload halts")
        {
            StepOutcome::Halted(stats) => break stats,
            StepOutcome::Yielded => continue,
        }
    };
    Outcome {
        stats,
        memory: vm.memory().to_vec(),
        globals: vm.globals().to_vec(),
    }
}

#[test]
fn stage_scopes_never_perturb_workload_execution() {
    assert_eq!(ALL_WORKLOADS.len(), 9, "the suite is nine workloads");
    for name in ALL_WORKLOADS {
        let plain = run_plain(name);
        let scoped = run_scoped(name);
        assert_eq!(plain, scoped, "{name}: stage scope changed the run");

        // Sliced linked execution (profiled from inside the VM) must
        // agree with itself across slice sizes and with one big slice.
        let unbounded = run_sliced_linked(name, u64::MAX);
        let sliced = run_sliced_linked(name, 1024);
        assert_eq!(unbounded, sliced, "{name}: slicing changed the run");
        assert_eq!(
            plain.memory, unbounded.memory,
            "{name}: linked memory diverged from the interpreter"
        );
        assert_eq!(
            plain.globals, unbounded.globals,
            "{name}: linked globals diverged from the interpreter"
        );
    }
    // In collecting builds the sliced runs above must actually have been
    // observed — otherwise this test proves nothing about the guards.
    if selfprof::enabled() {
        let report = selfprof::report();
        assert!(report.stage("vm_slice").is_some(), "slices were profiled");
        assert!(report.stage("frame_decode").is_some(), "scopes recorded");
    }
}

// ---------------------------------------------------------------------
// Satellite: steady-state telemetry recording is allocation-free-ish
// ---------------------------------------------------------------------

/// Pins the `SummaryRecorder` label-interning fix: 2,000 steady-state
/// `Timing` observations with already-interned labels must cost at most
/// a handful of allocations (Vec doublings), not one `String` per event.
/// Only the measuring-allocator build can count, so the pin lives behind
/// `selfprof-alloc`; the `ProfilePublish` stage is reserved for it in
/// this binary so no other visit can mask the measurement.
#[cfg(feature = "selfprof-alloc")]
#[test]
fn summary_recorder_timings_do_not_allocate_per_event() {
    use hotpath::telemetry::{Event, TelemetrySummary};

    let mut summary = TelemetrySummary::new();
    // Warm-up: intern both labels and give the timing Vec a footing.
    for i in 0..32u32 {
        summary.observe(&Event::Timing {
            label: if i % 2 == 0 { "record" } else { "sweep" },
            secs: f64::from(i),
        });
    }
    selfprof::stage!(Stage::ProfilePublish, {
        for i in 0..2_000u32 {
            summary.observe(&Event::Timing {
                label: if i % 2 == 0 { "record" } else { "sweep" },
                secs: f64::from(i),
            });
        }
    });
    let report = selfprof::report();
    let stage = report.stage("profile_publish").expect("visit recorded");
    assert!(
        stage.count_max_visit < 100,
        "steady-state Timing events must not allocate per event: \
         {} allocations over 2000 observes\n{}",
        stage.count_max_visit,
        report.render_table()
    );
}
