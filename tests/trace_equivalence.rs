//! Trace-execution equivalence: the compiled-trace backend must be an
//! *invisible* optimization. `Vm::run_linked` executes whole superblocks
//! with pre-resolved targets, inline guards, and patched trace-to-trace
//! links — and none of that may change a single observable bit relative
//! to plain block-by-block interpretation.
//!
//! Three layers of guards:
//!
//! 1. **Workload sweep.** All nine benchmarks at Small scale, under both
//!    prediction schemes: `RunStats`, final data memory, and every global
//!    register bit-identical between `Vm::run` and `Vm::run_linked`
//!    driven by the full `LinkedEngine`.
//! 2. **Scripted corners.** A `ScriptedController` pins the mechanisms:
//!    guard failure mid-trace, link severing on flush, divergence
//!    chaining into a tail fragment.
//! 3. **Error equivalence.** Fuel exhaustion aborts at the exact same
//!    block with the exact same error, trace cache or not.

use hotpath::dynamo::{DynamoConfig, LinkedEngine, Scheme};
use hotpath::ir::builder::{FunctionBuilder, ProgramBuilder};
use hotpath::ir::{CmpOp, GlobalReg, Program};
use hotpath::vm::{
    BlockEvent, ExecutionObserver, NullObserver, RunConfig, ScriptedController, TraceCommand,
    TraceController, TraceExcursion, Vm, VmError,
};
use hotpath::workloads::{suite, Scale};

/// Runs `program` plain and linked (under `engine`), asserting stats,
/// memory, and globals are bit-identical; returns the shared stats.
fn assert_bit_identical<C: TraceController>(
    program: &Program,
    engine: &mut C,
    tag: &str,
) -> hotpath::vm::RunStats {
    let mut plain_vm = Vm::new(program);
    let plain = plain_vm.run(&mut NullObserver).unwrap();

    let mut linked_vm = Vm::new(program);
    let linked = linked_vm.run_linked(engine).unwrap();

    assert_eq!(plain, linked, "{tag}: RunStats");
    assert_eq!(plain_vm.memory(), linked_vm.memory(), "{tag}: final memory");
    for g in 0..GlobalReg::COUNT {
        let g = GlobalReg::new(g as u8);
        assert_eq!(
            plain_vm.global(g),
            linked_vm.global(g),
            "{tag}: global {g:?}"
        );
    }
    linked
}

#[test]
fn all_nine_workloads_bit_identical_under_net() {
    for w in suite(Scale::Small) {
        let mut engine = LinkedEngine::new(DynamoConfig::new(Scheme::Net, 50));
        assert_bit_identical(&w.program, &mut engine, &format!("{:?}/net", w.name));
    }
}

#[test]
fn all_nine_workloads_bit_identical_under_path_profile() {
    for w in suite(Scale::Small) {
        let mut engine = LinkedEngine::new(DynamoConfig::new(Scheme::PathProfile, 50));
        assert_bit_identical(&w.program, &mut engine, &format!("{:?}/pp", w.name));
    }
}

/// Block ids, in build order: 0 = implicit entry, then `new_block` order.
/// For [`two_path_loop`]: header=1, body=2, odd=3, even=4, latch=5,
/// exit=6.
fn two_path_loop(trip: i64) -> Program {
    let mut fb = FunctionBuilder::new("main");
    let i = fb.reg();
    let header = fb.new_block();
    let body = fb.new_block();
    let odd = fb.new_block();
    let even = fb.new_block();
    let latch = fb.new_block();
    let exit = fb.new_block();
    fb.const_(i, 0);
    fb.jump(header);
    fb.switch_to(header);
    let c = fb.cmp_imm(CmpOp::Lt, i, trip);
    fb.branch(c, body, exit);
    fb.switch_to(body);
    let par = fb.reg();
    fb.and_imm(par, i, 1);
    fb.branch(par, odd, even);
    fb.switch_to(odd);
    fb.jump(latch);
    fb.switch_to(even);
    fb.jump(latch);
    fb.switch_to(latch);
    fb.add_imm(i, i, 1);
    fb.jump(header);
    fb.switch_to(exit);
    fb.halt();
    let mut pb = ProgramBuilder::new();
    pb.add_function(fb).unwrap();
    pb.finish().unwrap()
}

/// A guard failing mid-trace (the uncovered parity at the body branch)
/// hands control back to the interpreter at the exact off-trace block;
/// every counter and every state bit stays identical.
#[test]
fn guard_failure_mid_trace_is_bit_identical() {
    let p = two_path_loop(1_000);
    // Primary trace through the even parity only.
    let mut ctl = ScriptedController::new(vec![TraceCommand::Install(vec![1, 2, 4, 5])]);
    assert_bit_identical(&p, &mut ctl, "guard-fail");
    let fails: u64 = ctl.excursions.iter().map(|e| e.guard_fails).sum();
    assert!(
        fails >= 400,
        "odd iterations must fail the parity guard: {fails}"
    );
    // Odd iterations interpret odd→latch and re-enter at header.
    assert!(ctl.excursions.len() >= 400);
    assert!(ctl.interpreted >= 800);
}

/// A controller that installs one trace up front and flushes the cache
/// after a fixed number of excursions: afterwards every block must come
/// from the interpreter again.
struct FlushAfter {
    after: usize,
    pending: Vec<TraceCommand>,
    excursions: Vec<TraceExcursion>,
    interpreted: u64,
}

impl ExecutionObserver for FlushAfter {
    fn on_block(&mut self, _event: &BlockEvent) {
        self.interpreted += 1;
    }
}

impl TraceController for FlushAfter {
    fn on_trace_exit(&mut self, excursion: &TraceExcursion) {
        self.excursions.push(*excursion);
        if self.excursions.len() == self.after {
            self.pending.push(TraceCommand::Flush);
        }
    }

    fn poll_command(&mut self) -> Option<TraceCommand> {
        self.pending.pop()
    }
}

/// Flushing severs links and drops traces mid-run without perturbing
/// execution: the run completes bit-identically, no excursion happens
/// after the flush, and the block ledger still balances.
#[test]
fn link_invalidation_on_flush_is_bit_identical() {
    let p = two_path_loop(1_000);
    let mut ctl = FlushAfter {
        after: 5,
        pending: vec![TraceCommand::Install(vec![1, 2, 4, 5])],
        excursions: Vec::new(),
        interpreted: 0,
    };
    let stats = assert_bit_identical(&p, &mut ctl, "flush");
    assert_eq!(ctl.excursions.len(), 5, "no excursions after the flush");
    let trace_blocks: u64 = ctl.excursions.iter().map(|e| e.blocks).sum();
    assert_eq!(
        trace_blocks + ctl.interpreted,
        stats.blocks_executed,
        "every block is either in an excursion or interpreted"
    );
}

/// With a tail fragment installed for the uncovered parity, the primary's
/// failing guard chains straight into it (a patched exit stub) and the
/// tail links back to the primary: the whole loop runs in trace-land as
/// one excursion, still bit-identical.
#[test]
fn divergence_chains_into_a_tail_fragment() {
    let p = two_path_loop(1_000);
    let mut ctl = ScriptedController::new(vec![
        TraceCommand::Install(vec![1, 2, 4, 5]),
        TraceCommand::Install(vec![3, 5]),
    ]);
    assert_bit_identical(&p, &mut ctl, "tail-fragment");
    let links: u64 = ctl.excursions.iter().map(|e| e.links).sum();
    let fails: u64 = ctl.excursions.iter().map(|e| e.guard_fails).sum();
    assert!(links >= 900, "loop closing + stub links: {links}");
    assert!(
        fails >= 400,
        "parity guard still fails, but chains: {fails}"
    );
    // The two fragments cover both parities: after the two installs the
    // interpreter only ever sees the entry block and the blocks before
    // the installs took effect.
    assert!(
        ctl.interpreted < 20,
        "steady state runs entirely in trace-land: {}",
        ctl.interpreted
    );
}

/// Fuel exhaustion is position-exact: the linked VM pre-checks the budget
/// before entering a traversal and falls back to interpretation, so
/// `OutOfFuel` fires at the very same block as plain interpretation.
#[test]
fn fuel_exhaustion_matches_plain_interpretation() {
    let p = two_path_loop(1_000);
    let config = RunConfig {
        max_blocks: 777,
        ..RunConfig::default()
    };

    let plain = Vm::new(&p)
        .with_config(config)
        .run(&mut NullObserver)
        .unwrap_err();
    let mut ctl = ScriptedController::new(vec![TraceCommand::Install(vec![1, 2, 4, 5])]);
    let linked = Vm::new(&p)
        .with_config(config)
        .run_linked(&mut ctl)
        .unwrap_err();

    assert_eq!(plain, linked);
    assert_eq!(plain, VmError::OutOfFuel { budget: 777 });
}
