//! Fleet profile-store contract tests.
//!
//! The store shares warm state across sessions, so the invariant it
//! must never bend is the one every other serving path already holds:
//! pre-warming changes *when* traces exist, never *what* the program
//! computes. A pre-warmed run's final statistics, memory, and globals
//! are bit-identical to a cold run at every optimization level, merges
//! are order-independent down to the byte, and corrupt or stale
//! profiles are refused exactly like corrupt snapshots.

use hotpath::dynamo::{EngineWarmState, FragmentRecord};
use hotpath::prelude::*;
use hotpath::serve::{
    MergePolicy, PrewarmOutcome, ProfileError, ProfileKey, ProfileStore, ProfileStoreConfig,
    Request, Response, ServeConfig, Session, SessionConfig, SessionManager, SessionProfile,
    SessionSnapshot,
};
use hotpath::vm::OptLevel;
use hotpath::workloads::ALL_WORKLOADS;

/// A plain interpreted run: the reference every serving path must match.
fn plain(name: WorkloadName, scale: Scale) -> (hotpath::vm::RunStats, Vec<i64>, Vec<i64>) {
    let program = build(name, scale).program;
    let mut vm = Vm::new(&program);
    let stats = vm
        .run(&mut hotpath::vm::NullObserver)
        .expect("workload runs");
    (stats, vm.memory().to_vec(), vm.globals().to_vec())
}

/// Opens a session and returns `(id, prewarm outcome)`.
fn open(manager: &SessionManager, config: SessionConfig) -> (u64, PrewarmOutcome) {
    match manager.request(Request::Open { config }) {
        Response::Opened {
            session, prewarm, ..
        } => (session, prewarm),
        other => panic!("open failed: {other:?}"),
    }
}

/// Drives an exec session to completion.
fn finish(manager: &SessionManager, session: u64) -> hotpath::vm::RunStats {
    loop {
        match manager.request(Request::Run {
            session,
            fuel: None,
        }) {
            Response::Ran { done: true, stats } => return stats,
            Response::Ran { done: false, .. } => {}
            Response::Busy => std::thread::sleep(std::time::Duration::from_millis(1)),
            other => panic!("run failed: {other:?}"),
        }
    }
}

/// Captures a session's exact machine state through the snapshot format.
fn machine_state(
    manager: &SessionManager,
    session: u64,
) -> (hotpath::vm::RunStats, Vec<i64>, Vec<i64>) {
    let Response::SnapshotBlob { blob } = manager.request(Request::Snapshot { session }) else {
        panic!("snapshot failed")
    };
    let saved = SessionSnapshot::decode(&blob)
        .expect("snapshot decodes")
        .vm
        .expect("exec session carries machine state");
    (saved.stats, saved.memory, saved.globals)
}

fn status(manager: &SessionManager, session: u64) -> hotpath::serve::SessionStatus {
    match manager.request(Request::Query { session }) {
        Response::Status(status) => status,
        other => panic!("query failed: {other:?}"),
    }
}

/// The acceptance criterion: for every workload at every optimization
/// level, a session pre-warmed from a published profile starts with
/// installed fragments before executing a single block (strictly ahead
/// of any cold session, whose first install necessarily costs blocks)
/// and still ends bit-identical to the cold run and to plain
/// interpretation.
#[test]
fn prewarmed_runs_are_bit_identical_for_every_workload_and_opt_level() {
    for level in [OptLevel::None, OptLevel::Guards, OptLevel::Full] {
        let manager = SessionManager::new(ServeConfig {
            shards: 2,
            ..ServeConfig::default()
        });
        for name in ALL_WORKLOADS {
            let reference = plain(name, Scale::Smoke);
            let config = SessionConfig::exec(name, Scale::Smoke).with_opt_level(level);

            // Cold run: no installs at admission, publish at the end.
            let (cold, outcome) = open(&manager, config.clone());
            assert_eq!(outcome, PrewarmOutcome::NotRequested);
            assert_eq!(
                status(&manager, cold).installs,
                0,
                "{name}@{level:?}: a cold session cannot have installs at admission"
            );
            let cold_stats = finish(&manager, cold);
            assert_eq!(cold_stats, reference.0, "{name}@{level:?}: cold stats");
            match manager.request(Request::PublishProfile { session: cold }) {
                Response::ProfilePublished { fragments, .. } => {
                    assert!(fragments >= 1, "{name}@{level:?}: nothing aggregated")
                }
                other => panic!("{name}@{level:?}: publish failed: {other:?}"),
            }

            // Pre-warmed run: fragments installed before any block runs —
            // blocks-to-first-trace is strictly below any cold number.
            let (warmed, outcome) = open(&manager, config.with_prewarm(true));
            match outcome {
                PrewarmOutcome::Warmed { fragments, .. } => {
                    assert!(fragments >= 1, "{name}@{level:?}: empty pre-warm")
                }
                other => panic!("{name}@{level:?}: expected Warmed, got {other:?}"),
            }
            let warm_status = status(&manager, warmed);
            assert_eq!(warm_status.stats.blocks_executed, 0);
            assert!(
                warm_status.installs >= 1,
                "{name}@{level:?}: pre-warm must install fragments at admission"
            );
            let warm_stats = finish(&manager, warmed);
            assert_eq!(warm_stats, cold_stats, "{name}@{level:?}: stats diverged");
            let machine = machine_state(&manager, warmed);
            assert_eq!(machine.1, reference.1, "{name}@{level:?}: memory diverged");
            assert_eq!(machine.2, reference.2, "{name}@{level:?}: globals diverged");

            for session in [cold, warmed] {
                manager.request(Request::Close { session });
            }
        }
    }
}

/// Real publisher profiles for one workload: K sessions run staggered
/// prefixes of the program and export their warm state.
fn staggered_profiles(name: WorkloadName, publishers: u64) -> Vec<SessionProfile> {
    let total = plain(name, Scale::Smoke).0.blocks_executed;
    (0..publishers)
        .map(|i| {
            let config = SessionConfig::exec(name, Scale::Smoke);
            let mut session = Session::open(i + 1, 0, config.clone());
            let budget = (total * (i + 1) / (publishers + 1)).max(1);
            session.run(Some(budget)).expect("publisher run");
            SessionProfile {
                key: ProfileKey::of(&config),
                epoch: session.epoch(),
                warm: session.engine().export_warm_state(),
            }
        })
        .filter(|p| !p.warm.is_empty())
        .collect()
}

/// Merging is commutative for every policy: any publish order or
/// interleaving across workloads yields byte-identical store contents.
#[test]
fn merges_are_order_independent_for_every_policy_and_interleaving() {
    let mut profiles: Vec<SessionProfile> = Vec::new();
    for name in [WorkloadName::Compress, WorkloadName::Li] {
        profiles.extend(staggered_profiles(name, 4));
    }
    assert!(profiles.len() >= 6, "publishers learned too little to test");
    for policy in [
        MergePolicy::Union,
        MergePolicy::FrequencyWeighted { min_percent: 50 },
        MergePolicy::ExponentialDecay { half_life: 4 },
    ] {
        let store = |order: &[usize]| {
            let s = ProfileStore::new(ProfileStoreConfig {
                default_policy: policy,
                ..ProfileStoreConfig::default()
            });
            for &i in order {
                s.publish(&profiles[i]).expect("publish");
            }
            s.encode()
        };
        let forward: Vec<usize> = (0..profiles.len()).collect();
        let reverse: Vec<usize> = forward.iter().rev().copied().collect();
        // An interleaving that alternates workloads and epochs.
        let mut shuffled = forward.clone();
        shuffled.rotate_left(3);
        shuffled.swap(0, profiles.len() - 1);
        let baseline = store(&forward);
        assert_eq!(
            baseline,
            store(&reverse),
            "{policy:?}: reverse order changed the store bytes"
        );
        assert_eq!(
            baseline,
            store(&shuffled),
            "{policy:?}: interleaved order changed the store bytes"
        );
    }
}

/// FNV-1a 64 over a byte slice — the profile blob's seal, reimplemented
/// here so the test can re-seal deliberately corrupted payloads and
/// prove the deeper validation layers fire.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn reseal(blob: &mut [u8]) {
    let body = blob.len() - 8;
    let seal = fnv1a64(&blob[..body]).to_le_bytes();
    blob[body..].copy_from_slice(&seal);
}

/// Profile blobs are refused exactly like snapshots: bit corruption
/// fails the seal, truncation fails fast, and a stale version is
/// rejected even when correctly sealed.
#[test]
fn corrupt_and_stale_profiles_are_rejected() {
    let profile = staggered_profiles(WorkloadName::Compress, 3)
        .pop()
        .expect("publisher learned something");
    let blob = profile.encode();
    assert_eq!(SessionProfile::decode(&blob).expect("round-trips"), profile);

    // Bit corruption anywhere in the body fails the seal check.
    let mut corrupt = blob.clone();
    corrupt[9] ^= 0x40;
    assert!(matches!(
        SessionProfile::decode(&corrupt),
        Err(ProfileError::ChecksumMismatch { .. })
    ));

    // Truncation fails before any field is interpreted.
    assert!(SessionProfile::decode(&blob[..blob.len() - 3]).is_err());
    assert!(matches!(
        SessionProfile::decode(&[]),
        Err(ProfileError::TooShort)
    ));

    // A stale version is refused even with a valid seal — mirror of the
    // snapshot format's stale-v2 refusal.
    let mut stale = blob.clone();
    stale[4] = 0;
    stale[5] = 0;
    reseal(&mut stale);
    assert!(matches!(
        SessionProfile::decode(&stale),
        Err(ProfileError::UnsupportedVersion(0))
    ));

    // Resealed trailing garbage is structurally malformed, not ignored.
    let mut padded = blob;
    padded.insert(padded.len() - 8, 0xAB);
    reseal(&mut padded);
    assert!(matches!(
        SessionProfile::decode(&padded),
        Err(ProfileError::Malformed(_))
    ));
}

/// A rejected pre-warm is advisory, never fatal: the session admits
/// cold and still completes bit-identical to plain interpretation.
#[test]
fn rejected_prewarms_leave_the_session_cold_but_correct() {
    let name = WorkloadName::Compress;
    let reference = plain(name, Scale::Smoke);

    // Store empty: admission reports the rejection and proceeds.
    let manager = SessionManager::new(ServeConfig::default());
    let (session, outcome) = open(
        &manager,
        SessionConfig::exec(name, Scale::Smoke).with_prewarm(true),
    );
    match outcome {
        PrewarmOutcome::Rejected { reason } => {
            assert!(
                reason.contains("no aggregate"),
                "unexpected reason: {reason}"
            )
        }
        other => panic!("expected Rejected on an empty store, got {other:?}"),
    }
    assert_eq!(finish(&manager, session), reference.0);
    manager.request(Request::Close { session });

    // Structurally invalid warm state: the direct import is refused and
    // the untouched session still runs to the identical result.
    let mut session = Session::open(7, 0, SessionConfig::exec(name, Scale::Smoke));
    let bogus = EngineWarmState {
        fragments: vec![FragmentRecord {
            blocks: vec![u32::MAX - 1],
            insts: 1,
        }],
        ..EngineWarmState::default()
    };
    assert!(
        session.prewarm(&bogus).is_err(),
        "out-of-range block accepted"
    );
    let (done, stats) = session.run(None).expect("run");
    assert!(done);
    assert_eq!(stats, reference.0, "rejected pre-warm perturbed execution");
}

/// The store refuses profiles that validation rejects, and publishing
/// never mixes keys: an aggregate only answers for its own workload.
#[test]
fn store_rejects_invalid_publishes_and_keeps_keys_apart() {
    let store = ProfileStore::new(ProfileStoreConfig::default());
    let profile = staggered_profiles(WorkloadName::Compress, 3)
        .pop()
        .expect("publisher learned something");

    // Empty warm state has nothing to merge.
    let empty = SessionProfile {
        key: profile.key,
        epoch: 1,
        warm: EngineWarmState::default(),
    };
    assert!(store.publish(&empty).is_err());

    // Structurally broken fragments are refused before aggregation.
    let broken = SessionProfile {
        key: profile.key,
        epoch: 1,
        warm: EngineWarmState {
            fragments: vec![FragmentRecord {
                blocks: Vec::new(),
                insts: 0,
            }],
            ..EngineWarmState::default()
        },
    };
    assert!(store.publish(&broken).is_err());

    store.publish(&profile).expect("valid publish");
    assert!(store.fetch(&profile.key).is_some());
    let other = ProfileKey::of(&SessionConfig::exec(WorkloadName::Li, Scale::Smoke));
    assert!(
        store.fetch(&other).is_none(),
        "an aggregate leaked across workload keys"
    );
}
