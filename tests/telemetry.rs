//! Telemetry contract tests: the event stream is deterministic, and
//! recorders are observationally neutral — installing one (or none) never
//! changes what the pipeline computes.

use hotpath::prelude::*;
use hotpath::telemetry::{self, NullRecorder};

/// The pipeline under observation: record a workload's path stream,
/// evaluate NET at Dynamo's shipped τ, and run the full Dynamo engine.
fn run_pipeline(name: WorkloadName) -> (PredictionOutcome, DynamoOutcome) {
    let w = build(name, Scale::Smoke);
    let mut ex = PathExtractor::new(StreamingSink::new());
    Vm::new(&w.program).run(&mut ex).expect("workload runs");
    let (sink, table) = ex.into_parts();
    let stream = sink.into_stream();
    let hot = stream.to_profile().hot_set(0.001);
    let outcome = evaluate(&stream, &table, &hot, &mut NetPredictor::new(50));
    let dynamo = run_dynamo(&w.program, &DynamoConfig::new(Scheme::Net, 50)).expect("dynamo");
    (outcome, dynamo)
}

fn assert_outcomes_bit_identical(
    name: WorkloadName,
    (pa, da): &(PredictionOutcome, DynamoOutcome),
    (pb, db): &(PredictionOutcome, DynamoOutcome),
) {
    // PredictionOutcome is integral throughout: exact equality is exact.
    assert_eq!(pa.scheme, pb.scheme, "{name}");
    assert_eq!(pa.delay, pb.delay, "{name}");
    assert_eq!(pa.total_flow, pb.total_flow, "{name}");
    assert_eq!(pa.hot_flow, pb.hot_flow, "{name}");
    assert_eq!(pa.profiled_flow, pb.profiled_flow, "{name}");
    assert_eq!(pa.hits, pb.hits, "{name}");
    assert_eq!(pa.noise, pb.noise, "{name}");
    assert_eq!(pa.missed_opportunity, pb.missed_opportunity, "{name}");
    assert_eq!(pa.predictions, pb.predictions, "{name}");
    assert_eq!(pa.hot_predictions, pb.hot_predictions, "{name}");
    assert_eq!(pa.counter_space, pb.counter_space, "{name}");
    assert_eq!(pa.cost, pb.cost, "{name}");
    // DynamoOutcome carries floats: compare their bit patterns, not their
    // approximate values — "no recorder" and "null recorder" must take the
    // exact same arithmetic path.
    for (label, a, b) in [
        ("interp", da.cycles.interp, db.cycles.interp),
        ("trace", da.cycles.trace, db.cycles.trace),
        ("native", da.cycles.native, db.cycles.native),
        ("profiling", da.cycles.profiling, db.cycles.profiling),
        ("build", da.cycles.build, db.cycles.build),
        ("transitions", da.cycles.transitions, db.cycles.transitions),
        (
            "cached_block_fraction",
            da.cached_block_fraction,
            db.cached_block_fraction,
        ),
    ] {
        assert_eq!(a.to_bits(), b.to_bits(), "{name}: cycles.{label}");
    }
    assert_eq!(da.fragments_installed, db.fragments_installed, "{name}");
    assert_eq!(da.fragments_live, db.fragments_live, "{name}");
    assert_eq!(da.flushes, db.flushes, "{name}");
    assert_eq!(da.spike_flushes, db.spike_flushes, "{name}");
    assert_eq!(da.bailed_out, db.bailed_out, "{name}");
    assert_eq!(da.paths_completed, db.paths_completed, "{name}");
    assert_eq!(da.insts_executed, db.insts_executed, "{name}");
}

#[test]
fn null_recorder_leaves_outcomes_bit_identical() {
    for name in [WorkloadName::Compress, WorkloadName::Li, WorkloadName::Go] {
        let bare = run_pipeline(name);
        let guard = telemetry::install(Box::new(NullRecorder));
        let nulled = run_pipeline(name);
        drop(guard);
        assert_outcomes_bit_identical(name, &bare, &nulled);
    }
}

/// The linked-trace backend (real superblock execution, batched trace
/// events) under the same contract: a recorder — or none — never changes
/// the run.
fn run_linked_pipeline(name: WorkloadName) -> LinkedRun {
    let w = build(name, Scale::Smoke);
    run_dynamo_linked(&w.program, &DynamoConfig::new(Scheme::Net, 50)).expect("linked dynamo")
}

#[test]
fn null_recorder_leaves_linked_runs_bit_identical() {
    for name in [WorkloadName::Compress, WorkloadName::Li, WorkloadName::Go] {
        let bare = run_linked_pipeline(name);
        let guard = telemetry::install(Box::new(NullRecorder));
        let nulled = run_linked_pipeline(name);
        drop(guard);
        assert_eq!(bare.stats, nulled.stats, "{name}: RunStats");
        let (da, db) = (&bare.outcome, &nulled.outcome);
        for (label, a, b) in [
            ("interp", da.cycles.interp, db.cycles.interp),
            ("trace", da.cycles.trace, db.cycles.trace),
            ("native", da.cycles.native, db.cycles.native),
            ("profiling", da.cycles.profiling, db.cycles.profiling),
            ("build", da.cycles.build, db.cycles.build),
            ("transitions", da.cycles.transitions, db.cycles.transitions),
            (
                "cached_block_fraction",
                da.cached_block_fraction,
                db.cached_block_fraction,
            ),
        ] {
            assert_eq!(a.to_bits(), b.to_bits(), "{name}: cycles.{label}");
        }
        assert_eq!(da.fragments_installed, db.fragments_installed, "{name}");
        assert_eq!(da.flushes, db.flushes, "{name}");
        assert_eq!(da.bailed_out, db.bailed_out, "{name}");
        assert_eq!(da.paths_completed, db.paths_completed, "{name}");
        assert_eq!(da.insts_executed, db.insts_executed, "{name}");
    }
}

#[cfg(feature = "telemetry")]
mod recorded {
    use super::*;
    use hotpath::telemetry::{Event, JsonlRecorder, SummaryRecorder};

    /// One full pipeline run captured as a JSONL byte stream.
    fn capture(name: WorkloadName) -> Vec<u8> {
        let (recorder, buffer) = JsonlRecorder::to_shared_buffer();
        let guard = telemetry::install(Box::new(recorder));
        let _ = run_pipeline(name);
        drop(guard);
        let bytes = buffer.borrow().clone();
        bytes
    }

    #[test]
    fn identical_runs_emit_byte_identical_event_streams() {
        for name in [WorkloadName::Compress, WorkloadName::M88ksim] {
            let first = capture(name);
            let second = capture(name);
            assert!(!first.is_empty(), "{name}: pipeline emitted no events");
            assert_eq!(first, second, "{name}: event streams diverged");
        }
    }

    #[test]
    fn event_stream_is_valid_jsonl_with_known_kinds() {
        let bytes = capture(WorkloadName::Compress);
        let text = std::str::from_utf8(&bytes).expect("utf-8 stream");
        let mut kinds = std::collections::BTreeSet::new();
        for line in text.lines() {
            let value = hotpath::telemetry::json::JsonValue::parse(line)
                .unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
            kinds.insert(
                value
                    .get("ev")
                    .and_then(|v| v.as_str())
                    .expect("every event has an ev tag")
                    .to_string(),
            );
        }
        // The pipeline exercises the whole event model end to end.
        for expected in [
            "vm_halt",
            "path_completed",
            "tau_trigger",
            "fragment_install",
            "transition",
        ] {
            assert!(kinds.contains(expected), "missing {expected} in {kinds:?}");
        }
    }

    #[test]
    fn linked_runs_emit_trace_events_and_feed_the_entry_histogram() {
        let (recorder, handle) = SummaryRecorder::new();
        let guard = telemetry::install(Box::new(recorder));
        let run = run_linked_pipeline(WorkloadName::Compress);
        drop(guard);
        let summary = handle.snapshot();
        assert!(summary.count("trace_enter") > 0, "trace entries observed");
        assert_eq!(
            summary.count("trace_enter"),
            summary.count("trace_exit"),
            "every excursion enters and exits exactly once"
        );
        assert_eq!(
            summary.count("fragment_install"),
            run.outcome.fragments_installed
        );
        let per_entry = summary
            .blocks_per_trace_entry()
            .expect("linked runs feed the blocks-per-trace-entry histogram");
        assert_eq!(per_entry.total(), summary.count("trace_exit"));
    }

    #[test]
    fn summary_counts_match_engine_outcome() {
        let (recorder, handle) = SummaryRecorder::new();
        let guard = telemetry::install(Box::new(recorder));
        let (_, dynamo) = run_pipeline(WorkloadName::Compress);
        drop(guard);
        let summary = handle.snapshot();
        assert_eq!(
            summary.count("fragment_install"),
            dynamo.fragments_installed,
            "every install is observed"
        );
        assert_eq!(summary.count("bailout"), u64::from(dynamo.bailed_out));
        assert!(summary.count("path_completed") > 0);
        let lengths = summary.path_length().expect("paths completed");
        assert!(lengths.total() >= dynamo.paths_completed);
    }

    /// An `io::Write` that appends into a shared buffer, so the bytes
    /// survive the recorder being moved into `telemetry::install`.
    #[derive(Clone)]
    struct SharedSink(std::rc::Rc<std::cell::RefCell<Vec<u8>>>);

    impl std::io::Write for SharedSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.borrow_mut().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn recorder_io_faults_drop_whole_events_and_never_perturb_the_run() {
        use hotpath::faultinject::{FaultPlan, FaultPoint, FaultWriter};

        let clean = run_pipeline(WorkloadName::Compress);

        // The same pipeline, recorded through a sink that fails a fixed
        // fraction of writes (deterministic seeded plan).
        let bytes = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let sink = FaultWriter::new(
            SharedSink(bytes.clone()),
            FaultPlan::new(9).with(FaultPoint::RecorderIo, 0.03),
        );
        let (recorder, dropped) = JsonlRecorder::to_writer_counting(Box::new(sink));
        let guard = telemetry::install(Box::new(recorder));
        let faulted = run_pipeline(WorkloadName::Compress);
        drop(guard);

        // Telemetry loss is counted, never silent — and never corrupts
        // the stream: every surviving line still parses, because a failed
        // write drops the whole event.
        assert!(dropped.get() > 0, "the I/O plan must actually fire");
        let text = String::from_utf8(bytes.borrow().clone()).expect("utf-8 stream");
        let mut survived = 0u64;
        for line in text.lines() {
            hotpath::telemetry::json::JsonValue::parse(line)
                .unwrap_or_else(|e| panic!("torn line `{line}`: {e}"));
            survived += 1;
        }
        assert!(survived > 0, "some events must still get through");

        // Observational neutrality holds even with a failing sink.
        assert_outcomes_bit_identical(WorkloadName::Compress, &clean, &faulted);
    }

    #[test]
    fn emit_is_lazy_without_a_recorder() {
        // The event expression must not be evaluated when nothing is
        // installed — this is the zero-overhead contract's observable half.
        let mut evaluated = false;
        telemetry::emit!({
            evaluated = true;
            Event::RunStart { label: "x" }
        });
        assert!(!evaluated, "emit! evaluated its argument with no recorder");
    }
}
