//! Serving-layer contract tests: session isolation, admission control,
//! snapshot round-trips, and the TCP front-end.
//!
//! The load-bearing invariant throughout is the one the trace backend
//! already guarantees locally: final statistics, memory, and globals are
//! bit-identical to a plain interpreted run no matter how execution is
//! sliced, flushed, snapshotted, or multiplexed with other sessions.

use hotpath::prelude::*;
use hotpath::serve::{
    serve, Client, Request, Response, ServeConfig, SessionConfig, SessionManager, SessionSnapshot,
};
use hotpath::workloads::ALL_WORKLOADS;

/// A plain interpreted run: the reference every serving path must match.
fn plain(name: WorkloadName, scale: Scale) -> (hotpath::vm::RunStats, Vec<i64>, Vec<i64>) {
    let program = build(name, scale).program;
    let mut vm = Vm::new(&program);
    let mut observer = hotpath::vm::NullObserver;
    let stats = vm.run(&mut observer).expect("workload runs");
    (stats, vm.memory().to_vec(), vm.globals().to_vec())
}

fn open(manager: &SessionManager, config: SessionConfig) -> u64 {
    match manager.request(Request::Open { config }) {
        Response::Opened { session, .. } => session,
        other => panic!("open failed: {other:?}"),
    }
}

/// Drives an exec session to completion in `fuel`-block slices.
fn finish(manager: &SessionManager, session: u64, fuel: Option<u64>) -> hotpath::vm::RunStats {
    loop {
        match manager.request(Request::Run { session, fuel }) {
            Response::Ran { done: true, stats } => return stats,
            Response::Ran { done: false, .. } => {}
            Response::Busy => std::thread::sleep(std::time::Duration::from_millis(1)),
            other => panic!("run failed: {other:?}"),
        }
    }
}

/// Captures a session's exact machine state through the snapshot format.
fn machine_state(
    manager: &SessionManager,
    session: u64,
) -> (hotpath::vm::RunStats, Vec<i64>, Vec<i64>) {
    let Response::SnapshotBlob { blob } = manager.request(Request::Snapshot { session }) else {
        panic!("snapshot failed")
    };
    let saved = SessionSnapshot::decode(&blob)
        .expect("snapshot decodes")
        .vm
        .expect("exec session carries machine state");
    (saved.stats, saved.memory, saved.globals)
}

/// The acceptance criterion: for every workload, save at the midpoint,
/// restore into a fresh session, finish — and end bit-identical to both
/// an uninterrupted serving run and a plain interpreted run.
#[test]
fn snapshot_round_trip_is_bit_identical_for_every_workload() {
    let manager = SessionManager::new(ServeConfig {
        shards: 2,
        ..ServeConfig::default()
    });
    for name in ALL_WORKLOADS {
        let reference = plain(name, Scale::Smoke);
        let config = SessionConfig::exec(name, Scale::Smoke);

        // Uninterrupted serving run.
        let solo = open(&manager, config.clone());
        let solo_stats = finish(&manager, solo, None);
        assert_eq!(solo_stats, reference.0, "{name}: uninterrupted stats");
        assert_eq!(
            machine_state(&manager, solo).1,
            reference.1,
            "{name}: memory"
        );

        // Save at the midpoint, restore, finish.
        let interrupted = open(&manager, config);
        let midpoint = reference.0.blocks_executed / 2;
        match manager.request(Request::Run {
            session: interrupted,
            fuel: Some(midpoint),
        }) {
            Response::Ran { done, stats } => {
                assert!(!done, "{name}: midpoint must not complete the run");
                assert!(stats.blocks_executed <= midpoint, "{name}: fuel respected");
            }
            other => panic!("{name}: midpoint run failed: {other:?}"),
        }
        let Response::SnapshotBlob { blob } = manager.request(Request::Snapshot {
            session: interrupted,
        }) else {
            panic!("{name}: snapshot failed")
        };
        let restored = match manager.request(Request::Restore { blob }) {
            Response::Opened { session, .. } => session,
            other => panic!("{name}: restore failed: {other:?}"),
        };
        let restored_stats = finish(&manager, restored, Some(700));
        let (stats, memory, globals) = machine_state(&manager, restored);
        assert_eq!(restored_stats, reference.0, "{name}: restored stats");
        assert_eq!(stats, reference.0, "{name}: snapshot stats");
        assert_eq!(memory, reference.1, "{name}: restored memory");
        assert_eq!(globals, reference.2, "{name}: restored globals");

        for session in [solo, interrupted, restored] {
            manager.request(Request::Close { session });
        }
    }
}

/// Two sessions on the same shard never share trace state: forcing
/// flushes in one leaves the other bit-identical to a run that had the
/// shard to itself.
#[test]
fn same_shard_sessions_are_isolated_under_forced_flushes() {
    let name = WorkloadName::Compress;
    let reference = plain(name, Scale::Smoke);
    let single_shard = ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    };

    // Solo reference through the serving layer, same slicing as below.
    let solo_manager = SessionManager::new(single_shard);
    let solo = open(&solo_manager, SessionConfig::exec(name, Scale::Smoke));
    finish(&solo_manager, solo, Some(500));
    let solo_machine = machine_state(&solo_manager, solo);

    // Interleaved run: victim advances in the same 500-block slices while
    // a noisy neighbour runs and has its cache flushed every slice.
    let manager = SessionManager::new(single_shard);
    let victim = open(&manager, SessionConfig::exec(name, Scale::Smoke));
    let noisy = open(&manager, SessionConfig::exec(name, Scale::Smoke));
    let mut victim_done = false;
    while !victim_done {
        match manager.request(Request::Run {
            session: victim,
            fuel: Some(500),
        }) {
            Response::Ran { done, .. } => victim_done = done,
            other => panic!("victim run failed: {other:?}"),
        }
        manager.request(Request::Run {
            session: noisy,
            fuel: Some(300),
        });
        let Response::Status(status) = manager.request(Request::Flush { session: noisy }) else {
            panic!("flush failed")
        };
        assert_eq!(status.session, noisy);
    }
    let victim_machine = machine_state(&manager, victim);
    assert_eq!(victim_machine, solo_machine, "flushes next door leaked");
    assert_eq!(victim_machine.0, reference.0, "serving diverged from plain");

    // The noisy neighbour still finishes correctly despite the flushes.
    let noisy_stats = finish(&manager, noisy, Some(300));
    assert_eq!(noisy_stats, reference.0, "flushed session diverged");
}

/// A full session table refuses new opens with `Busy` until a slot
/// frees; the refusal is explicit, not a queue that grows.
#[test]
fn full_session_table_answers_busy() {
    let manager = SessionManager::new(ServeConfig {
        shards: 1,
        max_sessions_per_shard: 2,
        ..ServeConfig::default()
    });
    let config = SessionConfig::exec(WorkloadName::Compress, Scale::Smoke);
    let first = open(&manager, config.clone());
    let _second = open(&manager, config.clone());
    assert_eq!(
        manager.request(Request::Open {
            config: config.clone()
        }),
        Response::Busy,
        "third open must be refused"
    );
    manager.request(Request::Close { session: first });
    open(&manager, config); // slot freed, admission resumes
}

/// A full shard queue surfaces as `Busy` — and the backpressure never
/// perturbs the sessions doing the work.
#[test]
fn full_queue_answers_busy_without_perturbing_runs() {
    let name = WorkloadName::Compress;
    let reference = plain(name, Scale::Small);
    let manager = std::sync::Arc::new(SessionManager::new(ServeConfig {
        shards: 1,
        queue_depth: 1,
        ..ServeConfig::default()
    }));
    let sessions: Vec<u64> = (0..3)
        .map(|_| open(&manager, SessionConfig::exec(name, Scale::Small)))
        .collect();

    // Three simultaneous unbounded runs against a depth-1 queue: one
    // occupies the worker, one its queue slot, so the third submission
    // must be refused. Each thread records the backpressure it absorbed.
    let barrier = std::sync::Arc::new(std::sync::Barrier::new(sessions.len()));
    let workers: Vec<_> = sessions
        .into_iter()
        .map(|session| {
            let manager = std::sync::Arc::clone(&manager);
            let barrier = std::sync::Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let mut saw_busy = false;
                let stats = loop {
                    match manager.request(Request::Run {
                        session,
                        fuel: None,
                    }) {
                        Response::Ran { done: true, stats } => break stats,
                        Response::Ran { done: false, .. } => {}
                        Response::Busy => {
                            saw_busy = true;
                            std::thread::sleep(std::time::Duration::from_millis(1));
                        }
                        other => panic!("run failed: {other:?}"),
                    }
                };
                (stats, saw_busy)
            })
        })
        .collect();

    let mut any_busy = false;
    for worker in workers {
        let (stats, saw_busy) = worker.join().expect("worker run");
        assert_eq!(stats, reference.0, "backpressure changed a result");
        any_busy |= saw_busy;
    }
    assert!(any_busy, "never observed queue backpressure");
}

/// Per-session fuel budgets are the admission control's third layer:
/// once spent, further run requests fail loudly.
#[test]
fn fuel_budget_exhaustion_fails_run_requests() {
    let manager = SessionManager::new(ServeConfig::default());
    let session = open(
        &manager,
        SessionConfig {
            fuel_budget: Some(100),
            ..SessionConfig::exec(WorkloadName::Compress, Scale::Smoke)
        },
    );
    let mut spent = 0;
    loop {
        match manager.request(Request::Run {
            session,
            fuel: Some(40),
        }) {
            Response::Ran { done, stats } => {
                assert!(!done, "smoke compress far exceeds 100 blocks");
                assert!(stats.blocks_executed <= 100, "budget overrun");
                spent = stats.blocks_executed;
            }
            Response::Error { message } => {
                assert!(message.contains("budget"), "unexpected error: {message}");
                break;
            }
            other => panic!("run failed: {other:?}"),
        }
    }
    assert_eq!(spent, 100, "budget must be spendable to the last block");
}

/// Ingest sessions profile a client-streamed event batch exactly as a
/// local engine observing the same run would.
#[test]
fn ingest_sessions_match_a_local_engine() {
    struct Collect(Vec<BlockEvent>);
    impl ExecutionObserver for Collect {
        fn on_block(&mut self, event: &BlockEvent) {
            self.0.push(*event);
        }
    }
    let program = build(WorkloadName::Compress, Scale::Smoke).program;
    let mut collector = Collect(Vec::new());
    Vm::new(&program).run(&mut collector).expect("runs");
    let events = collector.0;

    // Local reference: an engine fed the same stream directly.
    let mut local = LinkedEngine::new(DynamoConfig::new(Scheme::Net, 50));
    for event in &events {
        local.on_block(event);
    }
    while local.poll_command().is_some() {}

    let manager = SessionManager::new(ServeConfig::default());
    let session = open(&manager, SessionConfig::ingest());
    let mut totals = (0, 0, 0);
    for batch in events.chunks(1000) {
        match manager.request(Request::Ingest {
            session,
            events: batch.to_vec(),
        }) {
            Response::Ingested {
                events,
                paths,
                fragments,
            } => totals = (events, paths, fragments),
            other => panic!("ingest failed: {other:?}"),
        }
    }
    assert_eq!(totals.0, events.len() as u64, "every event counted");
    assert_eq!(totals.1, local.paths_completed(), "paths diverged");
    assert_eq!(totals.2, local.cache().len() as u64, "fragments diverged");
    assert!(totals.1 > 0, "stream must complete paths");

    // Mode mixing is rejected, not silently tolerated.
    let exec = open(
        &manager,
        SessionConfig::exec(WorkloadName::Compress, Scale::Smoke),
    );
    assert!(matches!(
        manager.request(Request::Ingest {
            session: exec,
            events: events[..10].to_vec(),
        }),
        Response::Error { .. }
    ));
    assert!(matches!(
        manager.request(Request::Run {
            session,
            fuel: None
        }),
        Response::Error { .. }
    ));
}

/// N concurrent sessions across the shard pool each end bit-identical
/// to a plain run: zero cross-session divergence under real threads.
#[test]
fn concurrent_sessions_across_shards_never_diverge() {
    let names = [
        WorkloadName::Compress,
        WorkloadName::Go,
        WorkloadName::Li,
        WorkloadName::Perl,
    ];
    let manager = std::sync::Arc::new(SessionManager::new(ServeConfig {
        shards: 4,
        ..ServeConfig::default()
    }));
    let workers: Vec<_> = names
        .into_iter()
        .map(|name| {
            let manager = std::sync::Arc::clone(&manager);
            std::thread::spawn(move || {
                let session = open(&manager, SessionConfig::exec(name, Scale::Smoke));
                let stats = finish(&manager, session, Some(1000));
                (name, stats, machine_state(&manager, session))
            })
        })
        .collect();
    for worker in workers {
        let (name, stats, machine) = worker.join().expect("session thread");
        let reference = plain(name, Scale::Smoke);
        assert_eq!(stats, reference.0, "{name}: stats diverged");
        assert_eq!(machine.1, reference.1, "{name}: memory diverged");
        assert_eq!(machine.2, reference.2, "{name}: globals diverged");
    }
}

/// Aggregate throughput scales with the shard pool. Gated on real
/// parallelism: on a single-core box the ratio is meaningless.
#[test]
fn sharded_aggregate_scales_when_cores_allow() {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores < 4 {
        eprintln!("skipping scaling assertion: only {cores} core(s)");
        return;
    }
    let name = WorkloadName::Compress;
    let sessions = 4u32;

    // Single-session baseline.
    let solo_manager = SessionManager::new(ServeConfig {
        shards: 1,
        ..ServeConfig::default()
    });
    let solo = open(&solo_manager, SessionConfig::exec(name, Scale::Small));
    let start = std::time::Instant::now();
    let solo_stats = finish(&solo_manager, solo, None);
    let solo_rate = solo_stats.blocks_executed as f64 / start.elapsed().as_secs_f64();

    // Four sessions across four shards, one driver thread each.
    let manager = std::sync::Arc::new(SessionManager::new(ServeConfig {
        shards: 4,
        ..ServeConfig::default()
    }));
    let start = std::time::Instant::now();
    let workers: Vec<_> = (0..sessions)
        .map(|_| {
            let manager = std::sync::Arc::clone(&manager);
            std::thread::spawn(move || {
                let session = open(&manager, SessionConfig::exec(name, Scale::Small));
                finish(&manager, session, None).blocks_executed
            })
        })
        .collect();
    let total: u64 = workers.into_iter().map(|w| w.join().expect("worker")).sum();
    let aggregate_rate = total as f64 / start.elapsed().as_secs_f64();

    let ratio = aggregate_rate / solo_rate;
    assert!(
        ratio >= 3.0,
        "4-shard aggregate only {ratio:.2}x the single-session rate"
    );
}

/// The TCP transport is byte-faithful to the in-process API, including
/// the protocol-level snapshot round trip.
#[test]
fn tcp_round_trip_matches_plain_execution() {
    let name = WorkloadName::Compress;
    let reference = plain(name, Scale::Smoke);
    let handle = serve("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");

    let (session, _shard) = client
        .open(SessionConfig::exec(name, Scale::Smoke))
        .expect("open");
    let last = loop {
        let (done, stats) = client.run(session, Some(2000)).expect("run slice");
        if done {
            break stats;
        }
    };
    assert_eq!(last, reference.0, "TCP run diverged from plain");

    let status = client.query(session).expect("query");
    assert!(status.done);
    assert_eq!(status.workload, "compress");
    assert_eq!(status.stats, reference.0);

    // Snapshot over the wire, restore over the wire: the restored
    // session carries the exact finished machine state.
    let blob = client.snapshot(session).expect("snapshot");
    let saved = SessionSnapshot::decode(&blob).expect("blob decodes");
    assert_eq!(
        saved.vm.as_ref().expect("machine state").memory,
        reference.1
    );
    let (restored, _) = client.restore(blob).expect("restore");
    let (done, stats) = client.run(restored, None).expect("restored run");
    assert!(done, "restored-at-completion session is already done");
    assert_eq!(stats, reference.0);

    assert_eq!(
        client.close(session).expect("close"),
        reference.0.blocks_executed
    );
    client.close(restored).expect("close restored");
    client.shutdown_server().expect("shutdown");
    handle.wait();
}

/// Corrupt snapshot blobs are rejected by checksum before anything is
/// parsed — over the wire, not just in unit tests.
#[test]
fn tcp_restore_rejects_corrupt_blobs() {
    let handle = serve("127.0.0.1:0", ServeConfig::default()).expect("bind");
    let mut client = Client::connect(handle.addr()).expect("connect");
    let (session, _) = client
        .open(SessionConfig::exec(WorkloadName::Compress, Scale::Smoke))
        .expect("open");
    let mut blob = client.snapshot(session).expect("snapshot");
    let mid = blob.len() / 2;
    blob[mid] ^= 0xFF;
    let err = client.restore(blob).expect_err("corrupt blob must fail");
    assert!(
        err.to_string().contains("checksum"),
        "unexpected error: {err}"
    );
    client.shutdown_server().expect("shutdown");
    handle.wait();
}

#[cfg(feature = "telemetry")]
mod telemetry_events {
    use super::*;
    use hotpath::telemetry::{self, SummaryRecorder};

    /// Session lifecycle and snapshot traffic surface as telemetry on
    /// the requesting thread.
    #[test]
    fn serving_emits_session_and_snapshot_events() {
        let (recorder, handle) = SummaryRecorder::new();
        let guard = telemetry::install(Box::new(recorder));
        let manager = SessionManager::new(ServeConfig::default());
        let session = open(
            &manager,
            SessionConfig::exec(WorkloadName::Compress, Scale::Smoke),
        );
        manager.request(Request::Run {
            session,
            fuel: Some(500),
        });
        let Response::SnapshotBlob { blob } = manager.request(Request::Snapshot { session }) else {
            panic!("snapshot failed")
        };
        let Response::Opened {
            session: restored, ..
        } = manager.request(Request::Restore { blob })
        else {
            panic!("restore failed")
        };
        manager.request(Request::Close { session });
        manager.request(Request::Close { session: restored });
        drop(manager);
        drop(guard);
        let summary = handle.snapshot();
        for (kind, at_least) in [
            ("session_opened", 2), // fresh open + restore
            ("snapshot_saved", 1),
            ("snapshot_restored", 1),
            ("session_closed", 2),
        ] {
            assert!(
                summary.count(kind) >= at_least,
                "expected {at_least}+ {kind}, saw {}",
                summary.count(kind)
            );
        }
    }
}
