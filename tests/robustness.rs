//! Robustness: every injectable fault must be *absorbed* — the run
//! recovers and finishes with bit-identical observable state (RunStats,
//! data memory, globals) to plain interpretation, because every fault
//! models a legal degradation (a trace missing, a cache flushed, a
//! compiled excursion denied), never a semantic change.
//!
//! Guards here:
//!
//! 1. **Per-fault-point recovery.** Each [`FaultPoint`] the VM hooks is
//!    driven by a seeded plan and proven to (a) actually fire and (b)
//!    leave the final state bit-identical.
//! 2. **Panic isolation.** An injected trace panic poisons the fragment
//!    (blacklisted across flushes) and the run continues interpreted.
//! 3. **Bail-out and ladder sweeps.** All nine workloads stay
//!    bit-identical under a hair-trigger bail-out and under the staged
//!    degradation ladder.
//! 4. **Re-promotion.** A phase-shift workload demonstrably walks the
//!    ladder down during cache churn and back up after the phase change
//!    (telemetry-gated).
//! 5. **Serve-layer faults.** The wire-fault matrix (torn writes,
//!    resets, corrupt frames, stalls, delayed reads) on both TCP
//!    front-ends, shard-panic supervision with snapshot re-admission,
//!    the client's bounded retry budget, and the configurable drain
//!    deadline.

use hotpath::dynamo::{
    BailoutPolicy, DegradeConfig, DynamoConfig, LadderMode, LinkedEngine, Scheme,
};
use hotpath::ir::builder::{FunctionBuilder, ProgramBuilder};
use hotpath::ir::{CmpOp, Program};
use hotpath::vm::{
    FaultInjector, FaultPlan, FaultPoint, NullObserver, RunStats, ScriptedController, TraceCommand,
    TraceController, Vm,
};
use hotpath::workloads::{suite, Scale};

/// Block ids, in build order: 0 = implicit entry, then `new_block` order:
/// header=1, body=2, odd=3, even=4, latch=5, exit=6.
fn two_path_loop(trip: i64) -> Program {
    let mut fb = FunctionBuilder::new("main");
    let i = fb.reg();
    let header = fb.new_block();
    let body = fb.new_block();
    let odd = fb.new_block();
    let even = fb.new_block();
    let latch = fb.new_block();
    let exit = fb.new_block();
    fb.const_(i, 0);
    fb.jump(header);
    fb.switch_to(header);
    let c = fb.cmp_imm(CmpOp::Lt, i, trip);
    fb.branch(c, body, exit);
    fb.switch_to(body);
    let par = fb.reg();
    fb.and_imm(par, i, 1);
    fb.branch(par, odd, even);
    fb.switch_to(odd);
    fb.jump(latch);
    fb.switch_to(even);
    fb.jump(latch);
    fb.switch_to(latch);
    fb.add_imm(i, i, 1);
    fb.jump(header);
    fb.switch_to(exit);
    fb.halt();
    let mut pb = ProgramBuilder::new();
    pb.add_function(fb).unwrap();
    pb.finish().unwrap()
}

/// Runs `program` plain, then linked under `engine` with `plan` armed;
/// asserts bit-identical final state and returns the faulted VM (its
/// injector counters tell the caller what fired) plus the shared stats.
fn assert_faulted_identical<C: TraceController>(
    program: &Program,
    plan: FaultPlan,
    engine: &mut C,
    tag: &str,
) -> (Vm, RunStats) {
    let mut plain_vm = Vm::new(program);
    let plain = plain_vm.run(&mut NullObserver).unwrap();

    let mut linked_vm = Vm::new(program).with_faults(FaultInjector::new(plan));
    let linked = linked_vm.run_linked(engine).unwrap();

    assert_eq!(plain, linked, "{tag}: RunStats");
    assert_eq!(plain_vm.memory(), linked_vm.memory(), "{tag}: final memory");
    assert_eq!(plain_vm.globals(), linked_vm.globals(), "{tag}: globals");
    (linked_vm, linked)
}

#[test]
fn spurious_guard_failures_recover_bit_identically() {
    let p = two_path_loop(5_000);
    let plan = FaultPlan::new(11).with(FaultPoint::GuardFail, 0.05);
    let mut ctl = ScriptedController::new(vec![TraceCommand::Install(vec![1, 2, 4, 5])]);
    let (vm, _) = assert_faulted_identical(&p, plan, &mut ctl, "guard_fail");
    assert!(
        vm.faults().injected(FaultPoint::GuardFail) > 0,
        "the plan must actually fire"
    );
    // Spurious failures end excursions early but never corrupt them:
    // every excursion still accounted its blocks.
    assert!(!ctl.excursions.is_empty());
}

#[test]
fn forced_cache_flushes_recover_bit_identically() {
    let p = two_path_loop(5_000);
    let plan = FaultPlan::new(12).with(FaultPoint::Flush, 0.005);
    // A scripted single trace: after the injected flush evicts it the
    // rest of the run stays interpreted, so the dispatch loop (where the
    // fault point lives) keeps iterating and the plan keeps drawing.
    let mut ctl = ScriptedController::new(vec![TraceCommand::Install(vec![1, 2, 4, 5])]);
    let (vm, _) = assert_faulted_identical(&p, plan, &mut ctl, "flush");
    assert!(vm.faults().injected(FaultPoint::Flush) > 0);
}

#[test]
fn fuel_starvation_denials_recover_bit_identically() {
    let p = two_path_loop(5_000);
    let plan = FaultPlan::new(13).with(FaultPoint::FuelStarve, 0.2);
    let mut ctl = ScriptedController::new(vec![TraceCommand::Install(vec![1, 2, 4, 5])]);
    let (vm, stats) = assert_faulted_identical(&p, plan, &mut ctl, "fuel_starve");
    let denied = vm.faults().injected(FaultPoint::FuelStarve);
    assert!(denied > 0, "starvation must actually deny dispatches");
    // Denied entries fall back to interpretation: the block ledger still
    // balances between excursions and interpreted blocks.
    let trace_blocks: u64 = ctl.excursions.iter().map(|e| e.blocks).sum();
    assert_eq!(trace_blocks + ctl.interpreted, stats.blocks_executed);
}

#[test]
fn fragment_install_rejections_recover_bit_identically() {
    let p = two_path_loop(5_000);
    let plan = FaultPlan::new(14).with(FaultPoint::InstallReject, 0.9);
    let mut engine = LinkedEngine::new(DynamoConfig::new(Scheme::Net, 5));
    let (vm, _) = assert_faulted_identical(&p, plan, &mut engine, "install_reject");
    assert!(
        vm.faults().injected(FaultPoint::InstallReject) > 0,
        "rejections must actually drop installs"
    );
}

#[test]
fn injected_trace_panic_poisons_the_fragment_and_recovers() {
    let p = two_path_loop(2_000);
    let plan = FaultPlan::new(15).with(FaultPoint::TracePanic, 1.0);
    let mut ctl = ScriptedController::new(vec![
        TraceCommand::Install(vec![1, 2, 4, 5]),
        TraceCommand::Install(vec![3, 5]),
    ]);
    // The unwind is caught by the VM; silence the default hook's stderr
    // backtrace for the injected panic.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        assert_faulted_identical(&p, plan, &mut ctl, "trace_panic")
    }));
    std::panic::set_hook(prev);
    let (vm, _) = result.expect("the VM absorbs the injected panic");
    assert!(vm.faults().injected(FaultPoint::TracePanic) >= 1);
    // The panicking excursion never completes: no excursion events, and
    // the poisoned head is blacklisted so execution stays interpreted.
    assert!(
        ctl.excursions.is_empty(),
        "panicked excursions must not surface: {:?}",
        ctl.excursions.len()
    );
}

#[test]
fn all_faults_together_recover_across_both_schemes() {
    let p = two_path_loop(4_000);
    for (seed, scheme) in [(21, Scheme::Net), (22, Scheme::PathProfile)] {
        let plan = FaultPlan::uniform(seed, 0.02);
        let mut engine = LinkedEngine::new(DynamoConfig::new(scheme, 5));
        let (vm, _) = assert_faulted_identical(&p, plan, &mut engine, &format!("uniform/{scheme}"));
        assert!(vm.faults().total_injected() > 0);
    }
}

#[test]
fn hair_trigger_bailout_is_bit_identical_across_the_suite() {
    for w in suite(Scale::Small) {
        let mut cfg = DynamoConfig::new(Scheme::Net, 10);
        cfg.bailout = Some(BailoutPolicy {
            check_every_paths: 1,
            max_installs: 0,
        });
        let mut engine = LinkedEngine::new(cfg);
        let tag = format!("{:?}/bailout", w.name);

        let mut plain_vm = Vm::new(&w.program);
        let plain = plain_vm.run(&mut NullObserver).unwrap();
        let mut linked_vm = Vm::new(&w.program);
        let linked = linked_vm.run_linked(&mut engine).unwrap();

        assert_eq!(plain, linked, "{tag}: RunStats");
        assert_eq!(plain_vm.memory(), linked_vm.memory(), "{tag}: memory");
        assert_eq!(plain_vm.globals(), linked_vm.globals(), "{tag}: globals");
        assert!(
            engine.bailed_out(),
            "{tag}: the first install must trip the hair trigger"
        );
    }
}

#[test]
fn degradation_ladder_is_bit_identical_across_the_suite() {
    for w in suite(Scale::Small) {
        let mut cfg = DynamoConfig::new(Scheme::Net, 10);
        // Aggressive ladder: a single flush in a window degrades.
        cfg.max_fragments = 4;
        cfg.degrade = Some(DegradeConfig {
            window_events: 2_000,
            max_flushes_per_window: 0,
            ..DegradeConfig::default()
        });
        let mut engine = LinkedEngine::new(cfg);
        let tag = format!("{:?}/ladder", w.name);

        let mut plain_vm = Vm::new(&w.program);
        let plain = plain_vm.run(&mut NullObserver).unwrap();
        let mut linked_vm = Vm::new(&w.program);
        let linked = linked_vm.run_linked(&mut engine).unwrap();

        assert_eq!(plain, linked, "{tag}: RunStats");
        assert_eq!(plain_vm.memory(), linked_vm.memory(), "{tag}: memory");
        assert_eq!(plain_vm.globals(), linked_vm.globals(), "{tag}: globals");
    }
}

/// Two phases. The storm phase rotates a 3-way switch (`i % 3`), so any
/// single trace — even with a linked tail — always has an uncovered
/// successor that exits back to the dispatch loop; against a 1-fragment
/// cache that keeps the install/capacity-flush storm (and the watchdog's
/// event clock) running. The hot phase is a straight 2-block loop that
/// caches as one healthy fragment. Block ids: entry=0, then h1=1,
/// body=2, c0=3, c1=4, c2=5, latch=6, h2=7, b2a=8, b2b=9, exit=10.
fn phase_shift_program(storm_trips: i64, hot_trips: i64) -> Program {
    let mut fb = FunctionBuilder::new("main");
    let i = fb.reg();
    let acc = fb.reg();
    let h1 = fb.new_block();
    let body = fb.new_block();
    let c0 = fb.new_block();
    let c1 = fb.new_block();
    let c2 = fb.new_block();
    let latch = fb.new_block();
    let h2 = fb.new_block();
    let b2a = fb.new_block();
    let b2b = fb.new_block();
    let exit = fb.new_block();
    fb.const_(i, 0);
    fb.const_(acc, 0);
    fb.jump(h1);
    fb.switch_to(h1);
    let c = fb.cmp_imm(CmpOp::Lt, i, storm_trips);
    fb.branch(c, body, h2);
    fb.switch_to(body);
    let m = fb.reg();
    fb.rem_imm(m, i, 3);
    fb.switch(m, vec![c0, c1], c2);
    fb.switch_to(c0);
    fb.add_imm(acc, acc, 1);
    fb.jump(latch);
    fb.switch_to(c1);
    fb.add_imm(acc, acc, 2);
    fb.jump(latch);
    fb.switch_to(c2);
    fb.add_imm(acc, acc, 3);
    fb.jump(latch);
    fb.switch_to(latch);
    fb.add_imm(i, i, 1);
    fb.jump(h1);
    fb.switch_to(h2);
    fb.const_(i, 0);
    fb.jump(b2a);
    fb.switch_to(b2a);
    let c2b = fb.cmp_imm(CmpOp::Lt, i, hot_trips);
    fb.branch(c2b, b2b, exit);
    fb.switch_to(b2b);
    fb.add_imm(i, i, 1);
    fb.add_imm(acc, acc, 1);
    fb.jump(b2a);
    fb.switch_to(exit);
    fb.halt();
    let mut pb = ProgramBuilder::new();
    pb.add_function(fb).unwrap();
    pb.finish().unwrap()
}

/// The ladder configuration the phase-shift tests run: tiny cache so the
/// alternating phase storms it with capacity flushes, small windows so
/// the ladder reacts within the run.
fn phase_shift_config() -> DynamoConfig {
    let mut cfg = DynamoConfig::new(Scheme::Net, 5);
    cfg.max_fragments = 1;
    cfg.degrade = Some(DegradeConfig {
        window_events: 400,
        max_flushes_per_window: 1,
        cooldown_windows: 2,
        ..DegradeConfig::default()
    });
    cfg
}

#[test]
fn phase_shift_walks_the_ladder_and_stays_bit_identical() {
    let p = phase_shift_program(8_000, 8_000);
    let mut engine = LinkedEngine::new(phase_shift_config());

    let mut plain_vm = Vm::new(&p);
    let plain = plain_vm.run(&mut NullObserver).unwrap();
    let mut linked_vm = Vm::new(&p);
    let linked = linked_vm.run_linked(&mut engine).unwrap();

    assert_eq!(plain, linked, "phase-shift: RunStats");
    assert_eq!(plain_vm.memory(), linked_vm.memory(), "phase-shift: memory");
    assert_eq!(
        plain_vm.globals(),
        linked_vm.globals(),
        "phase-shift: globals"
    );
    // The hot phase ends the run healthy: the engine climbed back off
    // the ladder's bottom rung.
    assert_ne!(
        engine.mode(),
        LadderMode::InterpOnly,
        "the clean second phase must re-promote the engine"
    );
}

/// Serve-layer fault model (DESIGN.md §15): the same absorb-and-recover
/// discipline extended over the wire and across shard workers. Every
/// injected wire fault either stays transparent to the client or
/// surfaces as a fast transport/decode error the retry engine absorbs;
/// injected shard panics are caught by the supervisor and the shard's
/// sessions re-admitted from their last sealed snapshots. In all cases
/// the session's final statistics stay bit-identical to a plain run.
mod serve_faults {
    use super::*;
    use hotpath::serve::{
        read_frame, serve, serve_blocking, write_frame, Client, ClientError, Request, Response,
        RetryPolicy, ServeConfig, SessionConfig, SessionManager,
    };
    use hotpath::workloads::{build, ALL_WORKLOADS};
    use std::time::{Duration, Instant};

    fn reference(scale: Scale) -> RunStats {
        let program = build(ALL_WORKLOADS[0], scale).program;
        Vm::new(&program).run(&mut NullObserver).unwrap()
    }

    /// Silences the default panic hook for injected shard panics only
    /// (the supervisor catches them; their backtraces are noise).
    fn hush_injected_panics() {
        let default_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected shard panic"));
            if !injected {
                default_hook(info);
            }
        }));
    }

    /// Drives the reference workload over TCP with a retrying client;
    /// returns final stats plus the client's retry/reconnect counters.
    fn drive_tcp(addr: std::net::SocketAddr, seed: u64) -> (RunStats, u64, u64) {
        let mut client =
            Client::connect_with(addr, RetryPolicy::default().with_seed(seed)).expect("connect");
        let (session, _) = client
            .open(SessionConfig::exec(ALL_WORKLOADS[0], Scale::Smoke))
            .expect("open");
        let stats = loop {
            match client.run(session, Some(512)) {
                Ok((true, stats)) => break stats,
                Ok((false, _)) => {}
                Err(e) => panic!("run under wire faults failed: {e}"),
            }
        };
        client.close(session).expect("close");
        (stats, client.retries(), client.reconnects())
    }

    /// The wire-fault matrix: every wire fault class, on both
    /// front-ends, at a rate that guarantees it fires many times over
    /// the run. Disruptive classes (resets, corrupt frames) must
    /// visibly cost retries or reconnects; transparent ones (torn
    /// writes, stalls, delayed reads) must not break anything either
    /// way. All must end bit-identical.
    #[test]
    fn wire_fault_matrix_is_bit_identical_on_both_fronts() {
        let expect = reference(Scale::Smoke);
        hush_injected_panics();
        let matrix = [
            (FaultPoint::WireTornWrite, 1.0, false),
            (FaultPoint::WireReset, 0.2, true),
            (FaultPoint::WireCorruptLen, 0.2, true),
            (FaultPoint::WireCorruptPayload, 0.2, true),
            (FaultPoint::WireStall, 1.0, false),
            (FaultPoint::WireDelayRead, 1.0, false),
        ];
        for (point, rate, disruptive) in matrix {
            let plan = FaultPlan::new(0xC4A05).with(point, rate);
            for front in ["reactor", "blocking"] {
                let config = ServeConfig {
                    shards: 1,
                    chaos: Some(plan),
                    ..ServeConfig::default()
                };
                let mut handle = match front {
                    "reactor" => serve("127.0.0.1:0", config),
                    _ => serve_blocking("127.0.0.1:0", config),
                }
                .expect("bind");
                let (stats, retries, reconnects) = drive_tcp(handle.addr(), 0xD21 ^ rate as u64);
                assert_eq!(stats, expect, "{front}/{point:?}: stats diverged");
                if disruptive {
                    assert!(
                        retries + reconnects > 0,
                        "{front}/{point:?}: the fault never visibly bit"
                    );
                }
                handle.stop();
            }
        }
    }

    /// Shard supervision: a worker that keeps panicking mid-run is
    /// restarted each time, and its live session is re-admitted from
    /// its last sealed snapshot — the run completes with statistics
    /// bit-identical to a run never interrupted.
    #[test]
    fn shard_panics_readmit_the_session_bit_identically() {
        let expect = reference(Scale::Smoke);
        hush_injected_panics();
        let plan = FaultPlan::new(0x9A71C).with(FaultPoint::ShardPanic, 0.05);
        let manager = SessionManager::new(ServeConfig {
            shards: 1,
            chaos: Some(plan),
            ..ServeConfig::default()
        });
        let session = match manager.request(Request::Open {
            config: SessionConfig::exec(ALL_WORKLOADS[0], Scale::Smoke),
        }) {
            Response::Opened { session, .. } => session,
            other => panic!("open failed: {other:?}"),
        };
        let stats = loop {
            match manager.request(Request::Run {
                session,
                fuel: Some(256),
            }) {
                Response::Ran { done: true, stats } => break stats,
                Response::Ran { done: false, .. } => {}
                // A panicked slice answers Busy while the supervisor
                // restarts the worker; re-running the slice is safe.
                Response::Busy => std::thread::sleep(Duration::from_millis(1)),
                other => panic!("run failed: {other:?}"),
            }
        };
        assert_eq!(stats, expect, "re-admitted session diverged");
        let server = match manager.request(Request::Stats) {
            Response::ServerStats(stats) => stats,
            other => panic!("stats failed: {other:?}"),
        };
        assert!(
            server.shards_restarted >= 1,
            "the panic plan never fired; raise the rate or change the seed"
        );
        assert!(
            server.sessions_readmitted >= 1,
            "the surviving session must be re-admitted after each restart"
        );
        manager.request(Request::Close { session });
    }

    /// A persistently-Busy shard must exhaust the client's attempt
    /// budget into a typed error, not retry forever (the seed's client
    /// looped indefinitely here).
    #[test]
    fn persistent_busy_exhausts_the_attempt_budget() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        // A protocol-speaking peer that answers every request Busy.
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().expect("accept");
            let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone"));
            let mut writer = std::io::BufWriter::new(stream);
            while let Ok(Some(_)) = read_frame(&mut reader) {
                write_frame(&mut writer, &Response::Busy.encode()).expect("reply");
            }
        });
        let policy = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_millis(1),
            deadline: None,
            seed: 7,
        };
        let mut client = Client::connect_with(addr, policy).expect("connect");
        match client.open(SessionConfig::exec(ALL_WORKLOADS[0], Scale::Smoke)) {
            Err(ClientError::Exhausted { attempts, last }) => {
                assert_eq!(attempts, 4);
                assert!(
                    last.contains("Busy"),
                    "last error records the cause: {last}"
                );
            }
            other => panic!("expected Exhausted, got {other:?}"),
        }
        drop(client);
        server.join().expect("stub server");
    }

    /// `ServeConfig::drain_deadline_ms` bounds how long an idle
    /// connection can stall a drain, on both front-ends (the seed
    /// hardcoded 5 s in the reactor and waited forever in the blocking
    /// front).
    #[test]
    fn drain_deadline_is_configurable_on_both_fronts() {
        assert_eq!(ServeConfig::default().drain_deadline_ms, 5_000);
        for front in ["reactor", "blocking"] {
            let config = ServeConfig {
                shards: 1,
                drain_deadline_ms: 50,
                ..ServeConfig::default()
            };
            let mut handle = match front {
                "reactor" => serve("127.0.0.1:0", config),
                _ => serve_blocking("127.0.0.1:0", config),
            }
            .expect("bind");
            // An idle connection (no request in flight) holds the front
            // open until the drain deadline expires.
            let _idle = Client::connect(handle.addr()).expect("connect");
            let start = Instant::now();
            handle.stop();
            assert!(
                start.elapsed() < Duration::from_secs(2),
                "{front}: drain took {:?}, the 50 ms deadline was not honored",
                start.elapsed()
            );
        }
    }
}

#[cfg(feature = "telemetry")]
mod recorded {
    use super::*;
    use hotpath::telemetry::{self, SummaryRecorder};

    #[test]
    fn phase_shift_emits_degrade_then_repromote() {
        let p = phase_shift_program(8_000, 8_000);
        let (recorder, handle) = SummaryRecorder::new();
        let guard = telemetry::install(Box::new(recorder));
        let mut engine = LinkedEngine::new(phase_shift_config());
        let stats = Vm::new(&p).run_linked(&mut engine).unwrap();
        drop(guard);
        let expect = Vm::new(&p).run(&mut NullObserver).unwrap();
        assert_eq!(stats, expect);

        let summary = handle.snapshot();
        let detail = format!(
            "degraded={} repromoted={} flushes={} installs={} enters={} mode={:?}",
            summary.count("mode_degraded"),
            summary.count("mode_repromoted"),
            summary.count("cache_flush"),
            summary.count("fragment_install"),
            summary.count("trace_enter"),
            engine.mode(),
        );
        assert!(
            summary.count("mode_degraded") >= 1,
            "the storm phase must step the ladder down ({detail})"
        );
        assert!(
            summary.count("mode_repromoted") >= 1,
            "the hot phase must step the ladder back up ({detail})"
        );
    }

    #[test]
    fn injected_panic_emits_poison_telemetry() {
        let p = two_path_loop(2_000);
        let plan = FaultPlan::new(15).with(FaultPoint::TracePanic, 1.0);
        let (recorder, handle) = SummaryRecorder::new();
        let guard = telemetry::install(Box::new(recorder));
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut ctl = ScriptedController::new(vec![TraceCommand::Install(vec![1, 2, 4, 5])]);
        let result = Vm::new(&p)
            .with_faults(FaultInjector::new(plan))
            .run_linked(&mut ctl);
        std::panic::set_hook(prev);
        drop(guard);
        assert!(result.is_ok());
        let summary = handle.snapshot();
        assert!(summary.count("fragment_poisoned") >= 1);
        assert!(summary.count("fault_injected") >= 1);
    }
}
