//! Cross-crate integration: every workload flows through the whole
//! pipeline (build → run → extract → profile → predict) with its
//! invariants intact.

use hotpath::prelude::*;
use hotpath::profiles::{BallLarusProfiler, KBoundedProfiler};
use hotpath_vm::Tee;

fn record(w: &Workload) -> (PathStream, PathTable, hotpath::vm::RunStats) {
    let mut ex = PathExtractor::new(StreamingSink::new());
    let stats = Vm::new(&w.program).run(&mut ex).expect("workload runs");
    let (sink, table) = ex.into_parts();
    (sink.into_stream(), table, stats)
}

#[test]
fn all_workloads_partition_their_block_streams() {
    for w in suite(Scale::Smoke) {
        let (stream, table, stats) = record(&w);
        assert!(stats.halted, "{} halts", w.name);
        let total_blocks: u64 = (0..stream.len())
            .map(|i| table.info(stream.path(i)).blocks as u64)
            .sum();
        assert_eq!(
            total_blocks, stats.blocks_executed,
            "{}: paths partition the block stream",
            w.name
        );
        let total_insts: u64 = (0..stream.len())
            .map(|i| table.info(stream.path(i)).insts as u64)
            .sum();
        assert_eq!(
            total_insts, stats.insts_executed,
            "{}: paths partition the instruction stream",
            w.name
        );
    }
}

#[test]
fn all_workloads_are_deterministic_end_to_end() {
    for name in hotpath::workloads::ALL_WORKLOADS {
        let w1 = build(name, Scale::Smoke);
        let w2 = build(name, Scale::Smoke);
        let (s1, t1, _) = record(&w1);
        let (s2, t2, _) = record(&w2);
        assert_eq!(s1.len(), s2.len(), "{name}: same flow");
        assert_eq!(t1.len(), t2.len(), "{name}: same path population");
        for i in 0..s1.len() {
            assert_eq!(s1.path(i), s2.path(i), "{name}: same stream at {i}");
        }
    }
}

#[test]
fn flow_identity_holds_for_every_workload_and_scheme() {
    for w in suite(Scale::Smoke) {
        let (stream, table, _) = record(&w);
        let hot = stream.to_profile().hot_set(0.001);
        for delay in [5u64, 50] {
            let o = evaluate(&stream, &table, &hot, &mut NetPredictor::new(delay));
            assert_eq!(
                o.profiled_flow + o.hits + o.noise,
                o.total_flow,
                "{} NET τ={delay}",
                w.name
            );
            let o = evaluate(&stream, &table, &hot, &mut PathProfilePredictor::new(delay));
            assert_eq!(
                o.profiled_flow + o.hits + o.noise,
                o.total_flow,
                "{} PP τ={delay}",
                w.name
            );
        }
    }
}

#[test]
fn net_counter_space_never_exceeds_path_profile() {
    for w in suite(Scale::Smoke) {
        let (stream, table, _) = record(&w);
        let hot = stream.to_profile().hot_set(0.001);
        let net = evaluate(&stream, &table, &hot, &mut NetPredictor::new(20));
        let pp = evaluate(&stream, &table, &hot, &mut PathProfilePredictor::new(20));
        assert!(
            net.counter_space <= pp.counter_space,
            "{}: NET {} vs PP {} counters",
            w.name,
            net.counter_space,
            pp.counter_space
        );
        assert!(
            net.cost.total_ops() < pp.cost.total_ops(),
            "{}: NET must perform fewer profiling ops",
            w.name
        );
    }
}

#[test]
fn ball_larus_and_kbounded_run_on_every_workload() {
    for w in suite(Scale::Smoke) {
        let mut bl =
            BallLarusProfiler::new(&w.program).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let mut kb = KBoundedProfiler::new(4);
        let mut tee = Tee(&mut bl, &mut kb);
        Vm::new(&w.program).run(&mut tee).expect("runs");
        assert!(bl.flow() > 0, "{}: Ball-Larus counted paths", w.name);
        assert!(
            kb.observations() > 0,
            "{}: k-bounded observed branches",
            w.name
        );
        // The Ball-Larus acyclic path flow can't exceed the dynamic branch
        // count plus path ends; sanity bound: positive and finite.
        assert!(bl.distinct_paths() >= 1);
    }
}

#[test]
fn recorded_trace_replay_equals_live_extraction() {
    let w = build(WorkloadName::Deltablue, Scale::Smoke);
    // Live.
    let mut live = PathExtractor::new(StreamingSink::new());
    Vm::new(&w.program).run(&mut live).unwrap();
    let (live_sink, live_table) = live.into_parts();
    let live_stream = live_sink.into_stream();
    // Via recorded block trace.
    let mut rec = TraceRecorder::new();
    Vm::new(&w.program).run(&mut rec).unwrap();
    let trace = rec.into_trace();
    let mut replay = PathExtractor::new(StreamingSink::new());
    trace.replay(&mut replay);
    let (replay_sink, replay_table) = replay.into_parts();
    let replay_stream = replay_sink.into_stream();

    assert_eq!(live_stream.len(), replay_stream.len());
    assert_eq!(live_table.len(), replay_table.len());
    for i in 0..live_stream.len() {
        assert_eq!(live_stream.path(i), replay_stream.path(i));
    }
}
