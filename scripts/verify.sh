#!/usr/bin/env bash
# Offline-safe verification: format, build, test, lint, perf smoke, the
# bench_compare self-gate, and a loopback TCP serve smoke. Everything here
# must pass with no network access (the workspace has no external
# dependencies; the serve smoke binds 127.0.0.1 only).
#
# Environment knobs:
#   VERIFY_SKIP_LINT=1        skip rustfmt/clippy (for MSRV toolchains whose
#                             lints differ from stable)
#   VERIFY_ARTIFACT_DIR=DIR   where bench/telemetry JSON snapshots land
#                             (default target/verify; CI uploads this dir)
set -euo pipefail
cd "$(dirname "$0")/.."

ART_DIR="${VERIFY_ARTIFACT_DIR:-target/verify}"
mkdir -p "$ART_DIR"

if [[ -z "${VERIFY_SKIP_LINT:-}" ]]; then
    echo "== cargo fmt --check =="
    cargo fmt --all -- --check
fi

echo "== cargo build --workspace --release =="
cargo build --workspace --release

echo "== cargo test --workspace =="
cargo test --workspace --quiet

echo "== trace-equivalence suite (linked execution is bit-identical) =="
cargo test -p hotpath --test trace_equivalence --release --quiet

echo "== difffuzz smoke (all opt levels, faults on, 40 seeds) =="
./target/release/difffuzz --seeds 40

echo "== trace-opt suite (optimizer is bit-identical at every level) =="
cargo test -p hotpath --test trace_opt --release --quiet

if [[ -z "${VERIFY_SKIP_LINT:-}" ]]; then
    echo "== cargo clippy --workspace --all-targets (deny warnings) =="
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "== perf_baseline smoke (scale smoke, snapshots into $ART_DIR) =="
# perf_baseline appends to an existing document only if it wrote it, so
# clear any snapshot left by a previous verify run.
rm -f "$ART_DIR/bench_smoke.json" "$ART_DIR/telemetry_smoke.json"
./target/release/perf_baseline --scale smoke --reps 1 --label verify-smoke \
    --json "$ART_DIR/bench_smoke.json" --telemetry "$ART_DIR/telemetry_smoke.json"

echo "== bench_compare self-gate (committed baseline, relative mode) =="
./target/release/bench_compare BENCH_perf.json BENCH_perf.json --relative

echo "== serve TCP smoke (spawn server, drive sessions, snapshot check) =="
rm -f "$ART_DIR/serve_out.txt" "$ART_DIR/serve_smoke.json"
./target/release/serve --addr 127.0.0.1:0 >"$ART_DIR/serve_out.txt" &
SERVE_PID=$!
SERVE_ADDR=""
for _ in $(seq 1 100); do
    SERVE_ADDR=$(sed -n 's/^listening on //p' "$ART_DIR/serve_out.txt")
    [[ -n "$SERVE_ADDR" ]] && break
    sleep 0.1
done
if [[ -z "$SERVE_ADDR" ]]; then
    echo "serve never reported a listening address" >&2
    kill "$SERVE_PID" 2>/dev/null || true
    exit 1
fi
./target/release/loadgen --addr "$SERVE_ADDR" --sessions 3 --scale smoke \
    --snapshot-check --shutdown --label verify-serve \
    --json "$ART_DIR/serve_smoke.json"
wait "$SERVE_PID"   # --shutdown must stop the server cleanly (exit 0)

echo "== reactor sweep smoke (scale sweep, SIGTERM drain, zero leaks) =="
rm -f "$ART_DIR/sweep_out.txt" "$ART_DIR/serve_sweep.json"
./target/release/serve --addr 127.0.0.1:0 >"$ART_DIR/sweep_out.txt" &
SWEEP_PID=$!
SWEEP_ADDR=""
for _ in $(seq 1 100); do
    SWEEP_ADDR=$(sed -n 's/^listening on //p' "$ART_DIR/sweep_out.txt")
    [[ -n "$SWEEP_ADDR" ]] && break
    sleep 0.1
done
if [[ -z "$SWEEP_ADDR" ]]; then
    echo "serve never reported a listening address" >&2
    kill "$SWEEP_PID" 2>/dev/null || true
    exit 1
fi
./target/release/loadgen --addr "$SWEEP_ADDR" --sweep 8,32 --connections 4 \
    --scale smoke --label verify-sweep --json "$ART_DIR/serve_sweep.json"
kill -TERM "$SWEEP_PID"
wait "$SWEEP_PID"   # graceful drain must exit 0

echo "== bench_compare curve + trend self-gates =="
./target/release/bench_compare --curve verify-sweep "$ART_DIR/serve_sweep.json"
./target/release/bench_compare --trend BENCH_perf.json

echo "== warm-start smoke (cold publish, pre-warmed replay, first-trace gate) =="
rm -f "$ART_DIR/warmstart_out.txt" "$ART_DIR/warmstart.json"
./target/release/serve --addr 127.0.0.1:0 --shards 4 >"$ART_DIR/warmstart_out.txt" &
WARM_PID=$!
WARM_ADDR=""
for _ in $(seq 1 100); do
    WARM_ADDR=$(sed -n 's/^listening on //p' "$ART_DIR/warmstart_out.txt")
    [[ -n "$WARM_ADDR" ]] && break
    sleep 0.1
done
if [[ -z "$WARM_ADDR" ]]; then
    echo "serve never reported a listening address" >&2
    kill "$WARM_PID" 2>/dev/null || true
    exit 1
fi
./target/release/loadgen --addr "$WARM_ADDR" --warm-start --scale smoke \
    --shards 4 --label verify-warmstart --shutdown \
    --json "$ART_DIR/warmstart.json"
wait "$WARM_PID"   # --shutdown must stop the server cleanly (exit 0)
./target/release/bench_compare --warmstart verify-warmstart \
    "$ART_DIR/warmstart.json" --relative
./target/release/bench_compare --warmstart warmstart BENCH_perf.json --relative

echo "== chaos smoke (wire + shard faults armed, bit-identity under chaos) =="
rm -f "$ART_DIR/chaos.json"
./target/release/loadgen --chaos --scale smoke --seed 42 \
    --label verify-chaos --json "$ART_DIR/chaos.json"
./target/release/bench_compare --chaos verify-chaos "$ART_DIR/chaos.json"
./target/release/bench_compare --chaos chaos BENCH_perf.json

echo "== profile_sim (merge policies replayed offline, order-independent) =="
./target/release/profile_sim --scale smoke --sessions 4 \
    | tee "$ART_DIR/profile_sim.txt"

echo "== selfprof disabled-overhead gate (committed selfprof-off vs trace-opt) =="
# Committed-vs-committed across recording hosts: use the CI perf-gate
# tolerance (0.25) rather than the same-host default.
./target/release/bench_compare BENCH_perf.json BENCH_perf.json --relative \
    --baseline-label trace-opt --current-label selfprof-off --tolerance 0.25

echo "== selfprof alloc self-gate (committed serve-path allocation profile) =="
./target/release/bench_compare --alloc selfprof BENCH_perf.json

# Last because it rebuilds loadgen with the measuring-allocator feature
# chain, touching the release profile's bench artifacts.
echo "== selfprof smoke (measuring allocator, alloc section, attribution tests) =="
cargo test -p hotpath --test selfprof --features selfprof-alloc --quiet
rm -f "$ART_DIR/selfprof.json"
cargo build --release -p hotpath-bench --features selfprof-alloc --bin loadgen
# Per-block allocation is dominated by fixed per-session setup, so the
# cross-run gate is only meaningful at the committed run's exact config
# (9 sessions / 4 shards / scale small) — allocation counts are
# deterministic there, so the committed profile reproduces byte-for-byte.
./target/release/loadgen --sessions 9 --shards 4 --scale small \
    --label verify-selfprof --json "$ART_DIR/selfprof.json" \
    2>"$ART_DIR/selfprof_console.txt"
grep -q '"alloc"' "$ART_DIR/selfprof.json"
./target/release/bench_compare --alloc selfprof BENCH_perf.json \
    "$ART_DIR/selfprof.json" --current-label verify-selfprof
# Restore the default-features loadgen so later manual runs see the
# system allocator again.
cargo build --release -p hotpath-bench --bin loadgen

echo "verify.sh: all checks passed"
