#!/usr/bin/env bash
# Offline-safe verification: format, build, test, lint, perf smoke, and the
# bench_compare self-gate. Everything here must pass with no network access
# (the workspace has no external dependencies).
#
# Environment knobs:
#   VERIFY_SKIP_LINT=1        skip rustfmt/clippy (for MSRV toolchains whose
#                             lints differ from stable)
#   VERIFY_ARTIFACT_DIR=DIR   where bench/telemetry JSON snapshots land
#                             (default target/verify; CI uploads this dir)
set -euo pipefail
cd "$(dirname "$0")/.."

ART_DIR="${VERIFY_ARTIFACT_DIR:-target/verify}"
mkdir -p "$ART_DIR"

if [[ -z "${VERIFY_SKIP_LINT:-}" ]]; then
    echo "== cargo fmt --check =="
    cargo fmt --all -- --check
fi

echo "== cargo build --workspace --release =="
cargo build --workspace --release

echo "== cargo test --workspace =="
cargo test --workspace --quiet

echo "== trace-equivalence suite (linked execution is bit-identical) =="
cargo test -p hotpath --test trace_equivalence --release --quiet

echo "== difffuzz smoke (interpreter vs engines, faults on, 40 seeds) =="
./target/release/difffuzz --seeds 40

if [[ -z "${VERIFY_SKIP_LINT:-}" ]]; then
    echo "== cargo clippy --workspace --all-targets (deny warnings) =="
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "== perf_baseline smoke (scale smoke, snapshots into $ART_DIR) =="
# perf_baseline appends to an existing document only if it wrote it, so
# clear any snapshot left by a previous verify run.
rm -f "$ART_DIR/bench_smoke.json" "$ART_DIR/telemetry_smoke.json"
./target/release/perf_baseline --scale smoke --reps 1 --label verify-smoke \
    --json "$ART_DIR/bench_smoke.json" --telemetry "$ART_DIR/telemetry_smoke.json"

echo "== bench_compare self-gate (committed baseline, relative mode) =="
./target/release/bench_compare BENCH_perf.json BENCH_perf.json --relative

echo "verify.sh: all checks passed"
