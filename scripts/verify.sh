#!/usr/bin/env bash
# Offline-safe verification: build, test, lint, and a perf smoke run.
# Everything here must pass with no network access (the workspace has no
# external dependencies).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --workspace --release =="
cargo build --workspace --release

echo "== cargo test --workspace =="
cargo test --workspace --quiet

echo "== cargo clippy --workspace --all-targets (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== perf_baseline smoke (scale smoke, throwaway JSON) =="
# perf_baseline refuses to append to a file it did not write, so hand it a
# fresh path rather than a pre-created mktemp file.
./target/release/perf_baseline --scale smoke --reps 1 --label verify-smoke \
    --json "$(mktemp -d -t bench_verify_XXXXXX)/bench.json"

echo "verify.sh: all checks passed"
