//! Assemble, run, and profile a `.hpasm` program from the command line.
//!
//! ```text
//! cargo run --release --example asm_runner -- path/to/program.hpasm
//! ```
//!
//! With no argument, runs a built-in demo program and prints its path
//! profile — useful as a template for writing your own.

use hotpath::ir::parse_program;
use hotpath::ir::pretty::program_to_string;
use hotpath::prelude::*;

const DEMO: &str = r"
// A loop with a rare arm every 8th iteration.
fn0 main (entry):
  b0:
    r0 = const 0
    jump b1
  b1:
    r1 = cmp.lt r0, #50000
    br r1 ? b2 : b6
  b2:
    r2 = and r0, #7
    r3 = cmp.eq r2, #7
    br r3 ? b3 : b4
  b3:
    g0 = r0
    jump b5
  b4:
    jump b5
  b5:
    r0 = add r0, #1
    jump b1
  b6:
    halt
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (source, label) = match std::env::args().nth(1) {
        Some(path) => (std::fs::read_to_string(&path)?, path),
        None => (DEMO.to_string(), "<built-in demo>".to_string()),
    };
    let program = parse_program(&source)?;
    println!("assembled {label}:");
    print!("{}", program_to_string(&program, None));

    let mut extractor = PathExtractor::new(StreamingSink::new());
    let stats = Vm::new(&program).run(&mut extractor)?;
    let (sink, table) = extractor.into_parts();
    let stream = sink.into_stream();
    let profile = stream.to_profile();

    println!(
        "ran: {} blocks, {} instructions, {} paths ({} distinct, {} heads)",
        stats.blocks_executed,
        stats.insts_executed,
        stream.len(),
        table.len(),
        table.unique_heads()
    );
    println!("top 5 paths:");
    for (id, freq) in profile.top_n(5) {
        let info = table.info(id);
        println!(
            "  {id}: freq={freq} head={} blocks={} insts={}",
            info.head, info.blocks, info.insts
        );
    }
    let hot = profile.hot_set(0.001);
    let outcome = evaluate(&stream, &table, &hot, &mut NetPredictor::new(50));
    println!(
        "NET tau=50: hit {:.2}%, noise {:.2}%, {} head counters",
        outcome.hit_rate(),
        outcome.noise_rate(),
        outcome.counter_space
    );
    Ok(())
}
