//! Run a benchmark under the Dynamo simulation and compare prediction
//! schemes, reproducing one row of the paper's Figure 5.
//!
//! ```text
//! cargo run --release --example dynamo_speedup -- deltablue small
//! ```

use hotpath::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name: WorkloadName = args.next().unwrap_or_else(|| "deltablue".into()).parse()?;
    let scale = match args.next().as_deref() {
        None | Some("small") => Scale::Small,
        Some("smoke") => Scale::Smoke,
        Some("full") => Scale::Full,
        Some(other) => return Err(format!("unknown scale `{other}`").into()),
    };

    let w = build(name, scale);
    let native = run_native(&w.program)?;
    println!("{name} @ {scale}: native = {native:.0} cycles\n");
    println!(
        "{:<12} {:>5} {:>9} {:>8} {:>7} {:>8} {:>9}",
        "scheme", "tau", "speedup", "cached", "frags", "flushes", "bail-out"
    );
    for scheme in [Scheme::Net, Scheme::PathProfile] {
        for delay in [10u64, 50, 100] {
            let out = run_dynamo(&w.program, &DynamoConfig::new(scheme, delay))?;
            println!(
                "{:<12} {:>5} {:>+8.1}% {:>7.1}% {:>7} {:>8} {:>9}",
                scheme.to_string(),
                delay,
                out.speedup_percent(native),
                out.cached_block_fraction * 100.0,
                out.fragments_installed,
                out.flushes,
                out.bailed_out
            );
        }
    }
    println!("\ncycle breakdown at NET tau=50 (interp/trace/profiling/build/transitions):");
    let out = run_dynamo(&w.program, &DynamoConfig::new(Scheme::Net, 50))?;
    let c = out.cycles;
    println!(
        "  {:.0} / {:.0} / {:.0} / {:.0} / {:.0}  (total {:.0})",
        c.interp,
        c.trace,
        c.profiling,
        c.build,
        c.transitions,
        c.total()
    );
    Ok(())
}
