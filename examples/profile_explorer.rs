//! Explore a benchmark's path profile: flow, hot set, top paths, heads.
//!
//! ```text
//! cargo run --release --example profile_explorer -- m88ksim small
//! ```

use hotpath::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let name: WorkloadName = args.next().unwrap_or_else(|| "compress".into()).parse()?;
    let scale = match args.next().as_deref() {
        None | Some("smoke") => Scale::Smoke,
        Some("small") => Scale::Small,
        Some("full") => Scale::Full,
        Some(other) => return Err(format!("unknown scale `{other}`").into()),
    };

    let w = build(name, scale);
    println!(
        "{name} @ {scale}: {} functions, {} blocks, {} memory words",
        w.program.functions.len(),
        w.program.total_blocks(),
        w.program.memory_words
    );

    let mut extractor = PathExtractor::new(StreamingSink::new());
    let stats = Vm::new(&w.program).run(&mut extractor)?;
    let (sink, table) = extractor.into_parts();
    let stream = sink.into_stream();
    let profile = stream.to_profile();
    let hot = profile.hot_set(0.001);

    println!(
        "flow {} | {} paths | {} heads | {} blocks executed | {} instructions",
        stream.len(),
        table.len(),
        table.unique_heads(),
        stats.blocks_executed,
        stats.insts_executed
    );
    println!(
        "0.1% hot set: {} paths capturing {:.1}% of the flow",
        hot.len(),
        hot.flow_percentage()
    );

    println!("\ntop 10 paths by frequency:");
    println!(
        "{:>4} {:>10} {:>8} {:>7} {:>7}  head",
        "#", "freq", "freq%", "blocks", "insts"
    );
    for (rank, (id, freq)) in profile.top_n(10).into_iter().enumerate() {
        let info = table.info(id);
        println!(
            "{:>4} {:>10} {:>7.2}% {:>7} {:>7}  {}",
            rank + 1,
            freq,
            freq as f64 / stream.len() as f64 * 100.0,
            info.blocks,
            info.insts,
            info.head
        );
    }
    Ok(())
}
