//! Phase changes and the cache-flush heuristic (paper §6.1).
//!
//! Builds a program with three sharply different phases — each a loop with
//! eight path shapes over code the other phases never touch — and runs
//! Dynamo with and without the prediction-rate-spike flush. Entering a
//! new phase fires a burst of predictions; the detector flushes, evicting
//! the previous phase's now-cold fragments.
//!
//! ```text
//! cargo run --release --example phase_changes
//! ```

use hotpath::prelude::*;

fn phased_program(phase_len: i64) -> Result<Program, Box<dyn std::error::Error>> {
    let mut fb = FunctionBuilder::new("main");
    let acc = fb.imm(0);

    // Three phases; each is a loop whose body evaluates three independent
    // data-dependent branches (eight path shapes per phase). Entering a
    // new phase makes ~8 predictions fire in a burst — the §6.1 spike
    // signature.
    for phase in 0..3i64 {
        let i = fb.reg();
        let m = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        // Pre-create arm/join blocks in layout order.
        let arms: Vec<(
            hotpath::ir::LocalBlockId,
            hotpath::ir::LocalBlockId,
            hotpath::ir::LocalBlockId,
        )> = (0..3)
            .map(|_| (fb.new_block(), fb.new_block(), fb.new_block()))
            .collect();
        let latch = fb.new_block();
        let exit = fb.new_block();

        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, phase_len);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        for (k, &(t, f, join)) in arms.iter().enumerate() {
            // Each phase keys its branches off different bits, so the
            // shapes differ across phases.
            fb.and_imm(m, i, 1 << ((k as i64 + phase) % 5));
            fb.branch(m, t, f);
            fb.switch_to(t);
            fb.add_imm(acc, acc, phase + 1);
            fb.jump(join);
            fb.switch_to(f);
            fb.add_imm(acc, acc, 1);
            fb.jump(join);
            fb.switch_to(join);
        }
        fb.jump(latch);
        fb.switch_to(latch);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
    }
    fb.set_global(GlobalReg::new(0), acc);
    fb.halt();

    let mut pb = ProgramBuilder::new();
    pb.add_function(fb)?;
    Ok(pb.finish()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = phased_program(300_000)?;
    let native = run_native(&program)?;

    let mut plain = DynamoConfig::new(Scheme::Net, 50);
    plain.flush = FlushPolicy::Never;
    let without = run_dynamo(&program, &plain)?;

    let mut spiky = DynamoConfig::new(Scheme::Net, 50);
    spiky.flush = FlushPolicy::OnSpike {
        window: 5_000,
        factor: 5.0,
        min_predictions: 4,
    };
    let with = run_dynamo(&program, &spiky)?;

    println!("three-phase program, native = {native:.0} cycles");
    println!(
        "no flush   : speedup {:+.1}%, {} fragments live at end, {} flushes",
        without.speedup_percent(native),
        without.fragments_live,
        without.flushes
    );
    println!(
        "spike flush: speedup {:+.1}%, {} fragments live at end, {} flushes ({} by spike)",
        with.speedup_percent(native),
        with.fragments_live,
        with.flushes,
        with.spike_flushes
    );
    println!(
        "\nwithout flushing, fragments from all three phases pile up; with the\n\
         spike heuristic the cache is emptied at each phase boundary, so the\n\
         live set at program end reflects only the final phase's working set\n\
         (phase-induced noise evicted) at essentially no speedup cost."
    );
    Ok(())
}
