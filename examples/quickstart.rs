//! Quickstart: build a tiny program, watch NET predict its hot path.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hotpath::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loop whose body alternates between a common arm (7 of 8
    // iterations) and a rare arm.
    let mut fb = FunctionBuilder::new("main");
    let i = fb.reg();
    let header = fb.new_block();
    let body = fb.new_block();
    let rare = fb.new_block();
    let common = fb.new_block();
    let latch = fb.new_block();
    let exit = fb.new_block();
    fb.const_(i, 0);
    fb.jump(header);
    fb.switch_to(header);
    let c = fb.cmp_imm(CmpOp::Lt, i, 100_000);
    fb.branch(c, body, exit);
    fb.switch_to(body);
    let m = fb.reg();
    fb.and_imm(m, i, 7);
    let is_rare = fb.cmp_imm(CmpOp::Eq, m, 7);
    fb.branch(is_rare, rare, common);
    fb.switch_to(rare);
    fb.jump(latch);
    fb.switch_to(common);
    fb.jump(latch);
    fb.switch_to(latch);
    fb.add_imm(i, i, 1);
    fb.jump(header);
    fb.switch_to(exit);
    fb.halt();
    let mut pb = ProgramBuilder::new();
    pb.add_function(fb)?;
    let program = pb.finish()?;

    // Execute once, extracting interprocedural forward paths.
    let mut extractor = PathExtractor::new(StreamingSink::new());
    let stats = Vm::new(&program).run(&mut extractor)?;
    let (sink, table) = extractor.into_parts();
    let stream = sink.into_stream();
    println!(
        "executed {} blocks, {} path executions over {} distinct paths ({} heads)",
        stats.blocks_executed,
        stream.len(),
        table.len(),
        table.unique_heads()
    );

    // The 0.1% hot set and a NET prediction at tau = 50.
    let hot = stream.to_profile().hot_set(0.001);
    println!(
        "hot set: {} paths capturing {:.1}% of the flow",
        hot.len(),
        hot.flow_percentage()
    );
    let mut net = NetPredictor::new(50);
    let outcome = evaluate(&stream, &table, &hot, &mut net);
    println!(
        "NET tau=50: hit rate {:.2}%, noise {:.2}%, profiled flow {:.2}%, {} counters",
        outcome.hit_rate(),
        outcome.noise_rate(),
        outcome.profiled_flow_pct(),
        outcome.counter_space
    );

    // Compare with full path profiling at the same delay.
    let outcome_pp = evaluate(&stream, &table, &hot, &mut PathProfilePredictor::new(50));
    println!(
        "PathProfile tau=50: hit rate {:.2}%, noise {:.2}%, {} counters",
        outcome_pp.hit_rate(),
        outcome_pp.noise_rate(),
        outcome_pp.counter_space
    );
    println!("\"less is more\": same hits, a fraction of the counters.");
    Ok(())
}
