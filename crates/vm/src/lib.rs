//! Deterministic interpreter for the hot-path virtual ISA.
//!
//! The VM executes a validated [`hotpath_ir::Program`] and emits one
//! [`BlockEvent`] per basic block entered, tagged with how control arrived
//! (jump, taken/not-taken branch, indirect branch, call, return) and whether
//! the transfer was *backward* in the address [`Layout`](hotpath_ir::Layout).
//! That event stream is exactly the information the paper's software
//! profiling schemes observe: NET counts backward-taken-branch targets,
//! bit tracing shifts one bit per conditional branch and records indirect
//! targets, and the interprocedural path extractor segments the stream into
//! forward paths.
//!
//! Determinism is load-bearing: given the same program, initial memory, and
//! globals, every run produces the identical event stream, so experiments
//! can record a trace once and replay prediction schemes over it.
//!
//! # Example
//!
//! ```
//! use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
//! use hotpath_ir::CmpOp;
//! use hotpath_vm::{CountingObserver, Vm};
//!
//! let mut fb = FunctionBuilder::new("main");
//! let i = fb.reg();
//! let header = fb.new_block();
//! let body = fb.new_block();
//! let exit = fb.new_block();
//! fb.const_(i, 0);
//! fb.jump(header);
//! fb.switch_to(header);
//! let c = fb.cmp_imm(CmpOp::Lt, i, 4);
//! fb.branch(c, body, exit);
//! fb.switch_to(body);
//! fb.add_imm(i, i, 1);
//! fb.jump(header);
//! fb.switch_to(exit);
//! fb.halt();
//! let mut pb = ProgramBuilder::new();
//! pb.add_function(fb)?;
//! let program = pb.finish()?;
//!
//! let mut vm = Vm::new(&program);
//! let mut counter = CountingObserver::default();
//! let stats = vm.run(&mut counter)?;
//! assert!(stats.halted);
//! assert_eq!(counter.blocks, stats.blocks_executed);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod error;
mod event;
mod opt;
mod trace;
mod trace_exec;
mod vm;

pub use batch::{decode_events, encode_event, encode_events, BatchDecodeError, EVENT_WIRE_BYTES};
pub use error::VmError;
pub use event::{
    BlockEvent, ExecutionObserver, NullObserver, ScriptedController, Tee, TraceCommand,
    TraceController, TraceExcursion, TraceExitReason, TransferKind,
};
pub use opt::OptLevel;
pub use trace::{CountingObserver, RecordedTrace, TraceRecorder};
pub use vm::{LinkedState, RunConfig, RunStats, SavedFrame, SavedLinkedState, StepOutcome, Vm};

pub use hotpath_faultinject::{FaultInjector, FaultPlan, FaultPoint};
