//! Execution events and the observer interface.

use std::fmt;

use hotpath_ir::BlockId;

/// How control reached a block.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TransferKind {
    /// The first block of the run; no incoming transfer.
    Start,
    /// An unconditional `Jump`.
    Jump,
    /// A conditional branch whose condition held.
    BranchTaken,
    /// A conditional branch whose condition did not hold.
    BranchNotTaken,
    /// An indirect branch (`Switch`); the dynamic target is the event's
    /// block.
    Indirect,
    /// A procedure call; the block is the callee's entry.
    Call,
    /// A procedure return; the block is the caller's continuation.
    Return,
}

impl TransferKind {
    /// True for transfers produced by a conditional branch. Bit tracing
    /// shifts one history bit exactly for these.
    pub fn is_conditional(self) -> bool {
        matches!(
            self,
            TransferKind::BranchTaken | TransferKind::BranchNotTaken
        )
    }

    /// A compact tag used by trace encodings; inverse of [`from_tag`].
    ///
    /// [`from_tag`]: TransferKind::from_tag
    pub fn tag(self) -> u8 {
        match self {
            TransferKind::Start => 0,
            TransferKind::Jump => 1,
            TransferKind::BranchTaken => 2,
            TransferKind::BranchNotTaken => 3,
            TransferKind::Indirect => 4,
            TransferKind::Call => 5,
            TransferKind::Return => 6,
        }
    }

    /// Decodes a [`tag`](TransferKind::tag); returns `None` for invalid
    /// tags.
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => TransferKind::Start,
            1 => TransferKind::Jump,
            2 => TransferKind::BranchTaken,
            3 => TransferKind::BranchNotTaken,
            4 => TransferKind::Indirect,
            5 => TransferKind::Call,
            6 => TransferKind::Return,
            _ => return None,
        })
    }
}

impl fmt::Display for TransferKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransferKind::Start => "start",
            TransferKind::Jump => "jump",
            TransferKind::BranchTaken => "taken",
            TransferKind::BranchNotTaken => "not-taken",
            TransferKind::Indirect => "indirect",
            TransferKind::Call => "call",
            TransferKind::Return => "return",
        })
    }
}

/// One entry of the dynamic block stream: a block was entered.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockEvent {
    /// The block control came from; `None` for the first event.
    pub from: Option<BlockId>,
    /// The block being entered.
    pub block: BlockId,
    /// The kind of control transfer that led here.
    pub kind: TransferKind,
    /// True if the transfer was backward in the address layout (target
    /// address not greater than source address). Always `false` for
    /// [`TransferKind::Start`].
    pub backward: bool,
    /// Number of straight-line instructions plus terminator in the entered
    /// block; lets cost models account instructions without touching the
    /// program.
    pub block_size: u32,
}

/// Why one batched trace excursion ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceExitReason {
    /// The final step's terminator left the cache normally (no trace at
    /// the target).
    TraceEnd,
    /// A guard failed mid-trace: a conditional or indirect transfer left
    /// the predicted path.
    GuardFail,
    /// The block budget could not cover another traversal; control falls
    /// back to block-by-block interpretation so fuel exhaustion hits the
    /// exact same block as plain interpretation.
    Fuel,
    /// The program halted on a trace.
    Halt,
}

impl TraceExitReason {
    /// Stable snake_case tag, used in telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceExitReason::TraceEnd => "trace_end",
            TraceExitReason::GuardFail => "guard_fail",
            TraceExitReason::Fuel => "fuel",
            TraceExitReason::Halt => "halt",
        }
    }
}

/// One batched pass through trace-land: everything that happened between
/// the VM dispatching into a compiled trace and control returning to the
/// interpreter (or the program halting).
///
/// This is the trace backend's replacement for per-block [`BlockEvent`]s:
/// the excursion's blocks produce *no* observer calls, only this summary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TraceExcursion {
    /// Head block of the first trace entered.
    pub head: BlockId,
    /// Block the excursion exited from (`None` only if it never ran, which
    /// the dispatch loop prevents).
    pub from: Option<BlockId>,
    /// Block control transferred to. Meaningless when [`halted`] is set.
    ///
    /// [`halted`]: TraceExcursion::halted
    pub target: BlockId,
    /// How control reaches `target` (the exiting terminator's kind).
    pub kind: TransferKind,
    /// Whether the exit transfer is backward in the layout.
    pub backward: bool,
    /// Size of the target block (straight-line instructions plus
    /// terminator), mirroring [`BlockEvent::block_size`].
    pub target_size: u32,
    /// Why the excursion ended.
    pub reason: TraceExitReason,
    /// Blocks executed inside the excursion.
    pub blocks: u64,
    /// Instruction slots executed inside the excursion.
    pub insts: u64,
    /// Trace traversals started (1 without linking; each link transfer
    /// adds one).
    pub entries: u64,
    /// Trace-to-trace link transfers taken (patched or head-lookup).
    pub links: u64,
    /// Guards that failed. A failing guard ends the excursion unless its
    /// target is itself a trace head, in which case control chains there.
    pub guard_fails: u64,
    /// Guard checks *executed* inside the excursion: one per inline guard
    /// reached (branch, switch, or return guard) plus one per entry guard
    /// evaluated at trace entry or on a cross-trace chain. The trace
    /// optimizer exists to shrink this number.
    pub guard_execs: u64,
    /// The program halted inside the excursion.
    pub halted: bool,
}

/// A request from the profiling engine to the VM's trace backend, polled
/// by [`Vm::run_linked`](crate::Vm::run_linked) after every interpreted
/// block and every excursion.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceCommand {
    /// Compile the given block sequence (global ids, an executed path) and
    /// install it keyed by its first block. First install per head wins,
    /// exactly like the engine-side fragment cache.
    Install(Vec<u32>),
    /// Drop every compiled trace and sever all links.
    Flush,
    /// Enable or disable trace-to-trace linking. Disabling severs every
    /// patched link and stops new links from forming, so each traversal
    /// returns to the dispatch loop (the degradation ladder's "no-link"
    /// rung); re-enabling lets links re-patch organically.
    SetLinking(bool),
}

/// Drives [`Vm::run_linked`](crate::Vm::run_linked): observes interpreted
/// blocks (as an [`ExecutionObserver`]), receives batched
/// [`TraceExcursion`]s, and feeds [`TraceCommand`]s back to the VM.
pub trait TraceController: ExecutionObserver {
    /// Called once per trace excursion, in place of the per-block events
    /// the excursion's blocks would have produced.
    fn on_trace_exit(&mut self, _excursion: &TraceExcursion) {}

    /// Polled repeatedly after each interpreted block and each excursion
    /// until it returns `None`.
    fn poll_command(&mut self) -> Option<TraceCommand> {
        None
    }
}

impl TraceController for NullObserver {}

/// A [`TraceController`] that replays a fixed command sequence, one
/// command per poll; useful for tests that script installs and flushes
/// without a profiling engine.
#[derive(Default, Debug)]
pub struct ScriptedController {
    commands: std::collections::VecDeque<TraceCommand>,
    /// Excursions received, in order.
    pub excursions: Vec<TraceExcursion>,
    /// Interpreted-block events received (traces produce none).
    pub interpreted: u64,
}

impl ScriptedController {
    /// A controller that will hand out `commands` one poll at a time.
    pub fn new(commands: Vec<TraceCommand>) -> Self {
        ScriptedController {
            commands: commands.into(),
            excursions: Vec::new(),
            interpreted: 0,
        }
    }

    /// Queues another command for a later poll.
    pub fn push(&mut self, command: TraceCommand) {
        self.commands.push_back(command);
    }
}

impl ExecutionObserver for ScriptedController {
    fn on_block(&mut self, _event: &BlockEvent) {
        self.interpreted += 1;
    }
}

impl TraceController for ScriptedController {
    fn on_trace_exit(&mut self, excursion: &TraceExcursion) {
        self.excursions.push(*excursion);
    }

    fn poll_command(&mut self) -> Option<TraceCommand> {
        self.commands.pop_front()
    }
}

/// Receives the dynamic block stream from a [`Vm`](crate::Vm) run.
///
/// Implementations must be cheap: `on_block` runs once per executed basic
/// block, i.e. tens of millions of times per experiment.
pub trait ExecutionObserver {
    /// Called for every basic block entered, including the entry block.
    fn on_block(&mut self, event: &BlockEvent);

    /// Called once when the program halts normally (not on errors).
    fn on_halt(&mut self) {}
}

/// An observer that ignores everything; useful for measuring raw VM
/// throughput.
#[derive(Clone, Copy, Default, Debug)]
pub struct NullObserver;

impl ExecutionObserver for NullObserver {
    #[inline]
    fn on_block(&mut self, _event: &BlockEvent) {}
}

impl<O: ExecutionObserver + ?Sized> ExecutionObserver for &mut O {
    #[inline]
    fn on_block(&mut self, event: &BlockEvent) {
        (**self).on_block(event);
    }

    fn on_halt(&mut self) {
        (**self).on_halt();
    }
}

/// Fans one event stream out to two observers.
#[derive(Debug)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: ExecutionObserver, B: ExecutionObserver> ExecutionObserver for Tee<A, B> {
    #[inline]
    fn on_block(&mut self, event: &BlockEvent) {
        self.0.on_block(event);
        self.1.on_block(event);
    }

    fn on_halt(&mut self) {
        self.0.on_halt();
        self.1.on_halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        for tag in 0..7u8 {
            let k = TransferKind::from_tag(tag).unwrap();
            assert_eq!(k.tag(), tag);
        }
        assert_eq!(TransferKind::from_tag(7), None);
    }

    #[test]
    fn conditional_classification() {
        assert!(TransferKind::BranchTaken.is_conditional());
        assert!(TransferKind::BranchNotTaken.is_conditional());
        assert!(!TransferKind::Jump.is_conditional());
        assert!(!TransferKind::Indirect.is_conditional());
    }

    #[test]
    fn tee_delivers_to_both() {
        #[derive(Default)]
        struct Count(u64);
        impl ExecutionObserver for Count {
            fn on_block(&mut self, _: &BlockEvent) {
                self.0 += 1;
            }
        }
        let mut tee = Tee(Count::default(), Count::default());
        let ev = BlockEvent {
            from: None,
            block: BlockId::new(0),
            kind: TransferKind::Start,
            backward: false,
            block_size: 1,
        };
        tee.on_block(&ev);
        tee.on_block(&ev);
        assert_eq!(tee.0 .0, 2);
        assert_eq!(tee.1 .0, 2);
    }
}
