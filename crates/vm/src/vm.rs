//! The interpreter.

use hotpath_faultinject::{FaultInjector, FaultPoint};
use hotpath_ir::{BinOp, BlockId, GlobalReg, Inst, Layout, Program, Reg, Terminator, UnOp};

use crate::error::VmError;
use crate::event::{BlockEvent, ExecutionObserver, TraceCommand, TraceController, TransferKind};
use crate::trace_exec::{compile_trace, run_excursion, Machine, ProgramView, TraceCache};

/// Limits for one [`Vm::run`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RunConfig {
    /// Maximum number of basic blocks to execute before aborting with
    /// [`VmError::OutOfFuel`].
    pub max_blocks: u64,
    /// Maximum call-stack depth before aborting with
    /// [`VmError::StackOverflow`].
    pub max_call_depth: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_blocks: 2_000_000_000,
            max_call_depth: 4096,
        }
    }
}

/// Summary of a completed run.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct RunStats {
    /// Basic blocks executed (equals the number of observer events).
    pub blocks_executed: u64,
    /// Straight-line instructions plus terminators executed.
    pub insts_executed: u64,
    /// Conditional branches executed.
    pub cond_branches: u64,
    /// Indirect branches executed.
    pub indirect_branches: u64,
    /// Calls executed.
    pub calls: u64,
    /// Backward control transfers (any kind).
    pub backward_transfers: u64,
    /// Deepest call stack observed.
    pub max_call_depth: usize,
    /// True if the program reached `Halt` (always true on `Ok`).
    pub halted: bool,
}

/// A frame on the call stack.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CallFrame {
    /// Global block id to continue at after the matching return.
    pub(crate) ret_global: u32,
    /// Saved register-stack base of the caller.
    pub(crate) frame_base: usize,
    /// Function index of the caller.
    pub(crate) func: u32,
}

/// Resumable machine state for a linked run: everything
/// [`Vm::run_linked`] used to keep on its stack, lifted into a value so a
/// run can be advanced in bounded fuel slices ([`Vm::step_linked`]),
/// paused, exported ([`Vm::export_linked`]) and resumed later — possibly
/// in a different process ([`Vm::import_linked`]).
///
/// The trace cache lives here too: pausing never loses installed traces.
#[derive(Debug)]
pub struct LinkedState {
    pub(crate) cache: TraceCache,
    pub(crate) stats: RunStats,
    pub(crate) regs: Vec<i64>,
    pub(crate) frames: Vec<CallFrame>,
    pub(crate) frame_base: usize,
    pub(crate) pending: BlockEvent,
    pub(crate) cur: u32,
    pub(crate) done: bool,
}

impl LinkedState {
    /// Statistics accumulated so far (final once [`LinkedState::done`]).
    pub fn stats(&self) -> RunStats {
        self.stats
    }

    /// True once the program halted; further steps are no-ops.
    pub fn done(&self) -> bool {
        self.done
    }

    /// Heads blacklisted by trace panics so far. A serving layer treats
    /// any non-zero count as a health signal: the session's published
    /// profiles carry fragments that misbehaved at least once.
    pub fn poisoned_heads(&self) -> u64 {
        self.cache.poisoned_heads()
    }
}

/// What a bounded [`Vm::step_linked`] call ended with.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StepOutcome {
    /// The fuel slice was exhausted; call again to continue.
    Yielded,
    /// The program halted; the stats are final.
    Halted(RunStats),
}

/// A call frame in exportable form (see [`SavedLinkedState`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SavedFrame {
    /// Global block id to continue at after the matching return.
    pub ret_global: u32,
    /// Saved register-stack base of the caller.
    pub frame_base: u64,
    /// Function index of the caller.
    pub func: u32,
}

/// Plain-data image of a paused linked run, fit for external persistence.
///
/// Captures exactly the execution state that determines the remainder of
/// the run — registers, call stack, pending event, memory, globals, stats
/// — and deliberately **not** the trace cache: trace availability never
/// changes observable results (the backend's bit-identity contract), so a
/// restored run re-warms its cache from engine-side commands instead.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SavedLinkedState {
    /// Statistics at the pause point.
    pub stats: RunStats,
    /// Live registers of every frame, current frame last.
    pub regs: Vec<i64>,
    /// The call stack, outermost first.
    pub frames: Vec<SavedFrame>,
    /// Register-stack base of the current frame.
    pub frame_base: u64,
    /// The block event about to be executed/observed next.
    pub pending: BlockEvent,
    /// Global id of the block about to execute.
    pub cur: u32,
    /// Data memory at the pause point.
    pub memory: Vec<i64>,
    /// Machine-global registers at the pause point.
    pub globals: Vec<i64>,
    /// True if the run had already halted.
    pub done: bool,
}

/// Flattened per-block execution info, indexed by global block id.
#[derive(Clone, Debug)]
pub(crate) struct FlatBlock {
    pub(crate) inst_start: u32,
    pub(crate) inst_end: u32,
    pub(crate) size: u32,
    /// Function index owning this block.
    pub(crate) func: u32,
    /// Global id of the owning function's block 0; local targets resolve as
    /// `func_base + local_index`.
    pub(crate) func_base: u32,
}

/// The virtual machine.
///
/// Construction flattens the program and computes its [`Layout`]; memory is
/// initialized from the program's data segment and can be adjusted through
/// [`Vm::memory_mut`] / [`Vm::set_global`] before [`Vm::run`]. A run mutates
/// machine state; build a fresh `Vm` for a fresh run.
///
/// The VM owns everything it executes (the program is flattened at
/// construction and not borrowed afterwards), so long-lived holders — e.g.
/// a serving session that owns both the workload and its VM — need no
/// lifetime plumbing.
#[derive(Debug)]
pub struct Vm {
    entry: hotpath_ir::FuncId,
    layout: Layout,
    flat: Vec<FlatBlock>,
    insts: Vec<Inst>,
    /// Terminator of each global block (cloned out of the program so the
    /// hot loop avoids double indirection).
    terms: Vec<Terminator>,
    num_regs: Vec<u32>,
    memory: Vec<i64>,
    globals: [i64; GlobalReg::COUNT],
    config: RunConfig,
    /// Fault injector consulted by [`Vm::run_linked`]'s hook sites;
    /// disabled by default (one predictable branch per site).
    faults: FaultInjector,
    /// Optimization applied to traces at install time (see
    /// [`crate::OptLevel`]); [`OptLevel::None`] by default.
    opt_level: crate::opt::OptLevel,
}

impl Vm {
    /// Creates a VM for `program` with the default [`RunConfig`].
    ///
    /// The program must be valid (see [`hotpath_ir::validate`]); builders
    /// validate automatically.
    pub fn new(program: &Program) -> Self {
        let layout = Layout::new(program);
        let total = layout.block_count();
        let mut flat = Vec::with_capacity(total);
        let mut insts = Vec::new();
        let mut terms = Vec::with_capacity(total);
        for (fi, func) in program.functions.iter().enumerate() {
            let func_base = layout
                .func_entry(hotpath_ir::FuncId::new(fi as u32))
                .as_u32();
            for block in &func.blocks {
                let inst_start = insts.len() as u32;
                insts.extend(block.insts.iter().cloned());
                flat.push(FlatBlock {
                    inst_start,
                    inst_end: insts.len() as u32,
                    size: block.size() as u32,
                    func: fi as u32,
                    func_base,
                });
                terms.push(block.terminator.clone());
            }
        }
        let num_regs = program
            .functions
            .iter()
            .map(|f| f.num_regs as u32)
            .collect();
        let mut memory = vec![0i64; program.memory_words];
        for &(addr, val) in &program.data {
            memory[addr] = val;
        }
        Vm {
            entry: program.entry,
            layout,
            flat,
            insts,
            terms,
            num_regs,
            memory,
            globals: [0; GlobalReg::COUNT],
            config: RunConfig::default(),
            faults: FaultInjector::disabled(),
            opt_level: crate::opt::OptLevel::None,
        }
    }

    /// Replaces the run limits.
    pub fn with_config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Arms fault injection for [`Vm::run_linked`] (see
    /// [`hotpath_faultinject`]). Plain [`Vm::run`] has no fault points —
    /// it *is* the reference semantics the faulted backend is checked
    /// against.
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the optimization level applied to traces when they are
    /// installed. Every level is bit-identical to [`OptLevel::None`] in
    /// observable results; higher levels execute fewer guards and
    /// instructions to get there.
    ///
    /// [`OptLevel::None`]: crate::OptLevel::None
    pub fn with_opt_level(mut self, level: crate::opt::OptLevel) -> Self {
        self.opt_level = level;
        self
    }

    /// The fault injector (its counters tell tests what actually fired).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// The run limits currently in force.
    pub fn config(&self) -> &RunConfig {
        &self.config
    }

    /// The address layout computed for the program.
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Data memory (word-addressed).
    pub fn memory(&self) -> &[i64] {
        &self.memory
    }

    /// Mutable data memory, e.g. for writing workload inputs before a run.
    pub fn memory_mut(&mut self) -> &mut [i64] {
        &mut self.memory
    }

    /// Reads a machine-global register.
    pub fn global(&self, g: GlobalReg) -> i64 {
        self.globals[g.index()]
    }

    /// All machine-global registers, e.g. for whole-state comparison.
    pub fn globals(&self) -> &[i64] {
        &self.globals
    }

    /// Writes a machine-global register.
    pub fn set_global(&mut self, g: GlobalReg, value: i64) {
        self.globals[g.index()] = value;
    }

    /// Executes the program from its entry, streaming events to `observer`.
    ///
    /// # Errors
    ///
    /// Returns a [`VmError`] on division by zero, out-of-bounds memory
    /// access, return without caller, call-stack overflow, or fuel
    /// exhaustion.
    pub fn run<O: ExecutionObserver>(&mut self, observer: &mut O) -> Result<RunStats, VmError> {
        let mut stats = RunStats::default();
        let mut regs: Vec<i64> = Vec::with_capacity(1024);
        let mut frames: Vec<CallFrame> = Vec::with_capacity(64);
        let mut frame_base = 0usize;

        let entry_func = self.entry;
        let mut cur = self.layout.func_entry(entry_func).as_u32();
        regs.resize(self.num_regs[entry_func.index()] as usize, 0);

        let mut pending = BlockEvent {
            from: None,
            block: BlockId::new(cur),
            kind: TransferKind::Start,
            backward: false,
            block_size: self.flat[cur as usize].size,
        };

        loop {
            if stats.blocks_executed >= self.config.max_blocks {
                return Err(VmError::OutOfFuel {
                    budget: self.config.max_blocks,
                });
            }
            stats.blocks_executed += 1;
            if pending.backward {
                stats.backward_transfers += 1;
            }
            observer.on_block(&pending);

            let fb = &self.flat[cur as usize];
            let func = fb.func as usize;
            let func_base = fb.func_base;
            stats.insts_executed += fb.size as u64;
            let block_id = BlockId::new(cur);

            // Straight-line instructions.
            for inst in &self.insts[fb.inst_start as usize..fb.inst_end as usize] {
                exec_inst(
                    inst,
                    &mut regs[frame_base..],
                    &mut self.memory,
                    &mut self.globals,
                    block_id,
                )?;
            }

            // Terminator.
            let (next, kind) = match &self.terms[cur as usize] {
                Terminator::Jump(t) => (func_base + t.index() as u32, TransferKind::Jump),
                Terminator::Branch {
                    cond,
                    taken,
                    fallthrough,
                } => {
                    stats.cond_branches += 1;
                    if regs[frame_base + cond.index()] != 0 {
                        (func_base + taken.index() as u32, TransferKind::BranchTaken)
                    } else {
                        (
                            func_base + fallthrough.index() as u32,
                            TransferKind::BranchNotTaken,
                        )
                    }
                }
                Terminator::Switch {
                    index,
                    targets,
                    default,
                } => {
                    stats.indirect_branches += 1;
                    let v = regs[frame_base + index.index()];
                    let t = usize::try_from(v)
                        .ok()
                        .and_then(|i| targets.get(i).copied())
                        .unwrap_or(*default);
                    (func_base + t.index() as u32, TransferKind::Indirect)
                }
                Terminator::Call { callee, ret_to } => {
                    stats.calls += 1;
                    if frames.len() >= self.config.max_call_depth {
                        return Err(VmError::StackOverflow {
                            limit: self.config.max_call_depth,
                        });
                    }
                    frames.push(CallFrame {
                        ret_global: func_base + ret_to.index() as u32,
                        frame_base,
                        func: func as u32,
                    });
                    stats.max_call_depth = stats.max_call_depth.max(frames.len());
                    frame_base = regs.len();
                    regs.resize(frame_base + self.num_regs[callee.index()] as usize, 0);
                    (self.layout.func_entry(*callee).as_u32(), TransferKind::Call)
                }
                Terminator::Return => match frames.pop() {
                    Some(frame) => {
                        regs.truncate(frame_base);
                        frame_base = frame.frame_base;
                        let _ = frame.func;
                        (frame.ret_global, TransferKind::Return)
                    }
                    None => {
                        return Err(VmError::ReturnWithoutCaller { block: block_id });
                    }
                },
                Terminator::Halt => {
                    observer.on_halt();
                    stats.halted = true;
                    hotpath_telemetry::emit!(hotpath_telemetry::Event::VmHalt {
                        blocks: stats.blocks_executed,
                        insts: stats.insts_executed,
                    });
                    return Ok(stats);
                }
            };

            let backward = self.layout.is_backward(block_id, BlockId::new(next));
            pending = BlockEvent {
                from: Some(block_id),
                block: BlockId::new(next),
                kind,
                backward,
                block_size: self.flat[next as usize].size,
            };
            cur = next;
        }
    }

    /// Read-only view of the flattened program for the trace compiler.
    #[cfg(test)]
    pub(crate) fn view(&self) -> ProgramView<'_> {
        ProgramView {
            flat: &self.flat,
            insts: &self.insts,
            terms: &self.terms,
            layout: &self.layout,
            num_regs: &self.num_regs,
        }
    }

    /// Executes the program with the compiled-trace backend enabled.
    ///
    /// Semantically identical to [`Vm::run`]: same [`RunStats`], same final
    /// memory and globals, same errors at the same execution points. The
    /// difference is purely in dispatch and observation. Blocks covered by
    /// installed traces execute out of contiguous compiled instruction
    /// streams — no per-block `FlatBlock` lookup, no per-block observer
    /// call — and each pass through trace-land is reported as one batched
    /// [`TraceExcursion`](crate::TraceExcursion) via
    /// [`TraceController::on_trace_exit`]. Guard exits whose targets are
    /// other trace heads are patched into direct links, so hot loop nests
    /// run trace→trace without returning here.
    ///
    /// The `controller` observes interpreted blocks exactly as an
    /// [`ExecutionObserver`] would under [`Vm::run`] and supplies
    /// [`TraceCommand`]s (install / flush), polled after every interpreted
    /// block and every excursion.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`Vm::run`] produces, at the same points.
    pub fn run_linked<C: TraceController>(
        &mut self,
        controller: &mut C,
    ) -> Result<RunStats, VmError> {
        let mut state = self.start_linked();
        match self.step_linked(&mut state, controller, None)? {
            StepOutcome::Halted(stats) => Ok(stats),
            StepOutcome::Yielded => unreachable!("an unbounded step cannot yield"),
        }
    }

    /// Initial [`LinkedState`] for this VM: positioned at the program
    /// entry with an empty trace cache.
    pub fn start_linked(&self) -> LinkedState {
        let entry_func = self.entry;
        let cur = self.layout.func_entry(entry_func).as_u32();
        let mut regs: Vec<i64> = Vec::with_capacity(1024);
        regs.resize(self.num_regs[entry_func.index()] as usize, 0);
        LinkedState {
            cache: TraceCache::new(self.flat.len()),
            stats: RunStats::default(),
            regs,
            frames: Vec::with_capacity(64),
            frame_base: 0,
            pending: BlockEvent {
                from: None,
                block: BlockId::new(cur),
                kind: TransferKind::Start,
                backward: false,
                block_size: self.flat[cur as usize].size,
            },
            cur,
            done: false,
        }
    }

    /// Advances a linked run by at most `fuel` blocks (`None` = until
    /// halt or error), exactly as [`Vm::run_linked`] would execute them.
    ///
    /// Slicing is invisible to the program: the slice boundary reuses the
    /// trace backend's fuel precheck (a trace whose first traversal would
    /// overshoot falls back to block-by-block interpretation), so the
    /// sequence of executed blocks — and therefore [`RunStats`], memory
    /// and globals — is bit-identical to one unbounded call. Only the
    /// overall `RunConfig::max_blocks` budget produces
    /// [`VmError::OutOfFuel`]; exhausting a slice yields instead.
    ///
    /// Once the program halts the state is final and further calls return
    /// [`StepOutcome::Halted`] immediately.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`Vm::run`] produces, at the same points. After
    /// an error the state must not be stepped again.
    pub fn step_linked<C: TraceController>(
        &mut self,
        state: &mut LinkedState,
        controller: &mut C,
        fuel: Option<u64>,
    ) -> Result<StepOutcome, VmError> {
        if state.done {
            return Ok(StepOutcome::Halted(state.stats));
        }
        let _selfprof_slice = hotpath_selfprof::StageGuard::enter(hotpath_selfprof::Stage::VmSlice);
        let limit = match fuel {
            None => self.config.max_blocks,
            Some(f) => state
                .stats
                .blocks_executed
                .saturating_add(f)
                .min(self.config.max_blocks),
        };
        let slice_config = RunConfig {
            max_blocks: limit,
            ..self.config
        };
        let LinkedState {
            cache,
            stats,
            regs,
            frames,
            frame_base,
            pending,
            cur,
            done,
        } = state;

        loop {
            // Slice boundary: yield (resumable) rather than error. When
            // the slice cap coincides with the real budget, fall through
            // so `OutOfFuel` fires at exactly the block an unbounded run
            // would have stopped at.
            if stats.blocks_executed >= limit && limit < self.config.max_blocks {
                return Ok(StepOutcome::Yielded);
            }
            // Fault point: a forced cache flush at the top of a dispatch
            // iteration (models asynchronous invalidation).
            if self.faults.armed() && self.faults.fire(FaultPoint::Flush) {
                hotpath_telemetry::emit!(hotpath_telemetry::Event::FaultInjected {
                    point: "flush",
                    at_block: stats.blocks_executed,
                });
                let severed = cache.flush();
                hotpath_telemetry::emit!(hotpath_telemetry::Event::LinkSevered { links: severed });
            }

            // Trace dispatch: a trace anchored at the current block runs a
            // whole excursion — provided the remaining budget (slice or
            // fuel) covers its first traversal. When it does not, fall
            // back to block-by-block interpretation so the run stops at
            // exactly the block plain interpretation would have.
            // Hoisted entry guards must hold before dispatching into an
            // optimized trace; when one fails, fall through and interpret
            // this block (the trace would have bailed on its first guard
            // anyway, and interpreting makes progress so dispatch cannot
            // spin on the same head).
            let mut enter = cache
                .entry(*cur)
                .filter(|&tid| stats.blocks_executed + cache.trace_len(tid) as u64 <= limit)
                .filter(|&tid| cache.entry_ok(tid, regs, *frame_base));
            // Fault point: fuel starvation — deny this dispatch as if the
            // precheck had failed; the block interprets instead (exactly
            // the fallback the real precheck takes, hence bit-identical).
            if enter.is_some() && self.faults.armed() && self.faults.fire(FaultPoint::FuelStarve) {
                hotpath_telemetry::emit!(hotpath_telemetry::Event::FaultInjected {
                    point: "fuel_starve",
                    at_block: stats.blocks_executed,
                });
                enter = None;
            }
            if let Some(tid) = enter {
                hotpath_telemetry::emit!(hotpath_telemetry::Event::TraceEnter {
                    head: *cur,
                    at_block: stats.blocks_executed,
                });
                // `catch_unwind` isolates a panicking trace: execution
                // recovers to the interpreter instead of taking the
                // process down. An injected TracePanic fires at excursion
                // entry, before any step runs, so recovery resumes at
                // `cur` with state untouched; for a genuine mid-trace
                // panic (a trace-compiler bug) this is best-effort — the
                // committed prefix matches what interpretation would have
                // done, but counters may sit mid-excursion.
                let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut machine = Machine {
                        memory: &mut self.memory,
                        globals: &mut self.globals,
                        regs: &mut *regs,
                        frames: &mut *frames,
                        frame_base: &mut *frame_base,
                        layout: &self.layout,
                    };
                    run_excursion(
                        &mut *cache,
                        tid,
                        pending.kind,
                        pending.backward,
                        &mut machine,
                        &mut *stats,
                        &slice_config,
                        &mut self.faults,
                    )
                }));
                let mut exc = match caught {
                    Ok(result) => result?,
                    Err(_payload) => {
                        // Poison the head (installs there are refused for
                        // the rest of the run) and drop the whole cache:
                        // a trace that may link into the poisoned one
                        // must not reach it.
                        let severed = cache.poison(*cur);
                        hotpath_telemetry::emit!(hotpath_telemetry::Event::FragmentPoisoned {
                            head: *cur,
                            at_block: stats.blocks_executed,
                        });
                        hotpath_telemetry::emit!(hotpath_telemetry::Event::LinkSevered {
                            links: severed,
                        });
                        continue;
                    }
                };
                if !exc.halted {
                    exc.target_size = self.flat[exc.target.as_u32() as usize].size;
                }
                hotpath_telemetry::emit!(hotpath_telemetry::Event::TraceExit {
                    reason: exc.reason.as_str(),
                    target: exc.target.as_u32(),
                    blocks: exc.blocks,
                    entries: exc.entries,
                    links: exc.links,
                    guards: exc.guard_execs,
                    at_block: stats.blocks_executed,
                });
                controller.on_trace_exit(&exc);
                let view = ProgramView {
                    flat: &self.flat,
                    insts: &self.insts,
                    terms: &self.terms,
                    layout: &self.layout,
                    num_regs: &self.num_regs,
                };
                drain_commands(
                    controller,
                    &mut *cache,
                    &view,
                    &mut self.faults,
                    self.opt_level,
                    stats.blocks_executed,
                );
                if exc.halted {
                    controller.on_halt();
                    stats.halted = true;
                    *done = true;
                    hotpath_telemetry::emit!(hotpath_telemetry::Event::VmHalt {
                        blocks: stats.blocks_executed,
                        insts: stats.insts_executed,
                    });
                    return Ok(StepOutcome::Halted(*stats));
                }
                let next = exc.target.as_u32();
                *pending = BlockEvent {
                    from: exc.from,
                    block: exc.target,
                    kind: exc.kind,
                    backward: exc.backward,
                    block_size: exc.target_size,
                };
                *cur = next;
                continue;
            }

            // Interpretation: one block, exactly as in `run`.
            if stats.blocks_executed >= self.config.max_blocks {
                return Err(VmError::OutOfFuel {
                    budget: self.config.max_blocks,
                });
            }
            stats.blocks_executed += 1;
            if pending.backward {
                stats.backward_transfers += 1;
            }
            controller.on_block(pending);

            let fb = &self.flat[*cur as usize];
            let func = fb.func as usize;
            let func_base = fb.func_base;
            stats.insts_executed += fb.size as u64;
            let block_id = BlockId::new(*cur);

            for inst in &self.insts[fb.inst_start as usize..fb.inst_end as usize] {
                exec_inst(
                    inst,
                    &mut regs[*frame_base..],
                    &mut self.memory,
                    &mut self.globals,
                    block_id,
                )?;
            }

            let (next, kind) = match &self.terms[*cur as usize] {
                Terminator::Jump(t) => (func_base + t.index() as u32, TransferKind::Jump),
                Terminator::Branch {
                    cond,
                    taken,
                    fallthrough,
                } => {
                    stats.cond_branches += 1;
                    if regs[*frame_base + cond.index()] != 0 {
                        (func_base + taken.index() as u32, TransferKind::BranchTaken)
                    } else {
                        (
                            func_base + fallthrough.index() as u32,
                            TransferKind::BranchNotTaken,
                        )
                    }
                }
                Terminator::Switch {
                    index,
                    targets,
                    default,
                } => {
                    stats.indirect_branches += 1;
                    let v = regs[*frame_base + index.index()];
                    let t = usize::try_from(v)
                        .ok()
                        .and_then(|i| targets.get(i).copied())
                        .unwrap_or(*default);
                    (func_base + t.index() as u32, TransferKind::Indirect)
                }
                Terminator::Call { callee, ret_to } => {
                    stats.calls += 1;
                    if frames.len() >= self.config.max_call_depth {
                        return Err(VmError::StackOverflow {
                            limit: self.config.max_call_depth,
                        });
                    }
                    frames.push(CallFrame {
                        ret_global: func_base + ret_to.index() as u32,
                        frame_base: *frame_base,
                        func: func as u32,
                    });
                    stats.max_call_depth = stats.max_call_depth.max(frames.len());
                    *frame_base = regs.len();
                    regs.resize(*frame_base + self.num_regs[callee.index()] as usize, 0);
                    (self.layout.func_entry(*callee).as_u32(), TransferKind::Call)
                }
                Terminator::Return => match frames.pop() {
                    Some(frame) => {
                        regs.truncate(*frame_base);
                        *frame_base = frame.frame_base;
                        (frame.ret_global, TransferKind::Return)
                    }
                    None => {
                        return Err(VmError::ReturnWithoutCaller { block: block_id });
                    }
                },
                Terminator::Halt => {
                    controller.on_halt();
                    stats.halted = true;
                    *done = true;
                    hotpath_telemetry::emit!(hotpath_telemetry::Event::VmHalt {
                        blocks: stats.blocks_executed,
                        insts: stats.insts_executed,
                    });
                    return Ok(StepOutcome::Halted(*stats));
                }
            };

            let view = ProgramView {
                flat: &self.flat,
                insts: &self.insts,
                terms: &self.terms,
                layout: &self.layout,
                num_regs: &self.num_regs,
            };
            drain_commands(
                controller,
                &mut *cache,
                &view,
                &mut self.faults,
                self.opt_level,
                stats.blocks_executed,
            );
            let backward = self.layout.is_backward(block_id, BlockId::new(next));
            *pending = BlockEvent {
                from: Some(block_id),
                block: BlockId::new(next),
                kind,
                backward,
                block_size: self.flat[next as usize].size,
            };
            *cur = next;
        }
    }

    /// Extracts a paused linked run's execution state for persistence.
    ///
    /// Pair with [`Vm::import_linked`] on a VM built from the same
    /// program to continue the run — the continuation executes the same
    /// block sequence and finishes with bit-identical [`RunStats`],
    /// memory, and globals as the uninterrupted run would have.
    pub fn export_linked(&self, state: &LinkedState) -> SavedLinkedState {
        SavedLinkedState {
            stats: state.stats,
            regs: state.regs.clone(),
            frames: state
                .frames
                .iter()
                .map(|f| SavedFrame {
                    ret_global: f.ret_global,
                    frame_base: f.frame_base as u64,
                    func: f.func,
                })
                .collect(),
            frame_base: state.frame_base as u64,
            pending: state.pending,
            cur: state.cur,
            memory: self.memory.clone(),
            globals: self.globals.to_vec(),
            done: state.done,
        }
    }

    /// Rebuilds a paused linked run on this VM from an exported image,
    /// overwriting memory and globals. The trace cache starts empty — a
    /// restored engine re-installs its fragments via [`TraceCommand`]s,
    /// which only affects speed, never results.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency when the image
    /// does not fit this VM's program (wrong memory size, out-of-range
    /// block ids or frame bases).
    pub fn import_linked(&mut self, saved: &SavedLinkedState) -> Result<LinkedState, String> {
        if saved.memory.len() != self.memory.len() {
            return Err(format!(
                "memory size mismatch: image {} words, program {}",
                saved.memory.len(),
                self.memory.len()
            ));
        }
        if saved.globals.len() != GlobalReg::COUNT {
            return Err(format!(
                "global register count mismatch: image {}, machine {}",
                saved.globals.len(),
                GlobalReg::COUNT
            ));
        }
        if saved.cur as usize >= self.flat.len() {
            return Err(format!("current block {} out of range", saved.cur));
        }
        let frame_base =
            usize::try_from(saved.frame_base).map_err(|_| "frame base does not fit".to_string())?;
        if frame_base > saved.regs.len() {
            return Err(format!(
                "frame base {frame_base} past the register stack ({})",
                saved.regs.len()
            ));
        }
        let mut frames = Vec::with_capacity(saved.frames.len());
        for f in &saved.frames {
            if f.ret_global as usize >= self.flat.len() {
                return Err(format!("frame return block {} out of range", f.ret_global));
            }
            if f.frame_base > saved.frame_base {
                return Err("frame bases must not exceed the current base".to_string());
            }
            frames.push(CallFrame {
                ret_global: f.ret_global,
                frame_base: f.frame_base as usize,
                func: f.func,
            });
        }
        self.memory.copy_from_slice(&saved.memory);
        self.globals.copy_from_slice(&saved.globals);
        let mut pending = saved.pending;
        // The pending event must describe the block we resume at; its
        // size is program-derived, so recompute rather than trust it.
        pending.block = BlockId::new(saved.cur);
        pending.block_size = self.flat[saved.cur as usize].size;
        Ok(LinkedState {
            cache: TraceCache::new(self.flat.len()),
            stats: saved.stats,
            regs: saved.regs.clone(),
            frames,
            frame_base,
            pending,
            cur: saved.cur,
            done: saved.done,
        })
    }
}

/// Applies every queued controller command to the trace cache.
///
/// Fault point: [`FaultPoint::InstallReject`] drops an `Install` command
/// before compilation — indistinguishable from `compile_trace` declining
/// the sequence, so the run proceeds (bit-identically) without the trace.
fn drain_commands<C: TraceController>(
    controller: &mut C,
    cache: &mut TraceCache,
    view: &ProgramView<'_>,
    faults: &mut FaultInjector,
    level: crate::opt::OptLevel,
    at_block: u64,
) {
    while let Some(command) = controller.poll_command() {
        match command {
            TraceCommand::Install(blocks) => {
                if faults.armed() && faults.fire(FaultPoint::InstallReject) {
                    hotpath_telemetry::emit!(hotpath_telemetry::Event::FaultInjected {
                        point: "install_reject",
                        at_block,
                    });
                    continue;
                }
                if let Some(mut trace) = compile_trace(view, &blocks) {
                    crate::opt::optimize(&mut trace, level);
                    cache.install(trace);
                }
            }
            TraceCommand::Flush => {
                let severed = cache.flush();
                hotpath_telemetry::emit!(hotpath_telemetry::Event::LinkSevered { links: severed });
            }
            TraceCommand::SetLinking(on) => {
                let severed = cache.set_linking(on);
                if severed > 0 {
                    hotpath_telemetry::emit!(hotpath_telemetry::Event::LinkSevered {
                        links: severed
                    });
                }
            }
        }
    }
}

#[inline]
pub(crate) fn exec_inst(
    inst: &Inst,
    regs: &mut [i64],
    memory: &mut [i64],
    globals: &mut [i64; GlobalReg::COUNT],
    block: BlockId,
) -> Result<(), VmError> {
    #[inline]
    fn get(regs: &[i64], r: Reg) -> i64 {
        regs[r.index()]
    }
    match *inst {
        Inst::Const { dst, value } => regs[dst.index()] = value,
        Inst::Mov { dst, src } => regs[dst.index()] = get(regs, src),
        Inst::Un { op, dst, src } => {
            let v = get(regs, src);
            regs[dst.index()] = match op {
                UnOp::Neg => v.wrapping_neg(),
                UnOp::Not => !v,
            };
        }
        Inst::Bin { op, dst, lhs, rhs } => {
            let a = get(regs, lhs);
            let b = get(regs, rhs);
            regs[dst.index()] = eval_bin(op, a, b, block)?;
        }
        Inst::BinImm { op, dst, lhs, imm } => {
            let a = get(regs, lhs);
            regs[dst.index()] = eval_bin(op, a, imm, block)?;
        }
        Inst::Cmp { op, dst, lhs, rhs } => {
            regs[dst.index()] = op.eval(get(regs, lhs), get(regs, rhs)) as i64;
        }
        Inst::CmpImm { op, dst, lhs, imm } => {
            regs[dst.index()] = op.eval(get(regs, lhs), imm) as i64;
        }
        Inst::Load { dst, addr, offset } => {
            let a = get(regs, addr).wrapping_add(offset);
            let idx = usize::try_from(a)
                .ok()
                .filter(|&i| i < memory.len())
                .ok_or(VmError::MemoryOutOfBounds {
                    block,
                    address: a,
                    memory_words: memory.len(),
                })?;
            regs[dst.index()] = memory[idx];
        }
        Inst::Store { src, addr, offset } => {
            let a = get(regs, addr).wrapping_add(offset);
            let idx = usize::try_from(a)
                .ok()
                .filter(|&i| i < memory.len())
                .ok_or(VmError::MemoryOutOfBounds {
                    block,
                    address: a,
                    memory_words: memory.len(),
                })?;
            memory[idx] = get(regs, src);
        }
        Inst::GetGlobal { dst, global } => regs[dst.index()] = globals[global.index()],
        Inst::SetGlobal { src, global } => globals[global.index()] = get(regs, src),
    }
    Ok(())
}

#[inline]
pub(crate) fn eval_bin(op: BinOp, a: i64, b: i64, block: BlockId) -> Result<i64, VmError> {
    Ok(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return Err(VmError::DivisionByZero { block });
            }
            a.wrapping_div(b)
        }
        BinOp::Rem => {
            if b == 0 {
                return Err(VmError::DivisionByZero { block });
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => a.wrapping_shl(b as u32 & 63),
        BinOp::Shr => a.wrapping_shr(b as u32 & 63),
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NullObserver;
    use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
    use hotpath_ir::CmpOp;

    fn loop_program(trip: i64) -> Program {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, trip);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.finish().unwrap()
    }

    #[test]
    fn counting_loop_halts_with_expected_stats() {
        let p = loop_program(5);
        let mut vm = Vm::new(&p);
        let stats = vm.run(&mut NullObserver).unwrap();
        assert!(stats.halted);
        // entry + 6 header visits + 5 bodies + exit = 13 blocks.
        assert_eq!(stats.blocks_executed, 13);
        assert_eq!(stats.cond_branches, 6);
        // 5 backward jumps from the latch.
        assert_eq!(stats.backward_transfers, 5);
    }

    #[test]
    fn fuel_exhaustion_errors() {
        let p = loop_program(1_000_000);
        let mut vm = Vm::new(&p).with_config(RunConfig {
            max_blocks: 100,
            ..RunConfig::default()
        });
        assert_eq!(
            vm.run(&mut NullObserver).unwrap_err(),
            VmError::OutOfFuel { budget: 100 }
        );
    }

    #[test]
    fn division_by_zero_errors() {
        let mut fb = FunctionBuilder::new("main");
        let a = fb.imm(1);
        let b = fb.imm(0);
        fb.bin(BinOp::Div, a, a, b);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        let p = pb.finish().unwrap();
        let mut vm = Vm::new(&p);
        assert!(matches!(
            vm.run(&mut NullObserver).unwrap_err(),
            VmError::DivisionByZero { .. }
        ));
    }

    #[test]
    fn memory_bounds_checked() {
        let mut fb = FunctionBuilder::new("main");
        let addr = fb.imm(99);
        let v = fb.reg();
        fb.load(v, addr, 0);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.memory_words(4);
        let p = pb.finish().unwrap();
        let mut vm = Vm::new(&p);
        assert!(matches!(
            vm.run(&mut NullObserver).unwrap_err(),
            VmError::MemoryOutOfBounds { address: 99, .. }
        ));
    }

    #[test]
    fn negative_address_is_out_of_bounds() {
        let mut fb = FunctionBuilder::new("main");
        let addr = fb.imm(0);
        let v = fb.reg();
        fb.load(v, addr, -1);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.memory_words(4);
        let p = pb.finish().unwrap();
        let mut vm = Vm::new(&p);
        assert!(matches!(
            vm.run(&mut NullObserver).unwrap_err(),
            VmError::MemoryOutOfBounds { address: -1, .. }
        ));
    }

    #[test]
    fn calls_pass_values_through_globals() {
        let mut pb = ProgramBuilder::new();
        let double = pb.declare("double");

        let mut fb = FunctionBuilder::new("double");
        let x = fb.reg();
        fb.get_global(x, GlobalReg::new(0));
        fb.add(x, x, x);
        fb.set_global(GlobalReg::new(0), x);
        fb.ret();
        pb.add_function(fb).unwrap();

        let mut fb = FunctionBuilder::new("main");
        let v = fb.imm(21);
        fb.set_global(GlobalReg::new(0), v);
        let cont = fb.new_block();
        fb.call(double, cont);
        fb.switch_to(cont);
        fb.halt();
        pb.add_function(fb).unwrap();

        let p = pb.finish().unwrap();
        let mut vm = Vm::new(&p);
        let stats = vm.run(&mut NullObserver).unwrap();
        assert!(stats.halted);
        assert_eq!(stats.calls, 1);
        assert_eq!(vm.global(GlobalReg::new(0)), 42);
    }

    #[test]
    fn return_without_caller_errors() {
        let mut fb = FunctionBuilder::new("main");
        fb.ret();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        let p = pb.finish().unwrap();
        let mut vm = Vm::new(&p);
        assert!(matches!(
            vm.run(&mut NullObserver).unwrap_err(),
            VmError::ReturnWithoutCaller { .. }
        ));
    }

    #[test]
    fn recursion_hits_stack_limit() {
        let mut pb = ProgramBuilder::new();
        let me = pb.declare("main");
        let mut fb = FunctionBuilder::new("main");
        let cont = fb.new_block();
        fb.call(me, cont);
        fb.switch_to(cont);
        fb.ret();
        pb.add_function(fb).unwrap();
        let p = pb.finish().unwrap();
        let mut vm = Vm::new(&p).with_config(RunConfig {
            max_call_depth: 10,
            ..RunConfig::default()
        });
        assert_eq!(
            vm.run(&mut NullObserver).unwrap_err(),
            VmError::StackOverflow { limit: 10 }
        );
    }

    #[test]
    fn switch_selects_targets_and_default() {
        // Memory cell 0 selects the arm; record the arm in global 1.
        let build = |sel: i64| {
            let mut fb = FunctionBuilder::new("main");
            let s = fb.reg();
            let a0 = fb.new_block();
            let a1 = fb.new_block();
            let dflt = fb.new_block();
            let out = fb.new_block();
            fb.const_(s, sel);
            fb.switch(s, vec![a0, a1], dflt);
            for (b, v) in [(a0, 100i64), (a1, 101), (dflt, 999)] {
                fb.switch_to(b);
                let t = fb.imm(v);
                fb.set_global(GlobalReg::new(1), t);
                fb.jump(out);
            }
            fb.switch_to(out);
            fb.halt();
            let mut pb = ProgramBuilder::new();
            pb.add_function(fb).unwrap();
            pb.finish().unwrap()
        };
        for (sel, expect) in [(0i64, 100i64), (1, 101), (2, 999), (-1, 999)] {
            let p = build(sel);
            let mut vm = Vm::new(&p);
            vm.run(&mut NullObserver).unwrap();
            assert_eq!(vm.global(GlobalReg::new(1)), expect, "selector {sel}");
        }
    }

    #[test]
    fn initial_data_is_applied() {
        let mut fb = FunctionBuilder::new("main");
        let addr = fb.imm(2);
        let v = fb.reg();
        fb.load(v, addr, 0);
        fb.set_global(GlobalReg::new(0), v);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.memory_words(4).datum(2, 77);
        let p = pb.finish().unwrap();
        let mut vm = Vm::new(&p);
        vm.run(&mut NullObserver).unwrap();
        assert_eq!(vm.global(GlobalReg::new(0)), 77);
    }

    #[test]
    fn wrapping_arithmetic_and_shifts() {
        let mut fb = FunctionBuilder::new("main");
        let a = fb.imm(i64::MAX);
        fb.add_imm(a, a, 1);
        fb.set_global(GlobalReg::new(0), a);
        let b = fb.imm(1);
        fb.bin_imm(BinOp::Shl, b, b, 70); // masked to 6
        fb.set_global(GlobalReg::new(1), b);
        let c = fb.imm(i64::MIN);
        let m1 = fb.imm(-1);
        fb.bin(BinOp::Div, c, c, m1); // wrapping: stays MIN
        fb.set_global(GlobalReg::new(2), c);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        let p = pb.finish().unwrap();
        let mut vm = Vm::new(&p);
        vm.run(&mut NullObserver).unwrap();
        assert_eq!(vm.global(GlobalReg::new(0)), i64::MIN);
        assert_eq!(vm.global(GlobalReg::new(1)), 1 << 6);
        assert_eq!(vm.global(GlobalReg::new(2)), i64::MIN);
    }
}
