//! Compiled superblock traces with guard exits and fragment linking.
//!
//! When the Dynamo engine predicts a hot path, the block sequence is
//! *compiled* into a [`CompiledTrace`]: every block's straight-line
//! instructions are copied into one contiguous stream, local branch
//! targets are pre-resolved to global block ids, and each on-trace control
//! transfer becomes a [`EndOp`] guard that either falls through to the
//! next step or exits through a stub. Executing a trace touches no
//! per-block `FlatBlock` entry and makes no per-block observer call — the
//! whole excursion through trace-land is reported as one batched
//! [`TraceExcursion`](crate::TraceExcursion).
//!
//! Exits model Dynamo's *exit stubs*: a guard whose target turns out to be
//! another trace head is patched into a direct link (once), so hot loop
//! nests run trace→trace without ever returning to the dispatch loop.
//! Flushing the cache drops every trace and thereby severs all links.
//!
//! Bit-identity with plain interpretation is load-bearing: `RunStats`,
//! memory, globals, and error behavior must be indistinguishable from
//! [`Vm::run`](crate::Vm::run) with a `NullObserver`. Terminator counters
//! (`cond_branches`, `indirect_branches`, `calls`) increment when the
//! terminator executes regardless of where it lands; `backward_transfers`
//! increments when the *entered* block's incoming edge is backward, with
//! on-trace edge backwardness precomputed at compile time.

use hotpath_faultinject::{FaultInjector, FaultPoint};
use hotpath_ir::{BlockId, GlobalReg, Inst, Layout, Terminator};
use hotpath_telemetry as telemetry;

use crate::error::VmError;
use crate::event::{TraceExcursion, TraceExitReason, TransferKind};
use crate::opt::{exec_op, MicroOp};
use crate::vm::{exec_inst, CallFrame, FlatBlock, RunConfig, RunStats};

/// Sentinel for "no trace here" / "link not patched".
const NONE: u32 = u32::MAX;

/// Guard/terminator operation ending one trace step.
///
/// `*Next` variants belong to non-final steps: the expected successor is
/// the next step of the same trace, and a mismatch exits through the
/// recorded stub. `*Exit` variants belong to the final step, whose
/// terminator always leaves the trace (possibly straight into another —
/// that is what linking patches).
#[derive(Clone, Debug)]
pub(crate) enum EndOp {
    /// Unconditional jump whose target is the next step (verified at
    /// compile time); no runtime guard.
    Next,
    /// Conditional branch; the `expect_taken` arm is the next step, the
    /// other arm exits to the pre-resolved `fail_target`.
    BranchNext {
        cond: u16,
        expect_taken: bool,
        fail_target: u32,
        fail_backward: bool,
    },
    /// Indirect branch; the computed target must be the next step's block.
    SwitchNext {
        index: u16,
        targets: Box<[u32]>,
        default: u32,
    },
    /// Call whose callee entry is the next step; pushes a frame with the
    /// pre-resolved return continuation and opens the callee's register
    /// window.
    CallNext { ret_global: u32, callee_regs: u32 },
    /// Return whose continuation must be the next step's block.
    ReturnNext,
    /// Final step: unconditional jump out of the trace.
    JumpExit { target: u32, backward: bool },
    /// Final step: conditional branch out of the trace (either arm).
    BranchExit {
        cond: u16,
        taken: u32,
        taken_backward: bool,
        fallthrough: u32,
        fallthrough_backward: bool,
    },
    /// Final step: indirect branch out of the trace.
    SwitchExit {
        index: u16,
        targets: Box<[u32]>,
        default: u32,
    },
    /// Final step: call out of the trace (the callee entry is the exit
    /// target).
    CallExit {
        ret_global: u32,
        callee_regs: u32,
        target: u32,
        backward: bool,
    },
    /// Final step: return out of the trace (dynamic target).
    ReturnExit,
    /// Final step: the program halts inside the trace.
    HaltExit,
}

/// One step of a compiled trace: originally one block; after the
/// optimizer's merge pass, possibly a whole straight-line group of
/// blocks executed under a single accounting prologue.
#[derive(Clone, Debug)]
pub(crate) struct TraceStep {
    /// Range of this step's straight-line instructions inside
    /// [`CompiledTrace::insts`] (and, once predecoded, the identical
    /// range inside [`CompiledTrace::ops`]).
    pub(crate) inst_start: u32,
    pub(crate) inst_end: u32,
    /// Global id of the step's *last* block — the one whose terminator
    /// is `end` (error attribution, exit bookkeeping).
    pub(crate) block: u32,
    /// Global id of the step's *first* block — what a preceding guard
    /// compares a dynamic target against. Equals `block` until merging.
    pub(crate) entry: u32,
    /// Original straight-line instructions plus terminators of every
    /// block in the step (drives `insts_executed`; the optimizer may
    /// execute fewer).
    pub(crate) size: u32,
    /// Owning function index (callers' frames record it).
    pub(crate) func: u32,
    /// Backwardness of the on-trace edge into the next step; `false` on
    /// the final step.
    pub(crate) next_backward: bool,
    /// The guard/terminator ending this step.
    pub(crate) end: EndOp,
    /// Patched links for this step's up-to-two statically-known exit
    /// targets ([`NONE`] = unpatched): the branch-fail stub or the final
    /// jump/call/branch-taken target uses `link_a`, the final
    /// branch-fallthrough target uses `link_b`.
    pub(crate) link_a: u32,
    pub(crate) link_b: u32,
    /// Blocks this step accounts for (1 until merging).
    pub(crate) d_blocks: u32,
    /// Conditional branches executed by the step *besides* its own end
    /// op — guards the optimizer elided or hoisted, whose `cond_branches`
    /// accounting must survive.
    pub(crate) d_cond: u32,
    /// Backward transfers on intra-step edges (merged-away `Next` edges
    /// that were backward).
    pub(crate) d_backward: u32,
    /// Exit stub: range into [`CompiledTrace::stubs`] of the constants
    /// to materialize when a traversal leaves the trace at this step.
    pub(crate) stub_start: u32,
    pub(crate) stub_end: u32,
}

/// Which static link slot an exit goes through.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Slot {
    A,
    B,
}

/// A loop-invariant guard hoisted to the trace entry: entry (from the
/// dispatcher or a cross-trace chain) requires
/// `(regs[frame_base + reg] != 0) == expect`; a failing check refuses
/// entry exactly as if no trace were installed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct EntryGuard {
    /// Frame-relative register the guard tests.
    pub(crate) reg: u16,
    /// Required truthiness.
    pub(crate) expect: bool,
}

/// A predicted hot path compiled for direct execution.
#[derive(Clone, Debug)]
pub(crate) struct CompiledTrace {
    pub(crate) head: u32,
    /// Original block count (fuel prechecks must count blocks, not
    /// post-merge steps).
    pub(crate) blocks: u32,
    pub(crate) steps: Vec<TraceStep>,
    /// All steps' straight-line instructions, contiguous.
    pub(crate) insts: Vec<Inst>,
    /// Predecoded direct-threaded stream, 1:1 with `insts`; empty until
    /// the optimizer's thread pass runs, in which case it is executed
    /// instead of `insts`.
    pub(crate) ops: Vec<MicroOp>,
    /// Sunk-constant pool for per-step exit stubs (`(reg, value)`
    /// pairs); see [`TraceStep::stub_start`].
    pub(crate) stubs: Vec<(u16, i64)>,
    /// Hoisted loop-invariant guards, checked at entry.
    pub(crate) entry_guards: Vec<EntryGuard>,
}

impl CompiledTrace {
    /// Number of original blocks the trace covers.
    pub(crate) fn len(&self) -> usize {
        self.blocks as usize
    }
}

/// Read-only view of a [`Vm`](crate::Vm)'s flattened program, enough to
/// compile traces.
pub(crate) struct ProgramView<'a> {
    pub(crate) flat: &'a [FlatBlock],
    pub(crate) insts: &'a [Inst],
    pub(crate) terms: &'a [Terminator],
    pub(crate) layout: &'a Layout,
    pub(crate) num_regs: &'a [u32],
}

/// Compiles an executed block sequence into a trace.
///
/// Returns `None` when the sequence cannot have been a single executed
/// path (a terminator cannot reach the recorded successor, or a halt
/// appears before the end) — installs are driven by observed executions,
/// so this is defensive, not expected.
pub(crate) fn compile_trace(view: &ProgramView<'_>, blocks: &[u32]) -> Option<CompiledTrace> {
    if blocks.is_empty() {
        return None;
    }
    let mut steps = Vec::with_capacity(blocks.len());
    let mut insts: Vec<Inst> = Vec::new();
    for (i, &b) in blocks.iter().enumerate() {
        let fb = view.flat.get(b as usize)?;
        let inst_start = insts.len() as u32;
        insts.extend_from_slice(&view.insts[fb.inst_start as usize..fb.inst_end as usize]);
        let inst_end = insts.len() as u32;
        let next = blocks.get(i + 1).copied();
        let from = BlockId::new(b);
        let is_back = |to: u32| view.layout.is_backward(from, BlockId::new(to));
        let (end, next_backward) = match (&view.terms[b as usize], next) {
            (Terminator::Jump(t), next) => {
                let target = fb.func_base + t.index() as u32;
                match next {
                    Some(n) if n == target => (EndOp::Next, is_back(n)),
                    Some(_) => return None,
                    None => (
                        EndOp::JumpExit {
                            target,
                            backward: is_back(target),
                        },
                        false,
                    ),
                }
            }
            (
                Terminator::Branch {
                    cond,
                    taken,
                    fallthrough,
                },
                next,
            ) => {
                let tk = fb.func_base + taken.index() as u32;
                let ft = fb.func_base + fallthrough.index() as u32;
                let cond = cond.index() as u16;
                match next {
                    Some(n) => {
                        let expect_taken = if n == tk {
                            true
                        } else if n == ft {
                            false
                        } else {
                            return None;
                        };
                        let fail_target = if expect_taken { ft } else { tk };
                        (
                            EndOp::BranchNext {
                                cond,
                                expect_taken,
                                fail_target,
                                fail_backward: is_back(fail_target),
                            },
                            is_back(n),
                        )
                    }
                    None => (
                        EndOp::BranchExit {
                            cond,
                            taken: tk,
                            taken_backward: is_back(tk),
                            fallthrough: ft,
                            fallthrough_backward: is_back(ft),
                        },
                        false,
                    ),
                }
            }
            (
                Terminator::Switch {
                    index,
                    targets,
                    default,
                },
                next,
            ) => {
                let targets: Box<[u32]> = targets
                    .iter()
                    .map(|t| fb.func_base + t.index() as u32)
                    .collect();
                let default = fb.func_base + default.index() as u32;
                let index = index.index() as u16;
                match next {
                    Some(n) => {
                        // The recorded successor must be reachable at all.
                        if n != default && !targets.contains(&n) {
                            return None;
                        }
                        (
                            EndOp::SwitchNext {
                                index,
                                targets,
                                default,
                            },
                            is_back(n),
                        )
                    }
                    None => (
                        EndOp::SwitchExit {
                            index,
                            targets,
                            default,
                        },
                        false,
                    ),
                }
            }
            (Terminator::Call { callee, ret_to }, next) => {
                let target = view.layout.func_entry(*callee).as_u32();
                let ret_global = fb.func_base + ret_to.index() as u32;
                let callee_regs = view.num_regs[callee.index()];
                match next {
                    Some(n) if n == target => (
                        EndOp::CallNext {
                            ret_global,
                            callee_regs,
                        },
                        is_back(n),
                    ),
                    Some(_) => return None,
                    None => (
                        EndOp::CallExit {
                            ret_global,
                            callee_regs,
                            target,
                            backward: is_back(target),
                        },
                        false,
                    ),
                }
            }
            (Terminator::Return, next) => match next {
                // The continuation is only known dynamically; guard it.
                Some(_) => (EndOp::ReturnNext, false),
                None => (EndOp::ReturnExit, false),
            },
            (Terminator::Halt, Some(_)) => return None,
            (Terminator::Halt, None) => (EndOp::HaltExit, false),
        };
        // A return into the next step: its backwardness depends on the
        // dynamic continuation; when the guard passes, the continuation IS
        // the next block, so precompute against it.
        let next_backward = match (&end, next) {
            (EndOp::ReturnNext, Some(n)) => is_back(n),
            _ => next_backward,
        };
        steps.push(TraceStep {
            inst_start,
            inst_end,
            block: b,
            entry: b,
            size: fb.size,
            func: fb.func,
            next_backward,
            end,
            link_a: NONE,
            link_b: NONE,
            d_blocks: 1,
            d_cond: 0,
            d_backward: 0,
            stub_start: 0,
            stub_end: 0,
        });
    }
    Some(CompiledTrace {
        head: blocks[0],
        blocks: blocks.len() as u32,
        steps,
        insts,
        ops: Vec::new(),
        stubs: Vec::new(),
        entry_guards: Vec::new(),
    })
}

/// The VM-side trace cache: compiled traces indexed densely by head block,
/// one trace per head (the primary fragment; tail fragments live at their
/// own heads).
#[derive(Debug)]
pub(crate) struct TraceCache {
    traces: Vec<CompiledTrace>,
    /// Trace id per head block ([`NONE`] = no trace), indexed by global
    /// block id.
    at_head: Vec<u32>,
    /// Links currently patched (for `LinkSevered` accounting on flush).
    patched_links: u64,
    /// Whether trace-to-trace linking is enabled (the degradation ladder's
    /// no-link rung turns it off).
    linking: bool,
    /// Heads blacklisted after a trace panicked there; installs at a
    /// poisoned head are refused for the rest of the run (flushes do not
    /// forgive).
    poisoned: Vec<bool>,
}

impl TraceCache {
    pub(crate) fn new(block_count: usize) -> Self {
        TraceCache {
            traces: Vec::new(),
            at_head: vec![NONE; block_count],
            patched_links: 0,
            linking: true,
            poisoned: vec![false; block_count],
        }
    }

    /// The trace anchored at `block`, if any.
    #[inline]
    pub(crate) fn entry(&self, block: u32) -> Option<u32> {
        match self.at_head[block as usize] {
            NONE => None,
            tid => Some(tid),
        }
    }

    pub(crate) fn trace_len(&self, tid: u32) -> usize {
        self.traces[tid as usize].len()
    }

    /// Whether `tid`'s hoisted entry guards all pass in the current
    /// register frame. A failing guard means the trace would divert
    /// off-path mid-traversal, so entering is pointless — the dispatcher
    /// treats the head as uncached and interprets instead (re-checking at
    /// the next dispatch, since the registers may have changed by then).
    #[inline]
    pub(crate) fn entry_ok(&self, tid: u32, regs: &[i64], frame_base: usize) -> bool {
        self.traces[tid as usize]
            .entry_guards
            .iter()
            .all(|g| (regs[frame_base + g.reg as usize] != 0) == g.expect)
    }

    /// Installs a compiled trace; the first trace at a head wins (exactly
    /// like the engine-side `FragmentCache`'s primary fragment). Installs
    /// at a poisoned head are refused.
    pub(crate) fn install(&mut self, trace: CompiledTrace) -> bool {
        let head = trace.head as usize;
        if self.at_head[head] != NONE || self.poisoned[head] {
            return false;
        }
        self.at_head[head] = self.traces.len() as u32;
        self.traces.push(trace);
        true
    }

    /// Drops every trace, severing all patched links; returns how many
    /// links were severed. Poisoned heads stay poisoned.
    pub(crate) fn flush(&mut self) -> u64 {
        self.traces.clear();
        self.at_head.fill(NONE);
        std::mem::take(&mut self.patched_links)
    }

    /// Blacklists `head` after a trace panicked there, then flushes: the
    /// panicking trace must never run again, and any trace that may have
    /// linked into it must not reach it either. Returns severed links.
    pub(crate) fn poison(&mut self, head: u32) -> u64 {
        self.poisoned[head as usize] = true;
        self.flush()
    }

    /// How many heads are blacklisted after trace panics.
    pub(crate) fn poisoned_heads(&self) -> u64 {
        self.poisoned.iter().filter(|&&p| p).count() as u64
    }

    /// Turns trace-to-trace linking on or off. Turning it off severs
    /// every patched link (returned for `LinkSevered` accounting) and
    /// [`static_out`]/[`dynamic_out`] stop chaining, so each traversal
    /// returns to the dispatch loop.
    pub(crate) fn set_linking(&mut self, on: bool) -> u64 {
        self.linking = on;
        if on {
            return 0;
        }
        for tr in &mut self.traces {
            for step in &mut tr.steps {
                step.link_a = NONE;
                step.link_b = NONE;
            }
        }
        std::mem::take(&mut self.patched_links)
    }

    /// Patches a static exit stub of `tid`'s step `si` to transfer
    /// directly into trace `to`.
    fn patch(&mut self, tid: u32, si: usize, slot: Slot, to: u32) {
        let to_head = self.traces[to as usize].head;
        let step = &mut self.traces[tid as usize].steps[si];
        let cell = match slot {
            Slot::A => &mut step.link_a,
            Slot::B => &mut step.link_b,
        };
        debug_assert_eq!(*cell, NONE, "patching an already-linked stub");
        *cell = to;
        let from = step.block;
        self.patched_links += 1;
        telemetry::emit!(telemetry::Event::LinkPatched { from, to: to_head });
    }
}

/// Mutable machine state threaded through an excursion, borrowed from the
/// interpreter loop.
pub(crate) struct Machine<'a> {
    pub(crate) memory: &'a mut [i64],
    pub(crate) globals: &'a mut [i64; GlobalReg::COUNT],
    pub(crate) regs: &'a mut Vec<i64>,
    pub(crate) frames: &'a mut Vec<CallFrame>,
    pub(crate) frame_base: &'a mut usize,
    pub(crate) layout: &'a Layout,
}

/// Where one trace traversal handed control.
enum Out {
    /// Left trace-land toward `target` (no trace there, or fuel denies the
    /// next traversal).
    Exit {
        from: u32,
        target: u32,
        kind: TransferKind,
        backward: bool,
        fail: bool,
    },
    /// Transferred into trace `tid` (link or head lookup); `patch` names a
    /// static stub of the *departing* trace to link up.
    Chain {
        from: u32,
        tid: u32,
        kind: TransferKind,
        backward: bool,
        patch: Option<(usize, Slot)>,
        fail: bool,
    },
    /// The program halted on the trace's final step.
    Halted { from: u32 },
}

/// Resolves a statically-known trace exit: follow the patched link, look
/// the target up (requesting a patch on hit), or leave trace-land.
#[inline]
#[allow(clippy::too_many_arguments)]
fn static_out(
    cache: &TraceCache,
    si: usize,
    slot: Slot,
    link: u32,
    from: u32,
    target: u32,
    kind: TransferKind,
    backward: bool,
    fail: bool,
) -> Out {
    if !cache.linking {
        // No-link mode: links were severed when linking was disabled, and
        // no new chains form — every traversal returns to the dispatcher.
        return Out::Exit {
            from,
            target,
            kind,
            backward,
            fail,
        };
    }
    if link != NONE {
        return Out::Chain {
            from,
            tid: link,
            kind,
            backward,
            patch: None,
            fail,
        };
    }
    match cache.entry(target) {
        Some(tid) => Out::Chain {
            from,
            tid,
            kind,
            backward,
            patch: Some((si, slot)),
            fail,
        },
        None => Out::Exit {
            from,
            target,
            kind,
            backward,
            fail,
        },
    }
}

/// Resolves a dynamically-targeted trace exit (switch/return): traces can
/// still be chained by head lookup, but there is no stub to patch — real
/// Dynamo sends indirect branches through a lookup too.
#[inline]
fn dynamic_out(
    cache: &TraceCache,
    from: u32,
    target: u32,
    kind: TransferKind,
    backward: bool,
    fail: bool,
) -> Out {
    match if cache.linking {
        cache.entry(target)
    } else {
        None
    } {
        Some(tid) => Out::Chain {
            from,
            tid,
            kind,
            backward,
            patch: None,
            fail,
        },
        None => Out::Exit {
            from,
            target,
            kind,
            backward,
            fail,
        },
    }
}

/// Panic payload for an injected [`FaultPoint::TracePanic`]; carries the
/// head so a catcher could attribute it (the dispatch loop recovers on
/// *any* payload and does not inspect it).
pub(crate) struct InjectedTracePanic {
    #[allow(dead_code)]
    pub(crate) head: u32,
}

/// Draws the spurious-guard-failure fault: true means "pretend this
/// passing guard failed". Emits the injection event before returning.
#[inline]
fn spurious_guard(faults: &mut FaultInjector, stats: &RunStats) -> bool {
    if faults.armed() && faults.fire(FaultPoint::GuardFail) {
        telemetry::emit!(telemetry::Event::FaultInjected {
            point: "guard_fail",
            at_block: stats.blocks_executed,
        });
        return true;
    }
    false
}

/// Runs one traversal of trace `tid` (all steps, or until a guard fails),
/// mirroring the interpreter's semantics exactly.
///
/// Fault injection: after a guard *passes*, [`FaultPoint::GuardFail`] may
/// fire; the traversal then exits toward the block the trace would have
/// continued at (the correct next step), with the passing transfer kind —
/// so the interpreter resumes at exactly the right block and bit-identity
/// is preserved while the exit machinery takes the adversarial path.
#[allow(clippy::too_many_arguments)]
fn run_traversal(
    cache: &TraceCache,
    tid: u32,
    entry_backward: bool,
    m: &mut Machine<'_>,
    stats: &mut RunStats,
    config: &RunConfig,
    faults: &mut FaultInjector,
    exc: &mut TraceExcursion,
) -> Result<Out, VmError> {
    let tr = &cache.traces[tid as usize];
    let threaded = !tr.ops.is_empty();
    let mut enter_backward = entry_backward;
    let last = tr.steps.len() - 1;
    for (si, step) in tr.steps.iter().enumerate() {
        // Whole-step accounting up front. `d_*` deltas restore what the
        // optimizer folded away (merged blocks, elided guards, merged
        // backward edges); intermediate states are unobservable because
        // stats are only returned on `Ok` and errors discard them.
        stats.blocks_executed += step.d_blocks as u64;
        stats.backward_transfers += step.d_backward as u64 + enter_backward as u64;
        stats.insts_executed += step.size as u64;
        stats.cond_branches += step.d_cond as u64;
        let fb = *m.frame_base;
        if threaded {
            let regs = &mut m.regs[fb..];
            for op in &tr.ops[step.inst_start as usize..step.inst_end as usize] {
                exec_op(op, regs, m.memory, m.globals)?;
            }
        } else {
            let block_id = BlockId::new(step.block);
            let regs = &mut m.regs[fb..];
            for inst in &tr.insts[step.inst_start as usize..step.inst_end as usize] {
                exec_inst(inst, regs, m.memory, m.globals, block_id)?;
            }
        }
        let block_id = BlockId::new(step.block);
        let out: Option<Out> = match step.end {
            EndOp::Next => None,
            EndOp::BranchNext {
                cond,
                expect_taken,
                fail_target,
                fail_backward,
            } => {
                stats.cond_branches += 1;
                exc.guard_execs += 1;
                let taken = m.regs[fb + cond as usize] != 0;
                if taken != expect_taken {
                    let kind = if taken {
                        TransferKind::BranchTaken
                    } else {
                        TransferKind::BranchNotTaken
                    };
                    Some(static_out(
                        cache,
                        si,
                        Slot::A,
                        step.link_a,
                        step.block,
                        fail_target,
                        kind,
                        fail_backward,
                        true,
                    ))
                } else if spurious_guard(faults, stats) {
                    let kind = if expect_taken {
                        TransferKind::BranchTaken
                    } else {
                        TransferKind::BranchNotTaken
                    };
                    Some(dynamic_out(
                        cache,
                        step.block,
                        tr.steps[si + 1].entry,
                        kind,
                        step.next_backward,
                        true,
                    ))
                } else {
                    None
                }
            }
            EndOp::SwitchNext {
                index,
                ref targets,
                default,
            } => {
                stats.indirect_branches += 1;
                exc.guard_execs += 1;
                let v = m.regs[fb + index as usize];
                let t = usize::try_from(v)
                    .ok()
                    .and_then(|i| targets.get(i).copied())
                    .unwrap_or(default);
                if t != tr.steps[si + 1].entry {
                    let backward = m.layout.is_backward(block_id, BlockId::new(t));
                    Some(dynamic_out(
                        cache,
                        step.block,
                        t,
                        TransferKind::Indirect,
                        backward,
                        true,
                    ))
                } else if spurious_guard(faults, stats) {
                    Some(dynamic_out(
                        cache,
                        step.block,
                        t,
                        TransferKind::Indirect,
                        step.next_backward,
                        true,
                    ))
                } else {
                    None
                }
            }
            EndOp::CallNext {
                ret_global,
                callee_regs,
            } => {
                stats.calls += 1;
                if m.frames.len() >= config.max_call_depth {
                    return Err(VmError::StackOverflow {
                        limit: config.max_call_depth,
                    });
                }
                m.frames.push(CallFrame {
                    ret_global,
                    frame_base: fb,
                    func: step.func,
                });
                stats.max_call_depth = stats.max_call_depth.max(m.frames.len());
                *m.frame_base = m.regs.len();
                m.regs.resize(*m.frame_base + callee_regs as usize, 0);
                None
            }
            EndOp::ReturnNext => match m.frames.pop() {
                Some(frame) => {
                    m.regs.truncate(fb);
                    *m.frame_base = frame.frame_base;
                    exc.guard_execs += 1;
                    let t = frame.ret_global;
                    if t != tr.steps[si + 1].entry {
                        let backward = m.layout.is_backward(block_id, BlockId::new(t));
                        Some(dynamic_out(
                            cache,
                            step.block,
                            t,
                            TransferKind::Return,
                            backward,
                            true,
                        ))
                    } else if spurious_guard(faults, stats) {
                        Some(dynamic_out(
                            cache,
                            step.block,
                            t,
                            TransferKind::Return,
                            step.next_backward,
                            true,
                        ))
                    } else {
                        None
                    }
                }
                None => {
                    return Err(VmError::ReturnWithoutCaller { block: block_id });
                }
            },
            EndOp::JumpExit { target, backward } => Some(static_out(
                cache,
                si,
                Slot::A,
                step.link_a,
                step.block,
                target,
                TransferKind::Jump,
                backward,
                false,
            )),
            EndOp::BranchExit {
                cond,
                taken,
                taken_backward,
                fallthrough,
                fallthrough_backward,
            } => {
                stats.cond_branches += 1;
                Some(if m.regs[fb + cond as usize] != 0 {
                    static_out(
                        cache,
                        si,
                        Slot::A,
                        step.link_a,
                        step.block,
                        taken,
                        TransferKind::BranchTaken,
                        taken_backward,
                        false,
                    )
                } else {
                    static_out(
                        cache,
                        si,
                        Slot::B,
                        step.link_b,
                        step.block,
                        fallthrough,
                        TransferKind::BranchNotTaken,
                        fallthrough_backward,
                        false,
                    )
                })
            }
            EndOp::SwitchExit {
                index,
                ref targets,
                default,
            } => {
                stats.indirect_branches += 1;
                let v = m.regs[fb + index as usize];
                let t = usize::try_from(v)
                    .ok()
                    .and_then(|i| targets.get(i).copied())
                    .unwrap_or(default);
                let backward = m.layout.is_backward(block_id, BlockId::new(t));
                Some(dynamic_out(
                    cache,
                    step.block,
                    t,
                    TransferKind::Indirect,
                    backward,
                    false,
                ))
            }
            EndOp::CallExit {
                ret_global,
                callee_regs,
                target,
                backward,
            } => {
                stats.calls += 1;
                if m.frames.len() >= config.max_call_depth {
                    return Err(VmError::StackOverflow {
                        limit: config.max_call_depth,
                    });
                }
                m.frames.push(CallFrame {
                    ret_global,
                    frame_base: fb,
                    func: step.func,
                });
                stats.max_call_depth = stats.max_call_depth.max(m.frames.len());
                *m.frame_base = m.regs.len();
                m.regs.resize(*m.frame_base + callee_regs as usize, 0);
                Some(static_out(
                    cache,
                    si,
                    Slot::A,
                    step.link_a,
                    step.block,
                    target,
                    TransferKind::Call,
                    backward,
                    false,
                ))
            }
            EndOp::ReturnExit => match m.frames.pop() {
                Some(frame) => {
                    m.regs.truncate(fb);
                    *m.frame_base = frame.frame_base;
                    let t = frame.ret_global;
                    let backward = m.layout.is_backward(block_id, BlockId::new(t));
                    Some(dynamic_out(
                        cache,
                        step.block,
                        t,
                        TransferKind::Return,
                        backward,
                        false,
                    ))
                }
                None => {
                    return Err(VmError::ReturnWithoutCaller { block: block_id });
                }
            },
            EndOp::HaltExit => Some(Out::Halted { from: step.block }),
        };
        if let Some(out) = out {
            // Leaving the trace at this step (including a chain into
            // another trace or back into this one): materialize the
            // constants sunk out of the executed prefix, so the register
            // frame is exactly what block-by-block interpretation would
            // have produced. Error paths skip this — registers are
            // unobservable after a `VmError`.
            for &(r, v) in &tr.stubs[step.stub_start as usize..step.stub_end as usize] {
                m.regs[fb + r as usize] = v;
            }
            return Ok(out);
        }
        debug_assert!(si < last, "non-final step fell through without a successor");
        enter_backward = step.next_backward;
    }
    unreachable!("the final trace step always exits");
}

/// Executes one whole excursion through trace-land, starting at trace
/// `start`, chasing links until control leaves the cache (or the program
/// halts, or fuel denies the next traversal).
///
/// # Panics
///
/// Panics (via `panic_any`) when the injector's
/// [`FaultPoint::TracePanic`] fires — deliberately *before* any step
/// executes, so the dispatch loop's `catch_unwind` recovers with program
/// state exactly as it was at dispatch.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_excursion(
    cache: &mut TraceCache,
    start: u32,
    entry_kind: TransferKind,
    entry_backward: bool,
    m: &mut Machine<'_>,
    stats: &mut RunStats,
    config: &RunConfig,
    faults: &mut FaultInjector,
) -> Result<TraceExcursion, VmError> {
    let head = cache.traces[start as usize].head;
    if faults.armed() && faults.fire(FaultPoint::TracePanic) {
        telemetry::emit!(telemetry::Event::FaultInjected {
            point: "trace_panic",
            at_block: stats.blocks_executed,
        });
        std::panic::panic_any(InjectedTracePanic { head });
    }
    let mut exc = TraceExcursion {
        head: BlockId::new(head),
        from: None,
        target: BlockId::new(head),
        kind: entry_kind,
        backward: entry_backward,
        target_size: 0,
        reason: TraceExitReason::TraceEnd,
        blocks: 0,
        insts: 0,
        entries: 0,
        links: 0,
        guard_fails: 0,
        guard_execs: 0,
        halted: false,
    };
    // Excursion-local block/inst totals fall out of stats deltas, so the
    // optimizer's whole-step accounting feeds both without double entry.
    let base_blocks = stats.blocks_executed;
    let base_insts = stats.insts_executed;
    // The dispatcher already checked `start`'s entry guards; count them.
    exc.guard_execs += cache.traces[start as usize].entry_guards.len() as u64;
    let mut tid = start;
    let mut in_kind = entry_kind;
    let mut in_backward = entry_backward;
    loop {
        // Fuel precheck: entering a traversal guarantees all its blocks
        // fit the budget, so `OutOfFuel` fires at exactly the block a
        // plain interpretation would have stopped at.
        if stats.blocks_executed + cache.trace_len(tid) as u64 > config.max_blocks {
            exc.target = BlockId::new(cache.traces[tid as usize].head);
            exc.kind = in_kind;
            exc.backward = in_backward;
            exc.reason = TraceExitReason::Fuel;
            exc.blocks = stats.blocks_executed - base_blocks;
            exc.insts = stats.insts_executed - base_insts;
            return Ok(exc);
        }
        exc.entries += 1;
        match run_traversal(cache, tid, in_backward, m, stats, config, faults, &mut exc)? {
            Out::Halted { from } => {
                exc.from = Some(BlockId::new(from));
                exc.target = BlockId::new(from);
                exc.reason = TraceExitReason::Halt;
                exc.halted = true;
                exc.blocks = stats.blocks_executed - base_blocks;
                exc.insts = stats.insts_executed - base_insts;
                return Ok(exc);
            }
            Out::Exit {
                from,
                target,
                kind,
                backward,
                fail,
            } => {
                if fail {
                    exc.guard_fails += 1;
                    telemetry::emit!(telemetry::Event::GuardFail {
                        block: from,
                        target,
                        at_block: stats.blocks_executed,
                    });
                }
                exc.from = Some(BlockId::new(from));
                exc.target = BlockId::new(target);
                exc.kind = kind;
                exc.backward = backward;
                exc.reason = if fail {
                    TraceExitReason::GuardFail
                } else {
                    TraceExitReason::TraceEnd
                };
                exc.blocks = stats.blocks_executed - base_blocks;
                exc.insts = stats.insts_executed - base_insts;
                return Ok(exc);
            }
            Out::Chain {
                from,
                tid: next,
                kind,
                backward,
                patch,
                fail,
            } => {
                if fail {
                    exc.guard_fails += 1;
                    telemetry::emit!(telemetry::Event::GuardFail {
                        block: from,
                        target: cache.traces[next as usize].head,
                        at_block: stats.blocks_executed,
                    });
                }
                // Chaining into a *different* trace must re-establish that
                // trace's hoisted entry guards; the register frame here is
                // whatever this traversal left behind, not what the
                // dispatcher checked at excursion start. Self-chains skip
                // the check: the traversal just proved every hoisted guard
                // on the invariant registers it never writes. On failure,
                // fall back to the interpreter at the target's head,
                // leaving the link unpatched — a link that did not transfer
                // control was never taken.
                if next != tid {
                    let target = &cache.traces[next as usize];
                    if !target.entry_guards.is_empty() {
                        exc.guard_execs += target.entry_guards.len() as u64;
                        if !cache.entry_ok(next, m.regs, *m.frame_base) {
                            exc.from = Some(BlockId::new(from));
                            exc.target = BlockId::new(cache.traces[next as usize].head);
                            exc.kind = kind;
                            exc.backward = backward;
                            exc.reason = if fail {
                                TraceExitReason::GuardFail
                            } else {
                                TraceExitReason::TraceEnd
                            };
                            exc.blocks = stats.blocks_executed - base_blocks;
                            exc.insts = stats.insts_executed - base_insts;
                            return Ok(exc);
                        }
                    }
                }
                if let Some((si, slot)) = patch {
                    cache.patch(tid, si, slot, next);
                }
                exc.from = Some(BlockId::new(from));
                exc.links += 1;
                in_kind = kind;
                in_backward = backward;
                tid = next;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::NullObserver;
    use crate::vm::Vm;
    use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
    use hotpath_ir::{CmpOp, Program};

    fn loop_program(trip: i64) -> Program {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, trip);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.finish().unwrap()
    }

    #[test]
    fn compile_resolves_a_loop_body() {
        let p = loop_program(4);
        let vm = Vm::new(&p);
        // header(1) -> body(2) -> header(1) is the hot path.
        let tr = compile_trace(&vm.view(), &[1, 2]).expect("compiles");
        assert_eq!(tr.head, 1);
        assert_eq!(tr.len(), 2);
        assert!(matches!(tr.steps[0].end, EndOp::BranchNext { .. }));
        assert!(matches!(tr.steps[1].end, EndOp::JumpExit { target: 1, .. }));
        assert!(!tr.steps[1].next_backward);
    }

    #[test]
    fn compile_rejects_impossible_sequences() {
        let p = loop_program(4);
        let vm = Vm::new(&p);
        // body(2) jumps to header(1), never to exit(3).
        assert!(compile_trace(&vm.view(), &[2, 3]).is_none());
        // Nothing follows a halt.
        assert!(compile_trace(&vm.view(), &[3, 1]).is_none());
        assert!(compile_trace(&vm.view(), &[]).is_none());
    }

    #[test]
    fn cache_keeps_first_trace_per_head() {
        let p = loop_program(4);
        let vm = Vm::new(&p);
        let mut cache = TraceCache::new(4);
        assert!(cache.install(compile_trace(&vm.view(), &[1, 2]).unwrap()));
        assert!(!cache.install(compile_trace(&vm.view(), &[1]).unwrap()));
        assert_eq!(cache.entry(1), Some(0));
        assert_eq!(cache.entry(2), None);
        assert_eq!(cache.flush(), 0);
        assert_eq!(cache.entry(1), None);
    }

    #[test]
    fn linked_loop_runs_bit_identical_to_interpretation() {
        let p = loop_program(1_000);
        let expect = Vm::new(&p).run(&mut NullObserver).unwrap();
        let mut ctl = crate::event::ScriptedController::new(vec![
            crate::event::TraceCommand::Install(vec![1, 2]),
        ]);
        let got = Vm::new(&p).run_linked(&mut ctl).unwrap();
        assert_eq!(got, expect);
        // The loop self-links: after the first excursion patches the
        // latch's jump stub back to its own head, the remaining
        // iterations run in a single excursion.
        assert!(!ctl.excursions.is_empty());
        let total: u64 = ctl.excursions.iter().map(|e| e.blocks).sum();
        assert!(total > 1_000, "most blocks should run in trace-land");
    }
}
