//! Wire codec for batched [`BlockEvent`]s.
//!
//! A serving front-end streams control-flow events from a remote runtime
//! into an engine in batches; this module defines the fixed-width binary
//! encoding both ends share. Every event is [`EVENT_WIRE_BYTES`] bytes,
//! little-endian, with no padding:
//!
//! | bytes | field |
//! |---|---|
//! | 0..4  | `from` block id (`u32::MAX` encodes `None`) |
//! | 4..8  | `block` id |
//! | 8..12 | `block_size` |
//! | 12    | [`TransferKind`] tag (see [`TransferKind::tag`]) |
//! | 13    | `backward` flag (0 or 1) |
//!
//! The encoding is exact: decode(encode(events)) reproduces the input
//! events bit-for-bit, and any truncated or out-of-range input is
//! rejected with a [`BatchDecodeError`] rather than guessed at.

use hotpath_ir::BlockId;

use crate::event::{BlockEvent, TransferKind};

/// Encoded size of one event on the wire.
pub const EVENT_WIRE_BYTES: usize = 14;

/// `from: None` on the wire (real block ids never reach `u32::MAX`).
const NO_FROM: u32 = u32::MAX;

/// Why a batch failed to decode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BatchDecodeError {
    /// The buffer length is not a multiple of [`EVENT_WIRE_BYTES`].
    Truncated {
        /// Total bytes supplied.
        len: usize,
    },
    /// An event carried an unknown [`TransferKind`] tag.
    BadKind {
        /// Index of the offending event in the batch.
        index: usize,
        /// The unrecognized tag byte.
        tag: u8,
    },
    /// An event's `backward` flag was neither 0 nor 1.
    BadFlag {
        /// Index of the offending event in the batch.
        index: usize,
        /// The offending flag byte.
        flag: u8,
    },
}

impl std::fmt::Display for BatchDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BatchDecodeError::Truncated { len } => write!(
                f,
                "batch of {len} bytes is not a whole number of {EVENT_WIRE_BYTES}-byte events"
            ),
            BatchDecodeError::BadKind { index, tag } => {
                write!(f, "event {index}: unknown transfer-kind tag {tag}")
            }
            BatchDecodeError::BadFlag { index, flag } => {
                write!(f, "event {index}: backward flag must be 0 or 1, got {flag}")
            }
        }
    }
}

impl std::error::Error for BatchDecodeError {}

/// Appends one event's wire encoding to `out`.
pub fn encode_event(event: &BlockEvent, out: &mut Vec<u8>) {
    let from = event.from.map_or(NO_FROM, |b| b.as_u32());
    out.extend_from_slice(&from.to_le_bytes());
    out.extend_from_slice(&event.block.as_u32().to_le_bytes());
    out.extend_from_slice(&event.block_size.to_le_bytes());
    out.push(event.kind.tag());
    out.push(u8::from(event.backward));
}

/// Appends a batch of events to `out` (just the events, no count prefix —
/// framing belongs to the transport).
pub fn encode_events(events: &[BlockEvent], out: &mut Vec<u8>) {
    out.reserve(events.len() * EVENT_WIRE_BYTES);
    for event in events {
        encode_event(event, out);
    }
}

/// Decodes a whole batch previously produced by [`encode_events`].
///
/// # Errors
///
/// Rejects truncated buffers and out-of-range tag/flag bytes; a valid
/// prefix is never silently accepted.
pub fn decode_events(buf: &[u8]) -> Result<Vec<BlockEvent>, BatchDecodeError> {
    if buf.len() % EVENT_WIRE_BYTES != 0 {
        return Err(BatchDecodeError::Truncated { len: buf.len() });
    }
    let mut events = Vec::with_capacity(buf.len() / EVENT_WIRE_BYTES);
    for (index, chunk) in buf.chunks_exact(EVENT_WIRE_BYTES).enumerate() {
        let from = u32::from_le_bytes(chunk[0..4].try_into().unwrap());
        let block = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        let block_size = u32::from_le_bytes(chunk[8..12].try_into().unwrap());
        let kind = TransferKind::from_tag(chunk[12]).ok_or(BatchDecodeError::BadKind {
            index,
            tag: chunk[12],
        })?;
        let backward = match chunk[13] {
            0 => false,
            1 => true,
            flag => return Err(BatchDecodeError::BadFlag { index, flag }),
        };
        events.push(BlockEvent {
            from: (from != NO_FROM).then(|| BlockId::new(from)),
            block: BlockId::new(block),
            kind,
            backward,
            block_size,
        });
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<BlockEvent> {
        let kinds = [
            TransferKind::Start,
            TransferKind::Jump,
            TransferKind::BranchTaken,
            TransferKind::BranchNotTaken,
            TransferKind::Indirect,
            TransferKind::Call,
            TransferKind::Return,
        ];
        kinds
            .iter()
            .enumerate()
            .map(|(i, &kind)| BlockEvent {
                from: (i > 0).then(|| BlockId::new(i as u32 - 1)),
                block: BlockId::new(i as u32 * 7),
                kind,
                backward: i % 2 == 1,
                block_size: i as u32 + 1,
            })
            .collect()
    }

    #[test]
    fn round_trips_every_kind_bit_exactly() {
        let events = sample();
        let mut wire = Vec::new();
        encode_events(&events, &mut wire);
        assert_eq!(wire.len(), events.len() * EVENT_WIRE_BYTES);
        assert_eq!(decode_events(&wire).unwrap(), events);
    }

    #[test]
    fn rejects_truncation_and_junk() {
        let mut wire = Vec::new();
        encode_events(&sample(), &mut wire);
        assert_eq!(
            decode_events(&wire[..wire.len() - 1]),
            Err(BatchDecodeError::Truncated {
                len: wire.len() - 1
            })
        );
        let mut bad_kind = wire.clone();
        bad_kind[12] = 0xEE;
        assert_eq!(
            decode_events(&bad_kind),
            Err(BatchDecodeError::BadKind {
                index: 0,
                tag: 0xEE
            })
        );
        let mut bad_flag = wire;
        bad_flag[13] = 7;
        assert_eq!(
            decode_events(&bad_flag),
            Err(BatchDecodeError::BadFlag { index: 0, flag: 7 })
        );
    }

    #[test]
    fn empty_batch_is_valid() {
        assert_eq!(decode_events(&[]).unwrap(), Vec::new());
    }
}
