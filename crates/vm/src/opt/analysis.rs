//! Shared dataflow machinery for the trace optimizer passes.

use hotpath_ir::{BinOp, BlockId, Inst, UnOp};

use crate::trace_exec::{CompiledTrace, EndOp};
use crate::vm::eval_bin;

/// True when the trace never crosses a frame boundary: no call or return
/// appears in any step's end op, so the frame base — and therefore the
/// meaning of every frame-relative register index — is constant for a
/// whole traversal. Register-level passes require this.
pub(super) fn call_free(tr: &CompiledTrace) -> bool {
    tr.steps.iter().all(|s| {
        !matches!(
            s.end,
            EndOp::CallNext { .. } | EndOp::ReturnNext | EndOp::CallExit { .. } | EndOp::ReturnExit
        )
    })
}

/// True when some statically-known exit target is the trace's own head,
/// i.e. the trace can re-enter itself (directly, or via a self-link once
/// patched). Guard hoisting only pays off on such traces.
pub(super) fn cyclic(tr: &CompiledTrace) -> bool {
    let head = tr.head;
    tr.steps.iter().any(|s| match &s.end {
        EndOp::BranchNext { fail_target, .. } => *fail_target == head,
        EndOp::SwitchNext {
            targets, default, ..
        }
        | EndOp::SwitchExit {
            targets, default, ..
        } => targets.contains(&head) || *default == head,
        EndOp::JumpExit { target, .. } | EndOp::CallExit { target, .. } => *target == head,
        EndOp::BranchExit {
            taken, fallthrough, ..
        } => *taken == head || *fallthrough == head,
        EndOp::Next | EndOp::CallNext { .. } | EndOp::ReturnNext => false,
        EndOp::ReturnExit | EndOp::HaltExit => false,
    })
}

/// The frame-relative register an instruction defines, if any.
pub(super) fn def(inst: &Inst) -> Option<u16> {
    match *inst {
        Inst::Const { dst, .. }
        | Inst::Mov { dst, .. }
        | Inst::Un { dst, .. }
        | Inst::Bin { dst, .. }
        | Inst::BinImm { dst, .. }
        | Inst::Cmp { dst, .. }
        | Inst::CmpImm { dst, .. }
        | Inst::Load { dst, .. }
        | Inst::GetGlobal { dst, .. } => Some(dst.index() as u16),
        Inst::Store { .. } | Inst::SetGlobal { .. } => None,
    }
}

/// Calls `f` for every frame-relative register the instruction reads.
pub(super) fn for_each_read(inst: &Inst, mut f: impl FnMut(u16)) {
    match *inst {
        Inst::Const { .. } | Inst::GetGlobal { .. } => {}
        Inst::Mov { src, .. } | Inst::Un { src, .. } | Inst::SetGlobal { src, .. } => {
            f(src.index() as u16)
        }
        Inst::Bin { lhs, rhs, .. } | Inst::Cmp { lhs, rhs, .. } => {
            f(lhs.index() as u16);
            f(rhs.index() as u16);
        }
        Inst::BinImm { lhs, .. } | Inst::CmpImm { lhs, .. } => f(lhs.index() as u16),
        Inst::Load { addr, .. } => f(addr.index() as u16),
        Inst::Store { src, addr, .. } => {
            f(src.index() as u16);
            f(addr.index() as u16);
        }
    }
}

/// Exclusive upper bound on register indices the trace touches (via
/// instructions, guards, or entry guards) — the table size for dense
/// per-register state.
pub(super) fn reg_bound(tr: &CompiledTrace) -> usize {
    let mut bound = 0usize;
    for inst in &tr.insts {
        if let Some(d) = def(inst) {
            bound = bound.max(d as usize + 1);
        }
        for_each_read(inst, |r| bound = bound.max(r as usize + 1));
    }
    for step in &tr.steps {
        match step.end {
            EndOp::BranchNext { cond, .. } | EndOp::BranchExit { cond, .. } => {
                bound = bound.max(cond as usize + 1)
            }
            EndOp::SwitchNext { index, .. } | EndOp::SwitchExit { index, .. } => {
                bound = bound.max(index as usize + 1)
            }
            _ => {}
        }
    }
    for g in &tr.entry_guards {
        bound = bound.max(g.reg as usize + 1);
    }
    bound
}

/// Folds a binary operation, mirroring the VM's runtime semantics
/// exactly; `None` when the operation would be a runtime error (division
/// or remainder by zero), in which case the instruction must stay.
pub(super) fn fold_bin(op: BinOp, a: i64, b: i64) -> Option<i64> {
    eval_bin(op, a, b, BlockId::new(0)).ok()
}

/// Folds a unary operation (never errors).
pub(super) fn fold_un(op: UnOp, v: i64) -> i64 {
    match op {
        UnOp::Neg => v.wrapping_neg(),
        UnOp::Not => !v,
    }
}

/// Per-register facts accumulated along the superblock, in a single
/// forward scan: known constant values, known truthiness (`!= 0`), and
/// copy aliases. Sound because a superblock has no join points — a fact
/// established at step *k* holds for the rest of the same traversal.
pub(super) struct Facts {
    konst: Vec<Option<i64>>,
    truth: Vec<Option<bool>>,
    /// `alias[d] = (s, gen)`: `d` was copied from `s` while `s` had
    /// generation `gen`; valid only while `gen[s]` still matches.
    alias: Vec<Option<(u16, u32)>>,
    gen: Vec<u32>,
}

impl Facts {
    pub(super) fn new(bound: usize) -> Self {
        Facts {
            konst: vec![None; bound],
            truth: vec![None; bound],
            alias: vec![None; bound],
            gen: vec![0; bound],
        }
    }

    fn kill(&mut self, r: u16) {
        let r = r as usize;
        self.gen[r] = self.gen[r].wrapping_add(1);
        self.konst[r] = None;
        self.truth[r] = None;
        self.alias[r] = None;
    }

    /// Register redefined with an unknown value.
    pub(super) fn def(&mut self, r: u16) {
        self.kill(r);
    }

    /// Register redefined with a known constant.
    pub(super) fn set_const(&mut self, r: u16, v: i64) {
        self.kill(r);
        self.konst[r as usize] = Some(v);
        self.truth[r as usize] = Some(v != 0);
    }

    /// Register copied from another: facts carry over and an alias edge
    /// is recorded so later guard observations flow both ways.
    pub(super) fn mov(&mut self, dst: u16, src: u16) {
        if dst == src {
            return;
        }
        let k = self.konst(src);
        let t = self.truth(src);
        let g = self.gen[src as usize];
        self.kill(dst);
        self.konst[dst as usize] = k;
        self.truth[dst as usize] = t;
        self.alias[dst as usize] = Some((src, g));
    }

    fn alias_src(&self, r: u16) -> Option<u16> {
        self.alias[r as usize]
            .filter(|&(s, g)| self.gen[s as usize] == g)
            .map(|(s, _)| s)
    }

    /// Known constant value of `r`, through one alias hop.
    pub(super) fn konst(&self, r: u16) -> Option<i64> {
        self.konst[r as usize].or_else(|| self.alias_src(r).and_then(|s| self.konst[s as usize]))
    }

    /// Known truthiness of `r`, through one alias hop.
    pub(super) fn truth(&self, r: u16) -> Option<bool> {
        self.truth[r as usize].or_else(|| self.alias_src(r).and_then(|s| self.truth[s as usize]))
    }

    /// A guard on `r` passed in the expected direction: its truthiness is
    /// now known (and, for false, its value — the only falsy `i64` is 0).
    /// The fact propagates to a still-valid copy source.
    pub(super) fn observe_truth(&mut self, r: u16, t: bool) {
        self.truth[r as usize] = Some(t);
        if !t && self.konst[r as usize].is_none() {
            self.konst[r as usize] = Some(0);
        }
        if let Some(s) = self.alias_src(r) {
            self.truth[s as usize] = Some(t);
            if !t && self.konst[s as usize].is_none() {
                self.konst[s as usize] = Some(0);
            }
        }
    }

    /// Transfers facts across one instruction (no rewriting).
    pub(super) fn apply(&mut self, inst: &Inst) {
        match *inst {
            Inst::Const { dst, value } => self.set_const(dst.index() as u16, value),
            Inst::Mov { dst, src } => self.mov(dst.index() as u16, src.index() as u16),
            Inst::Un { op, dst, src } => match self.konst(src.index() as u16) {
                Some(v) => self.set_const(dst.index() as u16, fold_un(op, v)),
                None => self.def(dst.index() as u16),
            },
            Inst::Bin { op, dst, lhs, rhs } => {
                let v = match (
                    self.konst(lhs.index() as u16),
                    self.konst(rhs.index() as u16),
                ) {
                    (Some(a), Some(b)) => fold_bin(op, a, b),
                    _ => None,
                };
                match v {
                    Some(v) => self.set_const(dst.index() as u16, v),
                    None => self.def(dst.index() as u16),
                }
            }
            Inst::BinImm { op, dst, lhs, imm } => {
                match self
                    .konst(lhs.index() as u16)
                    .and_then(|a| fold_bin(op, a, imm))
                {
                    Some(v) => self.set_const(dst.index() as u16, v),
                    None => self.def(dst.index() as u16),
                }
            }
            Inst::Cmp { op, dst, lhs, rhs } => {
                let v = match (
                    self.konst(lhs.index() as u16),
                    self.konst(rhs.index() as u16),
                ) {
                    (Some(a), Some(b)) => Some(op.eval(a, b) as i64),
                    _ => None,
                };
                match v {
                    Some(v) => self.set_const(dst.index() as u16, v),
                    None => self.def(dst.index() as u16),
                }
            }
            Inst::CmpImm { op, dst, lhs, imm } => match self.konst(lhs.index() as u16) {
                Some(a) => self.set_const(dst.index() as u16, op.eval(a, imm) as i64),
                None => self.def(dst.index() as u16),
            },
            Inst::Load { dst, .. } | Inst::GetGlobal { dst, .. } => self.def(dst.index() as u16),
            Inst::Store { .. } | Inst::SetGlobal { .. } => {}
        }
    }
}
