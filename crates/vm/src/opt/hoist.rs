//! Loop-invariant guard hoisting.
//!
//! A branch guard whose condition register is never written by any trace
//! instruction tests a value that cannot change during a traversal — so
//! for a *cyclic* trace the same check repeats every pass around the
//! loop with the same outcome. This pass moves such guards to the trace
//! entry: the dispatcher (and cross-trace chaining) checks the
//! [`EntryGuard`]s once per entry, and refuses entry when one fails —
//! exactly as if no trace were installed, which the interpreter handles
//! bit-identically.
//!
//! The hoisted step's end becomes [`EndOp::Next`] and its `d_cond` delta
//! keeps `cond_branches` accounting exact. Self-chains skip re-checking:
//! invariance across one traversal implies invariance across the
//! self-link.

use hotpath_telemetry as telemetry;

use super::analysis;
use crate::trace_exec::{CompiledTrace, EndOp, EntryGuard};

/// Hoists loop-invariant branch guards to the trace entry; returns how
/// many guards were hoisted. The caller has verified the trace is
/// call-free.
pub(super) fn run(tr: &mut CompiledTrace) -> u32 {
    if !analysis::cyclic(tr) {
        return 0;
    }
    let mut defined = vec![false; analysis::reg_bound(tr)];
    for inst in &tr.insts {
        if let Some(d) = analysis::def(inst) {
            defined[d as usize] = true;
        }
    }
    let head = tr.head;
    let steps = &mut tr.steps;
    let entry_guards = &mut tr.entry_guards;
    let mut hoisted = 0;
    for step in steps.iter_mut() {
        if let EndOp::BranchNext {
            cond, expect_taken, ..
        } = step.end
        {
            if !defined[cond as usize] {
                if !entry_guards
                    .iter()
                    .any(|g| g.reg == cond && g.expect == expect_taken)
                {
                    entry_guards.push(EntryGuard {
                        reg: cond,
                        expect: expect_taken,
                    });
                }
                step.end = EndOp::Next;
                step.d_cond += 1;
                hoisted += 1;
                telemetry::emit!(telemetry::Event::GuardHoisted {
                    head,
                    block: step.block,
                    reg: cond as u32,
                });
            }
        }
    }
    hoisted
}
