//! Redundant-guard elimination.
//!
//! A branch guard is redundant when the facts accumulated along the
//! superblock already decide it: the condition register holds a known
//! constant, or an earlier guard on the same register (or on a live copy
//! of it) already established its truthiness in the expected direction.
//! Such a guard can never fail, so it is rewritten to [`EndOp::Next`];
//! the step's `d_cond` delta keeps `cond_branches` accounting exact.
//!
//! Guards that *can* fail are left untouched, with their `link_a` slot
//! and pre-resolved fail target intact — the exit-stub identity
//! invariant fragment linking relies on. A guard known to always fail is
//! also left in place: the trace simply exits there every traversal.

use hotpath_telemetry as telemetry;

use super::analysis::{self, Facts};
use crate::trace_exec::{CompiledTrace, EndOp};

/// Elides guards implied by dominating facts; returns how many guards
/// were elided. The caller has verified the trace is call-free.
pub(super) fn run(tr: &mut CompiledTrace) -> u32 {
    let mut facts = Facts::new(analysis::reg_bound(tr));
    // Entry guards hold at entry and their registers are invariant, so
    // their facts are valid for the entire traversal.
    for g in &tr.entry_guards {
        facts.observe_truth(g.reg, g.expect);
    }
    let head = tr.head;
    let mut elided = 0;
    let last = tr.steps.len() - 1;
    for si in 0..tr.steps.len() {
        let (lo, hi) = (
            tr.steps[si].inst_start as usize,
            tr.steps[si].inst_end as usize,
        );
        for inst in &tr.insts[lo..hi] {
            facts.apply(inst);
        }
        if si == last {
            break;
        }
        let step = &mut tr.steps[si];
        if let EndOp::BranchNext {
            cond, expect_taken, ..
        } = step.end
        {
            match facts.truth(cond) {
                Some(t) if t == expect_taken => {
                    step.end = EndOp::Next;
                    step.d_cond += 1;
                    elided += 1;
                    telemetry::emit!(telemetry::Event::GuardElided {
                        head,
                        block: step.block,
                    });
                }
                Some(_) => {}
                None => facts.observe_truth(cond, expect_taken),
            }
        }
    }
    elided
}
