//! Fragment-install-time trace optimizer.
//!
//! A [`CompiledTrace`] is a single-entry, single-path superblock: every
//! step has exactly one on-trace successor, and every divergence leaves
//! through an exit stub. That shape makes classic forward dataflow
//! trivially sound — facts established by an instruction or by a passing
//! guard hold for the *rest of the same traversal*, because there is no
//! join point that could invalidate them (the abstract-interpretation
//! framing of tracing-JIT optimization, Dissegna et al.).
//!
//! [`optimize`] runs at install time, between `compile_trace` and
//! `TraceCache::install`, controlled by an [`OptLevel`]:
//!
//! * [`OptLevel::None`] — install the trace exactly as compiled.
//! * [`OptLevel::Guards`] — guard passes only: hoist loop-invariant
//!   guards to the trace entry ([`hoist`]) and drop guards implied by
//!   earlier facts on the same superblock ([`guard_elim`]).
//! * [`OptLevel::Full`] — additionally fold constants and propagate
//!   copies across the pre-resolved stream ([`constfold`]), sink dead
//!   constants into exit stubs ([`sink`]), and predecode the stream into
//!   direct-threaded [`MicroOp`]s with straight-line steps merged
//!   ([`thread`]).
//!
//! Invariants every pass preserves:
//!
//! * **Bit-identity.** `RunStats`, memory, globals, and errors are
//!   indistinguishable from the unoptimized trace (and therefore from
//!   plain interpretation). Removed guards and merged steps account
//!   their stats through the per-step `d_cond`/`d_blocks`/`d_backward`
//!   deltas; sunk constants materialize through per-step exit stubs on
//!   every path that leaves the trace.
//! * **Exit-stub identity.** A surviving guard keeps its step's
//!   `link_a`/`link_b` slots and its pre-resolved fail target, so
//!   fragment linking, link severing, and the degradation ladder work
//!   unchanged at every level.
//! * **Dataflow gating.** Passes that reason about registers only run on
//!   call-free traces (one function, constant frame base). Threading and
//!   merging are shape-only and run on any trace.

mod analysis;
mod constfold;
mod guard_elim;
mod hoist;
mod sink;
mod thread;

pub(crate) use thread::{exec_op, MicroOp};

use hotpath_telemetry as telemetry;

use crate::trace_exec::CompiledTrace;

/// How aggressively traces are optimized at fragment-install time.
///
/// Every level is bit-identical to every other in `RunStats`, memory,
/// globals, and errors; levels differ only in how much work each trace
/// traversal performs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub enum OptLevel {
    /// Install traces exactly as compiled.
    #[default]
    None,
    /// Guard passes only: redundant-guard elimination and loop-invariant
    /// guard hoisting.
    Guards,
    /// All passes: guards, constant folding and copy propagation, dead
    /// constant sinking into exit stubs, and direct-threaded dispatch
    /// with straight-line step merging.
    Full,
}

impl OptLevel {
    /// Stable lower-case name (`"none"` / `"guards"` / `"full"`), e.g.
    /// for CLI flags and serve session specs.
    pub fn as_str(self) -> &'static str {
        match self {
            OptLevel::None => "none",
            OptLevel::Guards => "guards",
            OptLevel::Full => "full",
        }
    }

    /// Parses [`OptLevel::as_str`] output (case-sensitive).
    pub fn parse(s: &str) -> Option<OptLevel> {
        match s {
            "none" => Some(OptLevel::None),
            "guards" => Some(OptLevel::Guards),
            "full" => Some(OptLevel::Full),
            _ => None,
        }
    }
}

/// Runs a wall-clock-timed optimizer pass, emitting its duration as an
/// `opt_pass_ns` event (nondeterministic, like `timing`).
fn timed<T>(pass: &'static str, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let out = f();
    telemetry::emit!(telemetry::Event::OptPass {
        pass,
        ns: start.elapsed().as_nanos() as u64,
    });
    out
}

/// Optimizes a freshly compiled trace in place.
///
/// Runs between `compile_trace` and `TraceCache::install`, so links are
/// still unpatched and nothing has executed the trace yet.
pub(crate) fn optimize(tr: &mut CompiledTrace, level: OptLevel) {
    if level == OptLevel::None {
        return;
    }
    let mut folded = 0;
    let mut sunk = 0;
    if analysis::call_free(tr) {
        timed("hoist", || hoist::run(tr));
        if level >= OptLevel::Full {
            folded = timed("constfold", || constfold::run(tr));
        }
        timed("guard_elim", || guard_elim::run(tr));
        if level >= OptLevel::Full {
            sunk = timed("sink", || sink::run(tr));
        }
    }
    if level >= OptLevel::Full {
        timed("thread", || thread::run(tr));
    }
    if folded > 0 || sunk > 0 {
        telemetry::emit!(telemetry::Event::ConstFolded {
            head: tr.head,
            folded,
            sunk,
        });
    }
}
