//! Dead-constant sinking into exit stubs.
//!
//! After constant folding, many `Const` instructions write registers the
//! trace itself never reads — their values only matter if control leaves
//! the trace and the interpreter (or another trace) resumes. This pass
//! removes such constants from the executed stream and records them in
//! per-step *exit stubs*: for each step, a snapshot of every removed
//! constant still pending at that point. Whatever path leaves the trace
//! at step *k* — guard failure, spurious injected failure, the final
//! exit, a halt, or a chain into another trace — first applies step
//! *k*'s stub, materializing exactly the register state block-by-block
//! interpretation would have produced.
//!
//! Two hazards shape the snapshot rule:
//!
//! * **Clobbering.** A kept instruction that redefines a sunk register
//!   (e.g. a `Load` into the same slot) removes it from the pending set,
//!   so later stubs do not overwrite the newer value.
//! * **Loop carry.** The final step's stub runs on self-chains too, so
//!   each completed traversal materializes its constants before the next
//!   begins; an early exit in traversal *n+1* then only needs the stubs
//!   of its own prefix.
//!
//! Error paths skip stubs: registers are unobservable after a `VmError`.
//! `size` (and therefore `insts_executed`) counts original instructions,
//! so stats are untouched.

use std::collections::BTreeMap;

use hotpath_ir::Inst;

use super::analysis;
use crate::trace_exec::CompiledTrace;

/// Sinks never-read constants into per-step exit stubs; returns how many
/// constant instructions were removed from the executed stream. The
/// caller has verified the trace is call-free.
pub(super) fn run(tr: &mut CompiledTrace) -> u32 {
    let mut read = vec![false; analysis::reg_bound(tr)];
    for inst in &tr.insts {
        analysis::for_each_read(inst, |r| read[r as usize] = true);
    }
    for step in &tr.steps {
        use crate::trace_exec::EndOp;
        match step.end {
            EndOp::BranchNext { cond, .. } | EndOp::BranchExit { cond, .. } => {
                read[cond as usize] = true
            }
            EndOp::SwitchNext { index, .. } | EndOp::SwitchExit { index, .. } => {
                read[index as usize] = true
            }
            _ => {}
        }
    }
    for g in &tr.entry_guards {
        read[g.reg as usize] = true;
    }
    let sinkable = tr
        .insts
        .iter()
        .any(|i| matches!(i, Inst::Const { dst, .. } if !read[dst.index()]));
    if !sinkable {
        return 0;
    }

    let (steps, insts) = (&mut tr.steps, &tr.insts);
    let mut new_insts: Vec<Inst> = Vec::with_capacity(insts.len());
    let mut stubs: Vec<(u16, i64)> = Vec::new();
    let mut pending: BTreeMap<u16, i64> = BTreeMap::new();
    let mut sunk = 0;
    for step in steps.iter_mut() {
        let start = new_insts.len() as u32;
        for inst in &insts[step.inst_start as usize..step.inst_end as usize] {
            if let Inst::Const { dst, value } = *inst {
                if !read[dst.index()] {
                    pending.insert(dst.index() as u16, value);
                    sunk += 1;
                    continue;
                }
            }
            if let Some(d) = analysis::def(inst) {
                pending.remove(&d);
            }
            new_insts.push(inst.clone());
        }
        step.inst_start = start;
        step.inst_end = new_insts.len() as u32;
        step.stub_start = stubs.len() as u32;
        stubs.extend(pending.iter().map(|(&r, &v)| (r, v)));
        step.stub_end = stubs.len() as u32;
    }
    tr.insts = new_insts;
    tr.stubs = stubs;
    sunk
}
