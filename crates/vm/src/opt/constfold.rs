//! Constant folding and copy propagation over the pre-resolved stream.
//!
//! One forward scan with [`Facts`]: instructions whose operands are all
//! known fold to [`Inst::Const`] with the exact value the VM would have
//! computed (via the VM's own `eval_bin`, so wrapping and masking
//! semantics match bit-for-bit); instructions with one known operand
//! reduce to their immediate forms (`Bin`→`BinImm`, `Cmp`→`CmpImm`,
//! mirroring the comparison when the known operand is on the left).
//! Copies from registers with known values become constants, and facts
//! flow *through* copies, so a chain `mov b,a; cmp c,b,…` folds as if it
//! had used `a` directly.
//!
//! Operations that could be runtime errors (division or remainder whose
//! divisor is zero or unknown) are never folded away — the instruction
//! stays and errors at exactly the block plain interpretation would.
//! Rewrites never add, remove, or reorder instructions, so stats and
//! stub/step geometry are untouched.

use hotpath_ir::{BinOp, CmpOp, Inst};

use super::analysis::{self, fold_bin, fold_un, Facts};
use crate::trace_exec::{CompiledTrace, EndOp};

/// True when swapping the operands leaves the result unchanged.
fn commutative(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Min | BinOp::Max
    )
}

/// The comparison with operands swapped: `a op b == b mirror(op) a`.
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
    }
}

/// The cheaper equivalent of `inst` under `facts`, if one exists.
fn rewrite(inst: &Inst, facts: &Facts) -> Option<Inst> {
    let k = |r: hotpath_ir::Reg| facts.konst(r.index() as u16);
    match *inst {
        Inst::Mov { dst, src } => k(src).map(|value| Inst::Const { dst, value }),
        Inst::Un { op, dst, src } => k(src).map(|v| Inst::Const {
            dst,
            value: fold_un(op, v),
        }),
        Inst::Bin { op, dst, lhs, rhs } => match (k(lhs), k(rhs)) {
            (Some(a), Some(b)) => fold_bin(op, a, b).map(|value| Inst::Const { dst, value }),
            (None, Some(b)) => Some(Inst::BinImm {
                op,
                dst,
                lhs,
                imm: b,
            }),
            (Some(a), None) if commutative(op) => Some(Inst::BinImm {
                op,
                dst,
                lhs: rhs,
                imm: a,
            }),
            _ => None,
        },
        Inst::BinImm { op, dst, lhs, imm } => k(lhs)
            .and_then(|a| fold_bin(op, a, imm))
            .map(|value| Inst::Const { dst, value }),
        Inst::Cmp { op, dst, lhs, rhs } => match (k(lhs), k(rhs)) {
            (Some(a), Some(b)) => Some(Inst::Const {
                dst,
                value: op.eval(a, b) as i64,
            }),
            (None, Some(b)) => Some(Inst::CmpImm {
                op,
                dst,
                lhs,
                imm: b,
            }),
            (Some(a), None) => Some(Inst::CmpImm {
                op: mirror(op),
                dst,
                lhs: rhs,
                imm: a,
            }),
            _ => None,
        },
        Inst::CmpImm { op, dst, lhs, imm } => k(lhs).map(|a| Inst::Const {
            dst,
            value: op.eval(a, imm) as i64,
        }),
        Inst::Const { .. }
        | Inst::Load { .. }
        | Inst::Store { .. }
        | Inst::GetGlobal { .. }
        | Inst::SetGlobal { .. } => None,
    }
}

/// Folds and reduces instructions in place; returns how many were
/// rewritten. The caller has verified the trace is call-free.
pub(super) fn run(tr: &mut CompiledTrace) -> u32 {
    let mut facts = Facts::new(analysis::reg_bound(tr));
    for g in &tr.entry_guards {
        facts.observe_truth(g.reg, g.expect);
    }
    let mut folded = 0;
    let last = tr.steps.len() - 1;
    let (steps, insts) = (&tr.steps, &mut tr.insts);
    for (si, step) in steps.iter().enumerate() {
        for inst in &mut insts[step.inst_start as usize..step.inst_end as usize] {
            if let Some(new) = rewrite(inst, &facts) {
                *inst = new;
                folded += 1;
            }
            facts.apply(inst);
        }
        // Past a surviving guard, its outcome is a fact for the rest of
        // the traversal.
        if si < last {
            if let EndOp::BranchNext {
                cond, expect_taken, ..
            } = step.end
            {
                if facts.truth(cond).is_none() {
                    facts.observe_truth(cond, expect_taken);
                }
            }
        }
    }
    folded
}
