//! Direct-threaded dispatch: predecoding and step merging.
//!
//! The interpreter's [`Inst`] enum nests operator enums inside operand
//! variants, so executing one instruction costs two levels of dispatch
//! plus `Reg` unwrapping. Predecoding flattens each instruction into a
//! [`MicroOp`] — one fully-specialized [`Code`] per (operation,
//! operand-shape) pair with raw indices and the immediate pre-extracted —
//! so [`exec_op`]'s single `match` compiles to one jump-table dispatch
//! per instruction.
//!
//! Merging then collapses runs of steps ending in [`EndOp::Next`]
//! (unconditional jumps and elided/hoisted guards) into single steps:
//! one per-step accounting prologue instead of one per block. The
//! surviving step is the *last* of its group — it carries the group's
//! guard/exit and link slots (exit-stub identity preserved) — while its
//! `entry` field names the group's *first* block, which is what a
//! following guard must compare a dynamic target against. The
//! `d_blocks`/`d_cond`/`d_backward` deltas keep `RunStats` exact, and
//! `CompiledTrace::blocks` keeps the fuel precheck counting original
//! blocks.
//!
//! Predecoding runs *before* merging, while steps are still 1:1 with
//! blocks, so every micro-op carries its own block id for error
//! attribution. Ops share index ranges with `insts`, so the merge's
//! range arithmetic covers both.

use hotpath_ir::{BinOp, BlockId, CmpOp, GlobalReg, Inst, UnOp};

use crate::error::VmError;
use crate::trace_exec::{CompiledTrace, EndOp, TraceStep};

/// Fully-specialized operation code; one variant per (operation,
/// operand-shape) pair so dispatch is a single jump.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Code {
    Const,
    Mov,
    Neg,
    Not,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Min,
    Max,
    AddImm,
    SubImm,
    MulImm,
    DivImm,
    RemImm,
    AndImm,
    OrImm,
    XorImm,
    ShlImm,
    ShrImm,
    MinImm,
    MaxImm,
    CmpLt,
    CmpLe,
    CmpEq,
    CmpNe,
    CmpGt,
    CmpGe,
    CmpLtImm,
    CmpLeImm,
    CmpEqImm,
    CmpNeImm,
    CmpGtImm,
    CmpGeImm,
    Load,
    Store,
    GetGlobal,
    SetGlobal,
}

/// One predecoded instruction: raw operand indices, pre-extracted
/// immediate, and the owning block for error attribution.
#[derive(Clone, Copy, Debug)]
pub(crate) struct MicroOp {
    pub(crate) code: Code,
    /// Destination register (frame-relative).
    pub(crate) dst: u16,
    /// First source: register, or global index for `GetGlobal`.
    pub(crate) a: u16,
    /// Second source: register, or global index for `SetGlobal`.
    pub(crate) b: u16,
    /// Immediate / constant / memory offset.
    pub(crate) imm: i64,
    /// Global block id of the originating block.
    pub(crate) block: u32,
}

fn bin_code(op: BinOp, imm: bool) -> Code {
    match (op, imm) {
        (BinOp::Add, false) => Code::Add,
        (BinOp::Sub, false) => Code::Sub,
        (BinOp::Mul, false) => Code::Mul,
        (BinOp::Div, false) => Code::Div,
        (BinOp::Rem, false) => Code::Rem,
        (BinOp::And, false) => Code::And,
        (BinOp::Or, false) => Code::Or,
        (BinOp::Xor, false) => Code::Xor,
        (BinOp::Shl, false) => Code::Shl,
        (BinOp::Shr, false) => Code::Shr,
        (BinOp::Min, false) => Code::Min,
        (BinOp::Max, false) => Code::Max,
        (BinOp::Add, true) => Code::AddImm,
        (BinOp::Sub, true) => Code::SubImm,
        (BinOp::Mul, true) => Code::MulImm,
        (BinOp::Div, true) => Code::DivImm,
        (BinOp::Rem, true) => Code::RemImm,
        (BinOp::And, true) => Code::AndImm,
        (BinOp::Or, true) => Code::OrImm,
        (BinOp::Xor, true) => Code::XorImm,
        (BinOp::Shl, true) => Code::ShlImm,
        (BinOp::Shr, true) => Code::ShrImm,
        (BinOp::Min, true) => Code::MinImm,
        (BinOp::Max, true) => Code::MaxImm,
    }
}

fn cmp_code(op: CmpOp, imm: bool) -> Code {
    match (op, imm) {
        (CmpOp::Lt, false) => Code::CmpLt,
        (CmpOp::Le, false) => Code::CmpLe,
        (CmpOp::Eq, false) => Code::CmpEq,
        (CmpOp::Ne, false) => Code::CmpNe,
        (CmpOp::Gt, false) => Code::CmpGt,
        (CmpOp::Ge, false) => Code::CmpGe,
        (CmpOp::Lt, true) => Code::CmpLtImm,
        (CmpOp::Le, true) => Code::CmpLeImm,
        (CmpOp::Eq, true) => Code::CmpEqImm,
        (CmpOp::Ne, true) => Code::CmpNeImm,
        (CmpOp::Gt, true) => Code::CmpGtImm,
        (CmpOp::Ge, true) => Code::CmpGeImm,
    }
}

fn decode(inst: &Inst, block: u32) -> MicroOp {
    let mut op = MicroOp {
        code: Code::Const,
        dst: 0,
        a: 0,
        b: 0,
        imm: 0,
        block,
    };
    match *inst {
        Inst::Const { dst, value } => {
            op.dst = dst.index() as u16;
            op.imm = value;
        }
        Inst::Mov { dst, src } => {
            op.code = Code::Mov;
            op.dst = dst.index() as u16;
            op.a = src.index() as u16;
        }
        Inst::Un { op: un, dst, src } => {
            op.code = match un {
                UnOp::Neg => Code::Neg,
                UnOp::Not => Code::Not,
            };
            op.dst = dst.index() as u16;
            op.a = src.index() as u16;
        }
        Inst::Bin {
            op: b,
            dst,
            lhs,
            rhs,
        } => {
            op.code = bin_code(b, false);
            op.dst = dst.index() as u16;
            op.a = lhs.index() as u16;
            op.b = rhs.index() as u16;
        }
        Inst::BinImm {
            op: b,
            dst,
            lhs,
            imm,
        } => {
            op.code = bin_code(b, true);
            op.dst = dst.index() as u16;
            op.a = lhs.index() as u16;
            op.imm = imm;
        }
        Inst::Cmp {
            op: c,
            dst,
            lhs,
            rhs,
        } => {
            op.code = cmp_code(c, false);
            op.dst = dst.index() as u16;
            op.a = lhs.index() as u16;
            op.b = rhs.index() as u16;
        }
        Inst::CmpImm {
            op: c,
            dst,
            lhs,
            imm,
        } => {
            op.code = cmp_code(c, true);
            op.dst = dst.index() as u16;
            op.a = lhs.index() as u16;
            op.imm = imm;
        }
        Inst::Load { dst, addr, offset } => {
            op.code = Code::Load;
            op.dst = dst.index() as u16;
            op.a = addr.index() as u16;
            op.imm = offset;
        }
        Inst::Store { src, addr, offset } => {
            op.code = Code::Store;
            op.a = src.index() as u16;
            op.b = addr.index() as u16;
            op.imm = offset;
        }
        Inst::GetGlobal { dst, global } => {
            op.code = Code::GetGlobal;
            op.dst = dst.index() as u16;
            op.a = global.index() as u16;
        }
        Inst::SetGlobal { src, global } => {
            op.code = Code::SetGlobal;
            op.a = src.index() as u16;
            op.b = global.index() as u16;
        }
    }
    op
}

/// Executes one predecoded micro-op, bit-identical to
/// [`exec_inst`](crate::vm::exec_inst) on the originating instruction.
#[inline]
pub(crate) fn exec_op(
    op: &MicroOp,
    regs: &mut [i64],
    memory: &mut [i64],
    globals: &mut [i64; GlobalReg::COUNT],
) -> Result<(), VmError> {
    let d = op.dst as usize;
    let a = op.a as usize;
    let b = op.b as usize;
    match op.code {
        Code::Const => regs[d] = op.imm,
        Code::Mov => regs[d] = regs[a],
        Code::Neg => regs[d] = regs[a].wrapping_neg(),
        Code::Not => regs[d] = !regs[a],
        Code::Add => regs[d] = regs[a].wrapping_add(regs[b]),
        Code::Sub => regs[d] = regs[a].wrapping_sub(regs[b]),
        Code::Mul => regs[d] = regs[a].wrapping_mul(regs[b]),
        Code::Div => {
            let rhs = regs[b];
            if rhs == 0 {
                return Err(VmError::DivisionByZero {
                    block: BlockId::new(op.block),
                });
            }
            regs[d] = regs[a].wrapping_div(rhs);
        }
        Code::Rem => {
            let rhs = regs[b];
            if rhs == 0 {
                return Err(VmError::DivisionByZero {
                    block: BlockId::new(op.block),
                });
            }
            regs[d] = regs[a].wrapping_rem(rhs);
        }
        Code::And => regs[d] = regs[a] & regs[b],
        Code::Or => regs[d] = regs[a] | regs[b],
        Code::Xor => regs[d] = regs[a] ^ regs[b],
        Code::Shl => regs[d] = regs[a].wrapping_shl(regs[b] as u32 & 63),
        Code::Shr => regs[d] = regs[a].wrapping_shr(regs[b] as u32 & 63),
        Code::Min => regs[d] = regs[a].min(regs[b]),
        Code::Max => regs[d] = regs[a].max(regs[b]),
        Code::AddImm => regs[d] = regs[a].wrapping_add(op.imm),
        Code::SubImm => regs[d] = regs[a].wrapping_sub(op.imm),
        Code::MulImm => regs[d] = regs[a].wrapping_mul(op.imm),
        Code::DivImm => {
            if op.imm == 0 {
                return Err(VmError::DivisionByZero {
                    block: BlockId::new(op.block),
                });
            }
            regs[d] = regs[a].wrapping_div(op.imm);
        }
        Code::RemImm => {
            if op.imm == 0 {
                return Err(VmError::DivisionByZero {
                    block: BlockId::new(op.block),
                });
            }
            regs[d] = regs[a].wrapping_rem(op.imm);
        }
        Code::AndImm => regs[d] = regs[a] & op.imm,
        Code::OrImm => regs[d] = regs[a] | op.imm,
        Code::XorImm => regs[d] = regs[a] ^ op.imm,
        Code::ShlImm => regs[d] = regs[a].wrapping_shl(op.imm as u32 & 63),
        Code::ShrImm => regs[d] = regs[a].wrapping_shr(op.imm as u32 & 63),
        Code::MinImm => regs[d] = regs[a].min(op.imm),
        Code::MaxImm => regs[d] = regs[a].max(op.imm),
        Code::CmpLt => regs[d] = (regs[a] < regs[b]) as i64,
        Code::CmpLe => regs[d] = (regs[a] <= regs[b]) as i64,
        Code::CmpEq => regs[d] = (regs[a] == regs[b]) as i64,
        Code::CmpNe => regs[d] = (regs[a] != regs[b]) as i64,
        Code::CmpGt => regs[d] = (regs[a] > regs[b]) as i64,
        Code::CmpGe => regs[d] = (regs[a] >= regs[b]) as i64,
        Code::CmpLtImm => regs[d] = (regs[a] < op.imm) as i64,
        Code::CmpLeImm => regs[d] = (regs[a] <= op.imm) as i64,
        Code::CmpEqImm => regs[d] = (regs[a] == op.imm) as i64,
        Code::CmpNeImm => regs[d] = (regs[a] != op.imm) as i64,
        Code::CmpGtImm => regs[d] = (regs[a] > op.imm) as i64,
        Code::CmpGeImm => regs[d] = (regs[a] >= op.imm) as i64,
        Code::Load => {
            let at = regs[a].wrapping_add(op.imm);
            let idx = usize::try_from(at)
                .ok()
                .filter(|&i| i < memory.len())
                .ok_or(VmError::MemoryOutOfBounds {
                    block: BlockId::new(op.block),
                    address: at,
                    memory_words: memory.len(),
                })?;
            regs[d] = memory[idx];
        }
        Code::Store => {
            let at = regs[b].wrapping_add(op.imm);
            let idx = usize::try_from(at)
                .ok()
                .filter(|&i| i < memory.len())
                .ok_or(VmError::MemoryOutOfBounds {
                    block: BlockId::new(op.block),
                    address: at,
                    memory_words: memory.len(),
                })?;
            memory[idx] = regs[a];
        }
        Code::GetGlobal => regs[d] = globals[a],
        Code::SetGlobal => globals[b] = regs[a],
    }
    Ok(())
}

/// Predecodes the instruction stream, then merges straight-line steps.
pub(super) fn run(tr: &mut CompiledTrace) {
    // Predecode while steps are 1:1 with blocks, so each op carries the
    // right block for error attribution.
    let mut ops = Vec::with_capacity(tr.insts.len());
    for step in &tr.steps {
        for inst in &tr.insts[step.inst_start as usize..step.inst_end as usize] {
            ops.push(decode(inst, step.block));
        }
    }
    tr.ops = ops;
    merge(tr);
}

/// Accumulated prefix of a straight-line group, folded into the step
/// that finally carries a guard or exit.
struct Group {
    entry: u32,
    inst_start: u32,
    size: u32,
    d_blocks: u32,
    d_cond: u32,
    d_backward: u32,
}

fn merge(tr: &mut CompiledTrace) {
    if !tr.steps.iter().any(|s| matches!(s.end, EndOp::Next)) {
        return;
    }
    let mut merged: Vec<TraceStep> = Vec::with_capacity(tr.steps.len());
    let mut acc: Option<Group> = None;
    for mut step in tr.steps.drain(..) {
        if let Some(g) = acc.take() {
            step.entry = g.entry;
            step.inst_start = g.inst_start;
            step.size += g.size;
            step.d_blocks += g.d_blocks;
            step.d_cond += g.d_cond;
            step.d_backward += g.d_backward;
        }
        if matches!(step.end, EndOp::Next) {
            // The final step always carries an exit, so a `Next` step
            // always has a successor to fold into.
            acc = Some(Group {
                entry: step.entry,
                inst_start: step.inst_start,
                size: step.size,
                d_blocks: step.d_blocks,
                d_cond: step.d_cond,
                d_backward: step.d_backward + step.next_backward as u32,
            });
        } else {
            merged.push(step);
        }
    }
    debug_assert!(acc.is_none(), "a trailing step cannot end in Next");
    tr.steps = merged;
}
