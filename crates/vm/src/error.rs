//! Runtime errors.

use std::error::Error;
use std::fmt;

use hotpath_ir::BlockId;

/// Errors raised while executing a program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VmError {
    /// Integer division or remainder by zero.
    DivisionByZero {
        /// Block that executed the faulting instruction.
        block: BlockId,
    },
    /// A load or store addressed a word outside program memory.
    MemoryOutOfBounds {
        /// Block that executed the faulting instruction.
        block: BlockId,
        /// The effective word address.
        address: i64,
        /// Memory size in words.
        memory_words: usize,
    },
    /// A `Return` executed with no caller on the stack.
    ReturnWithoutCaller {
        /// Block containing the return.
        block: BlockId,
    },
    /// The call stack exceeded the configured depth limit.
    StackOverflow {
        /// The configured limit.
        limit: usize,
    },
    /// The run exceeded the configured block budget without halting.
    OutOfFuel {
        /// The configured budget in executed blocks.
        budget: u64,
    },
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::DivisionByZero { block } => {
                write!(f, "division by zero in block {block}")
            }
            VmError::MemoryOutOfBounds {
                block,
                address,
                memory_words,
            } => write!(
                f,
                "memory access at word {address} out of bounds (0..{memory_words}) in block {block}"
            ),
            VmError::ReturnWithoutCaller { block } => {
                write!(f, "return without caller in block {block}")
            }
            VmError::StackOverflow { limit } => {
                write!(f, "call stack exceeded {limit} frames")
            }
            VmError::OutOfFuel { budget } => {
                write!(f, "execution exceeded the budget of {budget} blocks")
            }
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = VmError::DivisionByZero {
            block: BlockId::new(3),
        };
        assert!(e.to_string().contains("B3"));
        let e = VmError::OutOfFuel { budget: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn is_send_sync_error() {
        fn check<T: Error + Send + Sync + 'static>() {}
        check::<VmError>();
    }
}
