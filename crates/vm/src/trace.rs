//! Trace recording and simple statistics observers.
//!
//! Experiments record a workload's block stream once with [`TraceRecorder`]
//! (≈5 bytes per executed block) and replay it through any number of
//! prediction schemes via [`RecordedTrace::replay`], so a τ-sweep does not
//! re-run the VM.

use hotpath_ir::BlockId;

use crate::event::{BlockEvent, ExecutionObserver, TransferKind};

/// Counts events; the cheapest useful observer.
#[derive(Clone, Copy, Default, Debug)]
pub struct CountingObserver {
    /// Blocks entered.
    pub blocks: u64,
    /// Conditional branch transfers observed.
    pub cond_branches: u64,
    /// Backward transfers observed.
    pub backward: u64,
    /// Halt notifications received.
    pub halts: u64,
}

impl ExecutionObserver for CountingObserver {
    #[inline]
    fn on_block(&mut self, event: &BlockEvent) {
        self.blocks += 1;
        if event.kind.is_conditional() {
            self.cond_branches += 1;
        }
        if event.backward {
            self.backward += 1;
        }
    }

    fn on_halt(&mut self) {
        self.halts += 1;
    }
}

/// Records the block stream in a compact in-memory encoding.
#[derive(Clone, Default, Debug)]
pub struct TraceRecorder {
    blocks: Vec<u32>,
    flags: Vec<u8>,
    sizes: Vec<u32>,
    halted: bool,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes recording and returns the trace.
    pub fn into_trace(self) -> RecordedTrace {
        RecordedTrace {
            blocks: self.blocks,
            flags: self.flags,
            sizes: self.sizes,
            halted: self.halted,
        }
    }
}

impl ExecutionObserver for TraceRecorder {
    #[inline]
    fn on_block(&mut self, event: &BlockEvent) {
        let b = event.block.as_u32();
        self.blocks.push(b);
        self.flags
            .push(event.kind.tag() | ((event.backward as u8) << 3));
        let bi = b as usize;
        if bi >= self.sizes.len() {
            self.sizes.resize(bi + 1, 0);
        }
        self.sizes[bi] = event.block_size;
    }

    fn on_halt(&mut self) {
        self.halted = true;
    }
}

/// A recorded block stream, replayable through any observer.
#[derive(Clone, Default, Debug)]
pub struct RecordedTrace {
    blocks: Vec<u32>,
    flags: Vec<u8>,
    sizes: Vec<u32>,
    halted: bool,
}

impl RecordedTrace {
    /// Number of recorded block events.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// True if the recorded run halted normally.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Reconstructs the `i`-th event.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn event(&self, i: usize) -> BlockEvent {
        let block = BlockId::new(self.blocks[i]);
        let flags = self.flags[i];
        BlockEvent {
            from: if i == 0 {
                None
            } else {
                Some(BlockId::new(self.blocks[i - 1]))
            },
            block,
            kind: TransferKind::from_tag(flags & 0b111).expect("recorded tag is valid"),
            backward: flags & 0b1000 != 0,
            block_size: self.sizes[self.blocks[i] as usize],
        }
    }

    /// Replays every recorded event (and the halt notification, if the run
    /// halted) through `observer`.
    pub fn replay<O: ExecutionObserver>(&self, observer: &mut O) {
        for i in 0..self.blocks.len() {
            let ev = self.event(i);
            observer.on_block(&ev);
        }
        if self.halted {
            observer.on_halt();
        }
    }

    /// Iterates over reconstructed events.
    pub fn iter(&self) -> impl Iterator<Item = BlockEvent> + '_ {
        (0..self.len()).map(move |i| self.event(i))
    }

    /// Approximate heap footprint in bytes, for reporting.
    pub fn memory_bytes(&self) -> usize {
        self.blocks.len() * 4 + self.flags.len() + self.sizes.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vm::Vm;
    use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
    use hotpath_ir::CmpOp;

    fn loop_program() -> hotpath_ir::Program {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, 3);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.finish().unwrap()
    }

    #[test]
    fn record_and_replay_match_live_run() {
        let p = loop_program();
        let mut recorder = TraceRecorder::new();
        let stats = Vm::new(&p).run(&mut recorder).unwrap();
        let trace = recorder.into_trace();
        assert_eq!(trace.len() as u64, stats.blocks_executed);
        assert!(trace.halted());

        // Replaying must reproduce the live counter results.
        let mut live = CountingObserver::default();
        Vm::new(&p).run(&mut live).unwrap();
        let mut replayed = CountingObserver::default();
        trace.replay(&mut replayed);
        assert_eq!(live.blocks, replayed.blocks);
        assert_eq!(live.cond_branches, replayed.cond_branches);
        assert_eq!(live.backward, replayed.backward);
        assert_eq!(replayed.halts, 1);
    }

    #[test]
    fn events_reconstruct_from_links() {
        let p = loop_program();
        let mut recorder = TraceRecorder::new();
        Vm::new(&p).run(&mut recorder).unwrap();
        let trace = recorder.into_trace();
        assert_eq!(trace.event(0).from, None);
        assert_eq!(trace.event(0).kind, TransferKind::Start);
        for i in 1..trace.len() {
            assert_eq!(trace.event(i).from, Some(trace.event(i - 1).block));
        }
    }

    #[test]
    fn determinism_same_trace_twice() {
        let p = loop_program();
        let run = || {
            let mut r = TraceRecorder::new();
            Vm::new(&p).run(&mut r).unwrap();
            r.into_trace()
        };
        let a = run();
        let b = run();
        assert_eq!(a.blocks, b.blocks);
        assert_eq!(a.flags, b.flags);
    }

    #[test]
    fn empty_trace_is_empty() {
        let t = RecordedTrace::default();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(!t.halted());
        assert!(t.memory_bytes() == 0);
    }
}
