//! The abstract cycle cost model.
//!
//! The paper never reports absolute times for its overhead argument — the
//! claim is structural: interpretation is an order of magnitude slower
//! than native execution, per-branch profiling multiplies that, cached
//! traces run slightly *faster* than native (straightened layout, partial
//! redundancy removal, fragment linking), and trace construction is
//! expensive enough that predictions must be re-used to amortize. The
//! defaults below encode those magnitudes; the ablation bench
//! (`ablation_cost`) sweeps them to show the Figure 5 shape is robust.

/// Cycle costs for every operation class the engine charges.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct CostModel {
    /// Cycles per instruction executed natively (the baseline; 1.0).
    pub native_per_inst: f64,
    /// Cycles per instruction interpreted (Dynamo's interpreter loop).
    pub interp_per_inst: f64,
    /// Cycles per instruction executed inside a cached fragment (< native:
    /// trace layout + lightweight optimization).
    pub trace_per_inst: f64,
    /// NET profiling: one counter lookup+increment per arrival at a
    /// backward-taken-branch target.
    pub counter_op: f64,
    /// Path-profile profiling: one history-register shift per control
    /// transfer on an interpreted path.
    pub shift_op: f64,
    /// Path-profile profiling: one path-table update per completed
    /// interpreted path — hashing a multi-word signature, probing, and
    /// occasionally growing the table; the expensive operation the paper's
    /// overhead argument centers on.
    pub table_op: f64,
    /// Fragment construction: fixed cost per fragment (allocation, stubs).
    pub build_fixed: f64,
    /// Fragment construction: per recorded instruction (copy + optimize +
    /// emit).
    pub build_per_inst: f64,
    /// Context switch into the fragment cache.
    pub cache_entry: f64,
    /// Context switch out of the fragment cache at a fragment's end.
    pub cache_exit: f64,
    /// Extra penalty when execution diverges from a fragment mid-way
    /// (exit through a stub).
    pub early_exit: f64,
    /// Fragment-to-fragment transition through a direct link (replaces
    /// exit + entry). Not free — every hop off a straightened trace gives
    /// up layout locality — except a fragment looping back to its own head,
    /// which is just the trace's own loop-closing branch.
    pub link_transfer: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            native_per_inst: 1.0,
            interp_per_inst: 12.0,
            trace_per_inst: 0.80,
            counter_op: 4.0,
            shift_op: 6.0,
            table_op: 400.0,
            build_fixed: 400.0,
            build_per_inst: 60.0,
            cache_entry: 12.0,
            cache_exit: 15.0,
            early_exit: 30.0,
            link_transfer: 0.5,
        }
    }
}

impl CostModel {
    /// The default model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Transition cycles of one batched trace excursion reported by the
    /// linked backend: one cache entry, one link transfer per
    /// trace-to-trace hop (including a trace's own patched loop-closing
    /// branch), and either the early-exit penalty (a guard failed) or a
    /// regular cache exit.
    ///
    /// This is where the abstract model meets real counts: the simulated
    /// [`Engine`](crate::Engine) charges these classes per *simulated*
    /// transition, while
    /// [`LinkedEngine`](crate::LinkedEngine) charges them from the link
    /// and guard counters the VM's trace backend actually measured.
    pub fn excursion_transitions(&self, links: u64, guard_failed: bool) -> f64 {
        self.cache_entry
            + self.link_transfer * links as f64
            + if guard_failed {
                self.early_exit
            } else {
                self.cache_exit
            }
    }
}

/// Where the cycles of a Dynamo run went.
#[derive(Clone, Copy, Default, PartialEq, Debug)]
pub struct CycleBreakdown {
    /// Interpreted instructions.
    pub interp: f64,
    /// Instructions executed in the fragment cache.
    pub trace: f64,
    /// Instructions executed natively after a bail-out.
    pub native: f64,
    /// Profiling operations (counters, shifts, table updates).
    pub profiling: f64,
    /// Fragment construction.
    pub build: f64,
    /// Cache entries, exits, early exits, and link transfers.
    pub transitions: f64,
}

impl CycleBreakdown {
    /// Total cycles.
    pub fn total(&self) -> f64 {
        self.interp + self.trace + self.native + self.profiling + self.build + self.transitions
    }

    /// Overhead cycles (everything but useful instruction execution).
    pub fn overhead(&self) -> f64 {
        self.profiling + self.build + self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_encode_the_papers_magnitudes() {
        let c = CostModel::default();
        assert!(c.interp_per_inst >= 8.0 * c.native_per_inst);
        assert!(c.trace_per_inst < c.native_per_inst);
        assert!(c.table_op > c.counter_op);
        assert!(c.build_per_inst > c.interp_per_inst);
        assert!(c.link_transfer < c.cache_entry);
        assert!(c.link_transfer >= 0.0);
    }

    #[test]
    fn excursion_transitions_match_their_parts() {
        let c = CostModel::default();
        // No links, clean exit: entry + exit.
        assert!((c.excursion_transitions(0, false) - (c.cache_entry + c.cache_exit)).abs() < 1e-12);
        // Three links, guard failure: entry + 3 transfers + early exit.
        let got = c.excursion_transitions(3, true);
        let want = c.cache_entry + 3.0 * c.link_transfer + c.early_exit;
        assert!((got - want).abs() < 1e-12);
    }

    #[test]
    fn breakdown_totals() {
        let b = CycleBreakdown {
            interp: 1.0,
            trace: 2.0,
            native: 3.0,
            profiling: 4.0,
            build: 5.0,
            transitions: 6.0,
        };
        assert!((b.total() - 21.0).abs() < 1e-12);
        assert!((b.overhead() - 15.0).abs() < 1e-12);
    }
}
