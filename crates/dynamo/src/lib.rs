//! A Dynamo-style dynamic optimizer simulation (paper §6).
//!
//! Dynamo interprets a native binary, profiles it with a hot-path
//! prediction scheme, and compiles predicted paths into a software
//! *fragment cache* where they run faster than native thanks to trace
//! straightening and linking. The performance question of Figure 5 —
//! NET vs. path-profile based prediction inside such a system — is about
//! *relative* costs: cycles spent interpreting, profiling, and building
//! traces against cycles saved by cached execution.
//!
//! This crate reproduces that system over the `hotpath-vm` event stream
//! with an explicit [`CostModel`] measured in abstract machine cycles:
//!
//! * [`Engine`] — the optimizer: interprets (charging interpretation and
//!   per-scheme profiling costs), predicts hot paths with a
//!   [`NetPredictor`](hotpath_core::NetPredictor) or
//!   [`PathProfilePredictor`](hotpath_core::PathProfilePredictor), records
//!   them into [`FragmentCache`] fragments, executes matching paths from
//!   the cache (cheaper than native), pays entry/exit/divergence
//!   penalties, links fragment-to-fragment transitions, installs
//!   *secondary* fragments for sibling paths of retired NET heads (Dynamo's
//!   exit-stub trace heads), detects phase changes by prediction-rate
//!   spikes and flushes ([`FlushPolicy`]), and bails out to native
//!   execution when the cache churns without reuse (as Dynamo does on
//!   gcc/go);
//! * [`run_native`] / [`run_dynamo`] — the Figure 5 harness: speedup of
//!   Dynamo over native execution per scheme and prediction delay;
//! * [`LinkedEngine`] / [`run_dynamo_linked`] — the same selection policy
//!   driving the VM's *real* trace-execution backend
//!   ([`Vm::run_linked`](hotpath_vm::Vm::run_linked)): predicted paths are
//!   compiled into contiguous guarded traces, guard exits that reach other
//!   trace heads are patched into direct links, and whole superblock
//!   excursions execute with no per-block dispatch — bit-identical results
//!   at interpreter-beating wall-clock speed.
//!
//! # Example
//!
//! ```
//! use hotpath_dynamo::{run_dynamo, run_native, DynamoConfig, Scheme};
//! use hotpath_workloads::{build, Scale, WorkloadName};
//!
//! let w = build(WorkloadName::Compress, Scale::Smoke);
//! let native = run_native(&w.program)?;
//! let outcome = run_dynamo(&w.program, &DynamoConfig::new(Scheme::Net, 50))?;
//! assert!(outcome.cycles.total() > 0.0);
//! // Speedup is (native - dynamo) / dynamo, as a percentage.
//! let _ = outcome.speedup_percent(native);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cost;
mod degrade;
mod engine;
mod fragment;
mod linked;
mod phases;

pub use cost::{CostModel, CycleBreakdown};
pub use degrade::{DegradeConfig, LadderMode, LadderStep, Watchdog};
pub use engine::{
    run_dynamo, run_native, BailoutPolicy, DynamoConfig, DynamoOutcome, Engine, Scheme,
};
pub use fragment::{Fragment, FragmentCache, FragmentError, FragmentId};
pub use linked::{run_dynamo_linked, EngineWarmState, FragmentRecord, LinkedEngine, LinkedRun};
pub use phases::{FlushPolicy, SpikeDetector};
