//! The linked-trace Dynamo engine: profiling and policy identical to the
//! simulated [`Engine`](crate::Engine), execution real.
//!
//! [`Engine`](crate::Engine) *simulates* fragment-cache execution with the
//! cycle cost model: every block still flows through the interpreter's
//! per-block dispatch and observer call, which is why the `dynamo` bench
//! mode cannot beat `native` in wall-clock terms. [`LinkedEngine`] drives
//! [`Vm::run_linked`] instead: when the predictor fires, the engine
//! commands the VM to compile the predicted path into a contiguous trace,
//! and subsequent arrivals at the head execute the whole superblock with
//! no per-block dispatch and no per-block observer call — one batched
//! [`TraceExcursion`] per entry. Guard exits whose targets head other
//! traces are patched into direct links, so hot loop nests run
//! trace→trace (Dynamo's fragment linking); a cache flush severs every
//! link.
//!
//! Trace selection mirrors the simulated engine: NET or path-profile
//! prediction over interpreted paths installs primary fragments, and
//! guard-fail exits are counted per target exactly like Dynamo's exit
//! stubs — at τ arrivals the target is *armed* and the next interpreted
//! path from it installs as a tail fragment, which linking then stitches
//! to its parent. The cycle model is charged from the real counts the
//! trace backend reports ([`CostModel::excursion_transitions`]), so the
//! simulated and executed backends can be cross-checked.
//!
//! [`CostModel::excursion_transitions`]: crate::CostModel::excursion_transitions

use std::collections::VecDeque;

use hotpath_core::HotPathPredictor;
use hotpath_ir::dense::CounterTable;
use hotpath_ir::Program;
use hotpath_profiles::{PathExecution, PathExtractor};
use hotpath_telemetry as telemetry;
use hotpath_vm::{
    BlockEvent, ExecutionObserver, RunStats, TraceCommand, TraceController, TraceExcursion,
    TraceExitReason, TransferKind, Vm, VmError,
};

use crate::cost::CycleBreakdown;
use crate::degrade::{LadderMode, LadderStep, Watchdog};
use crate::engine::{DynamoConfig, DynamoOutcome, LastSink, Predictor};
use crate::fragment::FragmentCache;
use crate::phases::{FlushPolicy, SpikeDetector};

/// Result of one linked-trace Dynamo run.
#[derive(Clone, Debug)]
pub struct LinkedRun {
    /// Engine-side outcome: cycle breakdown, fragments, flushes, paths.
    pub outcome: DynamoOutcome,
    /// The VM's run statistics — bit-identical to a plain interpreted run
    /// of the same program.
    pub stats: RunStats,
}

/// One installed fragment in exportable form: its block sequence and
/// instruction count — everything needed to re-install it after a restart.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FragmentRecord {
    /// Global block ids, head first.
    pub blocks: Vec<u32>,
    /// Straight-line instructions covered by the fragment.
    pub insts: u32,
}

/// Engine-side warm state extracted for persistence: what a restarted
/// engine needs to skip the τ-warm-up phase.
///
/// This is policy state, not execution state — restoring it (or not)
/// never changes a run's `RunStats`, memory, or globals, only how soon
/// traces execute again. Arrival statistics (fragment entry/completion
/// counts, cycle charges, path totals) restart at zero: they describe the
/// process that ran, not the knowledge worth carrying across a restart.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct EngineWarmState {
    /// Installed fragments, in install order.
    pub fragments: Vec<FragmentRecord>,
    /// Exit-stub arrival counters: (guard-fail target, arrivals).
    pub exit_counts: Vec<(u32, u64)>,
    /// Targets whose stub counter already reached τ.
    pub armed: Vec<u32>,
    /// NET per-head counters (empty for the path-profile scheme, whose
    /// table-based state is rebuilt by observation instead).
    pub net_counters: Vec<(u32, u64)>,
}

impl EngineWarmState {
    /// True when there is nothing to import: no fragments, counters, or
    /// armed targets.
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
            && self.exit_counts.is_empty()
            && self.armed.is_empty()
            && self.net_counters.is_empty()
    }

    /// Checks the warm state against a program's block-id space before it
    /// is imported into a live engine. Snapshots exported by the same
    /// program always pass; the check exists for state that arrives from
    /// elsewhere — a cross-session profile store, a snapshot taken on a
    /// different build — where a dangling block id would otherwise panic
    /// the install path or, worse, silently install a trace for the wrong
    /// blocks. Warm state is policy only, so rejecting it is always safe:
    /// the session just starts cold.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation:
    /// an empty fragment, or any block/target/head id at or beyond
    /// `block_limit`.
    pub fn validate(&self, block_limit: u32) -> Result<(), String> {
        for fragment in &self.fragments {
            if fragment.blocks.is_empty() {
                return Err("warm state carries a fragment with no blocks".into());
            }
            for &b in &fragment.blocks {
                if b >= block_limit {
                    return Err(format!(
                        "fragment block {b} outside the program's {block_limit}-block space"
                    ));
                }
            }
        }
        for &(target, _) in &self.exit_counts {
            if target >= block_limit {
                return Err(format!(
                    "exit-stub target {target} outside the program's {block_limit}-block space"
                ));
            }
        }
        for &target in &self.armed {
            if target >= block_limit {
                return Err(format!(
                    "armed target {target} outside the program's {block_limit}-block space"
                ));
            }
        }
        for &(head, _) in &self.net_counters {
            if head >= block_limit {
                return Err(format!(
                    "NET counter head {head} outside the program's {block_limit}-block space"
                ));
            }
        }
        Ok(())
    }
}

/// The Dynamo engine for [`Vm::run_linked`]: observes interpreted blocks,
/// receives batched trace excursions, and feeds install/flush commands
/// back to the VM's trace backend.
#[derive(Debug)]
pub struct LinkedEngine {
    config: DynamoConfig,
    predictor: Predictor,
    extractor: PathExtractor<LastSink>,
    /// Engine-side mirror of the VM's trace cache: idempotent installs,
    /// sibling bookkeeping, capacity policy, outcome statistics.
    mirror: FragmentCache,
    /// Commands awaiting the VM's next poll.
    pending: VecDeque<TraceCommand>,
    cycles: CycleBreakdown,
    detector: Option<SpikeDetector>,
    /// Exit-stub counters: arrivals per guard-fail target (Dynamo counts
    /// arrivals through unlinked exit stubs the same way).
    exit_counts: CounterTable,
    /// Guard-fail targets whose stub counter reached τ: the next completed
    /// interpreted path starting there installs as a tail fragment.
    armed: Vec<u32>,
    /// Paths that already have a fragment (indexed by PathId).
    cached_paths: Vec<bool>,
    /// Degradation-ladder health monitor; `None` when the ladder is off.
    watchdog: Option<Watchdog>,
    /// Blocks of the interpreted path currently being accumulated.
    cur_blocks: Vec<u32>,
    cur_insts: u32,
    /// Set after every excursion: the next interpreted block restarts path
    /// extraction (the pre-excursion path tail ran in trace-land,
    /// unobserved, so it cannot be completed honestly).
    resume_pending: bool,
    bailed: bool,
    spike_flushes: u64,
    paths_completed: u64,
    blocks_total: u64,
    blocks_cached: u64,
    insts_total: u64,
    guard_execs: u64,
}

impl LinkedEngine {
    /// Creates an engine.
    pub fn new(config: DynamoConfig) -> Self {
        let predictor = Predictor::for_scheme(config.scheme, config.delay);
        let detector = match config.flush {
            FlushPolicy::Never => None,
            FlushPolicy::OnSpike {
                window,
                factor,
                min_predictions,
            } => Some(SpikeDetector::new(window, factor, min_predictions)),
        };
        let cap = config.path_cap;
        let watchdog = config.degrade.map(Watchdog::new);
        LinkedEngine {
            config,
            predictor,
            extractor: PathExtractor::with_cap(LastSink::default(), cap),
            mirror: FragmentCache::new(),
            pending: VecDeque::new(),
            cycles: CycleBreakdown::default(),
            detector,
            exit_counts: CounterTable::new(),
            armed: Vec::new(),
            cached_paths: Vec::new(),
            watchdog,
            cur_blocks: Vec::with_capacity(64),
            cur_insts: 0,
            resume_pending: false,
            bailed: false,
            spike_flushes: 0,
            paths_completed: 0,
            blocks_total: 0,
            blocks_cached: 0,
            insts_total: 0,
            guard_execs: 0,
        }
    }

    /// The engine-side fragment cache (inspection).
    pub fn cache(&self) -> &FragmentCache {
        &self.mirror
    }

    /// True once the engine has bailed out.
    pub fn bailed_out(&self) -> bool {
        self.bailed
    }

    /// The degradation ladder's current rung. [`LadderMode::FullLinking`]
    /// when the ladder is disabled.
    pub fn mode(&self) -> LadderMode {
        self.watchdog
            .as_ref()
            .map_or(LadderMode::FullLinking, Watchdog::mode)
    }

    /// Completed interpreted paths observed so far.
    pub fn paths_completed(&self) -> u64 {
        self.paths_completed
    }

    /// The configuration the engine was built with.
    pub fn config(&self) -> &DynamoConfig {
        &self.config
    }

    /// Requests a full cache flush (engine mirror and, via the command
    /// queue, the VM's trace cache). A serving front-end uses this to
    /// evict a session's traces on demand; like any flush it affects
    /// speed only, never results.
    pub fn request_flush(&mut self) {
        self.flush("external");
    }

    /// Extracts the warm state worth persisting across a restart:
    /// installed fragments, exit-stub counters, armed targets, and NET
    /// head counters.
    pub fn export_warm_state(&self) -> EngineWarmState {
        let net_counters = match &self.predictor {
            Predictor::Net(p) => p.export_counters(),
            Predictor::PathProfile(_) => Vec::new(),
        };
        EngineWarmState {
            fragments: self
                .mirror
                .iter()
                .map(|(_, f)| FragmentRecord {
                    blocks: f.blocks().to_vec(),
                    insts: f.insts(),
                })
                .collect(),
            exit_counts: self
                .exit_counts
                .iter()
                .filter(|&(_, count)| count > 0)
                .collect(),
            armed: self.armed.clone(),
            net_counters,
        }
    }

    /// Re-installs warm state exported by
    /// [`LinkedEngine::export_warm_state`] into a fresh engine. Fragments
    /// re-enter through the normal install path, so the VM's trace cache
    /// is rebuilt by the queued [`TraceCommand::Install`]s the next time
    /// it polls. Path extraction restarts at the next observed block (as
    /// after an excursion), because the interrupted path's prefix was not
    /// carried across the restart.
    pub fn import_warm_state(&mut self, warm: &EngineWarmState) {
        for fragment in &warm.fragments {
            self.install(&fragment.blocks, fragment.insts.max(1));
        }
        for &(target, count) in &warm.exit_counts {
            *self.exit_counts.slot(target) = count;
        }
        for &target in &warm.armed {
            if !self.armed.contains(&target) {
                self.armed.push(target);
            }
        }
        if let Predictor::Net(p) = &mut self.predictor {
            p.import_counters(&warm.net_counters);
        }
        self.resume_pending = true;
    }

    fn interp_only(&self) -> bool {
        self.mode() == LadderMode::InterpOnly
    }

    /// Applies a watchdog decision: telemetry plus the commands that
    /// realize the new rung in the VM's trace cache.
    fn apply_step(&mut self, step: LadderStep) {
        match step {
            LadderStep::Down { from, to } => {
                telemetry::emit!(telemetry::Event::ModeDegraded {
                    from: from.as_str(),
                    to: to.as_str(),
                    at_path: self.paths_completed,
                });
                match to {
                    LadderMode::NoLink => {
                        self.pending.push_back(TraceCommand::SetLinking(false));
                    }
                    LadderMode::InterpOnly => self.flush("degrade"),
                    LadderMode::FullLinking => {}
                }
            }
            LadderStep::Up { from, to } => {
                telemetry::emit!(telemetry::Event::ModeRepromoted {
                    from: from.as_str(),
                    to: to.as_str(),
                    at_path: self.paths_completed,
                });
                if to == LadderMode::FullLinking {
                    self.pending.push_back(TraceCommand::SetLinking(true));
                }
            }
        }
    }

    /// Finalizes the run into an outcome.
    pub fn finish(self) -> DynamoOutcome {
        if telemetry::enabled() {
            for (target, count) in self.exit_counts.iter() {
                if count > 0 {
                    telemetry::emit!(telemetry::Event::ExitStubHotness { target, count });
                }
            }
        }
        // Ending at the ladder's bottom rung is reported as a bail-out:
        // the run finished without trace execution, the same observable
        // condition the wholesale bail-out reports.
        let degraded_out = self.mode() == LadderMode::InterpOnly;
        DynamoOutcome {
            cycles: self.cycles,
            fragments_installed: self.mirror.installs(),
            fragments_live: self.mirror.len(),
            flushes: self.mirror.flushes(),
            spike_flushes: self.spike_flushes,
            bailed_out: self.bailed || degraded_out,
            paths_completed: self.paths_completed,
            cached_block_fraction: if self.blocks_total == 0 {
                0.0
            } else {
                self.blocks_cached as f64 / self.blocks_total as f64
            },
            insts_executed: self.insts_total,
            guard_execs: self.guard_execs,
        }
    }

    fn is_cached_path(&self, exec: &PathExecution) -> bool {
        self.cached_paths
            .get(exec.path.index())
            .copied()
            .unwrap_or(false)
    }

    fn mark_cached(&mut self, exec: &PathExecution) {
        let i = exec.path.index();
        if i >= self.cached_paths.len() {
            self.cached_paths.resize(i + 1, false);
        }
        self.cached_paths[i] = true;
    }

    /// Installs a fragment in the mirror and, when it anchors a new head,
    /// commands the VM to compile it into a trace.
    fn install(&mut self, blocks: &[u32], insts: u32) {
        if self.interp_only() {
            // Bottom rung: no new traces until the watchdog re-promotes.
            return;
        }
        let Ok((id, new_head)) = self.mirror.install_anchoring(blocks, insts) else {
            // An unrecordable path (defensively: empty) is simply not
            // cached; the run continues interpreted.
            return;
        };
        if id.is_some() {
            self.cycles.build +=
                self.config.cost.build_fixed + self.config.cost.build_per_inst * insts as f64;
            telemetry::emit!(telemetry::Event::FragmentInstall {
                head: blocks[0],
                blocks: blocks.len() as u32,
                insts,
                installs: self.mirror.installs(),
                at_path: self.paths_completed,
            });
            if new_head {
                self.pending
                    .push_back(TraceCommand::Install(blocks.to_vec()));
            }
        }
    }

    fn flush(&mut self, kind: &'static str) {
        telemetry::emit!(telemetry::Event::CacheFlush {
            kind,
            evicted: self.mirror.len() as u64,
            at_path: self.paths_completed,
        });
        if kind != "degrade" {
            // The ladder's own flush must not count against the next
            // window's flush budget.
            if let Some(w) = &mut self.watchdog {
                w.observe_flush();
            }
        }
        self.mirror.flush();
        self.predictor.reset();
        self.cached_paths.clear();
        self.exit_counts.clear();
        self.armed.clear();
        self.pending.push_back(TraceCommand::Flush);
    }

    /// Profiles a completed, fully-interpreted path; installs on
    /// prediction. Identical charging to the simulated engine.
    fn observe_path(&mut self, exec: &PathExecution, blocks: &[u32], insts: u32) -> bool {
        let cost = self.config.cost;
        let predicted = match &mut self.predictor {
            Predictor::Net(p) => {
                if exec.start.is_net_countable() {
                    self.cycles.profiling += cost.counter_op;
                }
                p.observe(exec)
            }
            Predictor::PathProfile(p) => {
                self.cycles.profiling +=
                    cost.shift_op * exec.blocks.saturating_sub(1) as f64 + cost.table_op;
                p.observe(exec)
            }
        };
        if predicted.is_some() {
            self.install(blocks, insts);
            self.mark_cached(exec);
            return true;
        }
        false
    }

    fn on_completed_path(&mut self, exec: &PathExecution, blocks: &[u32], insts: u32) {
        self.paths_completed += 1;
        let mut was_prediction = false;
        if !self.is_cached_path(exec) {
            was_prediction = self.observe_path(exec, blocks, insts);
        }
        // Armed exit-stub targets: the first interpreted path from a hot
        // guard-fail target becomes the tail fragment Dynamo would record
        // from that exit stub.
        if !was_prediction {
            let head = exec.head.as_u32();
            if let Some(i) = self.armed.iter().position(|&h| h == head) {
                if blocks.first() == Some(&head) {
                    self.armed.swap_remove(i);
                    self.install(blocks, insts.max(1));
                    self.mark_cached(exec);
                    was_prediction = true;
                }
            }
        }
        if let Some(det) = &mut self.detector {
            if det.observe(was_prediction) {
                self.spike_flushes += 1;
                self.flush("spike");
            }
        }
        if self.mirror.len() > self.config.max_fragments {
            self.flush("capacity");
        }
        if self.watchdog.is_some() {
            // The ladder supersedes the wholesale bail-out: step down and
            // recover instead of abandoning the run.
            let step = self.watchdog.as_mut().and_then(Watchdog::observe_path);
            if let Some(s) = step {
                self.apply_step(s);
            }
            return;
        }
        if let Some(bp) = self.config.bailout {
            if self.paths_completed % bp.check_every_paths == 0
                && self.mirror.installs() > bp.max_installs
            {
                self.bailed = true;
                telemetry::emit!(telemetry::Event::Bailout {
                    at_path: self.paths_completed,
                    installs: self.mirror.installs(),
                });
                // Sever the VM's traces: the rest of the run executes as
                // plain (native-charged) interpretation.
                self.pending.push_back(TraceCommand::Flush);
            }
        }
    }
}

impl ExecutionObserver for LinkedEngine {
    fn on_block(&mut self, event: &BlockEvent) {
        let cost = self.config.cost;
        let size = event.block_size as f64;
        self.insts_total += event.block_size as u64;
        if self.bailed {
            self.cycles.native += size * cost.native_per_inst;
            return;
        }
        self.blocks_total += 1;

        // Path bookkeeping. After an excursion the open interpreted path
        // is stale (its tail ran in trace-land, unobserved): restart
        // extraction at the exit target by feeding a synthetic Start,
        // which the extractor begins without emitting the stale path.
        if self.resume_pending {
            self.resume_pending = false;
            self.cur_blocks.clear();
            self.cur_insts = 0;
            self.extractor.on_block(&BlockEvent {
                from: None,
                kind: TransferKind::Start,
                backward: false,
                ..*event
            });
        } else {
            self.extractor.on_block(event);
        }
        let completed = self.extractor.sink_mut().0.take();
        let mut finished: Option<(Vec<u32>, u32)> = None;
        if completed.is_some() {
            finished = Some((std::mem::take(&mut self.cur_blocks), self.cur_insts));
            self.cur_insts = 0;
        }
        self.cur_blocks.push(event.block.as_u32());
        self.cur_insts += event.block_size;

        if let (Some(exec), Some((blocks, insts))) = (completed, finished) {
            self.on_completed_path(&exec, &blocks, insts);
            if self.bailed {
                self.cycles.native += size * cost.native_per_inst;
                return;
            }
        }

        self.cycles.interp += size * cost.interp_per_inst;
    }

    fn on_halt(&mut self) {
        if self.bailed || self.resume_pending {
            // After a bail-out the run is native; after an excursion there
            // is no open interpreted path (the program halted in
            // trace-land).
            return;
        }
        self.extractor.on_halt();
        if self.extractor.sink_mut().0.take().is_some() {
            self.paths_completed += 1;
        }
    }
}

impl TraceController for LinkedEngine {
    fn on_trace_exit(&mut self, exc: &TraceExcursion) {
        let cost = self.config.cost;
        // Dynamo's second end-of-trace condition: recording from an armed
        // exit stub stops when it reaches an existing trace head. The
        // interpreted blocks accumulated since the last excursion are that
        // recording — this excursion starting is the trace head being hit —
        // so install them as the tail fragment; linking then stitches the
        // parent's guard exit straight into it.
        if let Some(&head) = self.cur_blocks.first() {
            if let Some(i) = self.armed.iter().position(|&h| h == head) {
                self.armed.swap_remove(i);
                let blocks = std::mem::take(&mut self.cur_blocks);
                let insts = self.cur_insts;
                self.install(&blocks, insts.max(1));
                // Capacity is enforced here as well as on completed paths:
                // once tails link the working set into a closed complex,
                // excursion exits may be the only safe points left — a
                // flush decided only at the next interpreted path would
                // never drain.
                if self.mirror.len() > self.config.max_fragments {
                    self.flush("capacity");
                }
            }
        }
        self.blocks_total += exc.blocks;
        self.blocks_cached += exc.blocks;
        self.insts_total += exc.insts;
        self.guard_execs += exc.guard_execs;
        self.cycles.trace += exc.insts as f64 * cost.trace_per_inst;
        let guard_failed = exc.reason == TraceExitReason::GuardFail;
        self.cycles.transitions += cost.excursion_transitions(exc.links, guard_failed);
        if guard_failed {
            // Exit-stub counting on the real exit: arrivals at the
            // off-trace target; at τ the target is armed and the next
            // interpreted path from it installs as a tail fragment.
            self.cycles.profiling += cost.counter_op;
            let target = exc.target.as_u32();
            let c = self.exit_counts.slot(target);
            *c += 1;
            if *c >= self.config.delay {
                *c = 0;
                if !self.armed.contains(&target) {
                    self.armed.push(target);
                }
            }
        }
        let step = self
            .watchdog
            .as_mut()
            .and_then(|w| w.observe_excursion(exc.entries, exc.guard_fails, exc.blocks));
        if let Some(s) = step {
            self.apply_step(s);
        }
        self.resume_pending = true;
    }

    fn poll_command(&mut self) -> Option<TraceCommand> {
        self.pending.pop_front()
    }
}

/// Runs `program` under the linked-trace Dynamo engine.
///
/// # Errors
///
/// Propagates VM failures.
pub fn run_dynamo_linked(program: &Program, config: &DynamoConfig) -> Result<LinkedRun, VmError> {
    let mut engine = LinkedEngine::new(config.clone());
    let stats = Vm::new(program)
        .with_opt_level(config.opt_level)
        .run_linked(&mut engine)?;
    Ok(LinkedRun {
        outcome: engine.finish(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_dynamo, Scheme};
    use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
    use hotpath_ir::CmpOp;
    use hotpath_vm::NullObserver;

    /// Tight single-path loop: the best case for trace caching.
    fn hot_loop(trip: i64) -> Program {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, trip);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.add_imm(i, i, 1);
        fb.add_imm(i, i, 0);
        fb.add_imm(i, i, 0);
        fb.add_imm(i, i, 0);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.finish().unwrap()
    }

    /// Loop alternating between two paths: exercises guard failures,
    /// exit-stub arming, tail fragments, and linking.
    fn two_path_loop(trip: i64) -> Program {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let odd = fb.new_block();
        let even = fb.new_block();
        let latch = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, trip);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let par = fb.reg();
        fb.and_imm(par, i, 1);
        fb.branch(par, odd, even);
        fb.switch_to(odd);
        fb.jump(latch);
        fb.switch_to(even);
        fb.jump(latch);
        fb.switch_to(latch);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.finish().unwrap()
    }

    #[test]
    fn linked_hot_loop_matches_interpreted_stats() {
        let p = hot_loop(100_000);
        let expect = Vm::new(&p).run(&mut NullObserver).unwrap();
        let run = run_dynamo_linked(&p, &DynamoConfig::new(Scheme::Net, 50)).unwrap();
        assert_eq!(run.stats, expect);
        assert!(run.outcome.fragments_installed >= 1);
        assert!(
            run.outcome.cached_block_fraction > 0.95,
            "cached fraction {}",
            run.outcome.cached_block_fraction
        );
    }

    #[test]
    fn guard_failures_arm_tail_fragments_and_link() {
        let p = two_path_loop(200_000);
        let expect = Vm::new(&p).run(&mut NullObserver).unwrap();
        let run = run_dynamo_linked(&p, &DynamoConfig::new(Scheme::Net, 50)).unwrap();
        assert_eq!(run.stats, expect);
        // The primary trace covers one parity; the other parity's guard
        // failure at the body branch arms its target, installing a tail
        // fragment that linking stitches back into the loop.
        assert!(
            run.outcome.fragments_installed >= 2,
            "installed {}",
            run.outcome.fragments_installed
        );
        assert!(
            run.outcome.cached_block_fraction > 0.9,
            "cached fraction {}",
            run.outcome.cached_block_fraction
        );
    }

    #[test]
    fn linked_outcome_agrees_with_simulated_engine_shape() {
        // The two backends share selection logic, so on a single-path
        // loop their fragment counts match and both spend most cycles in
        // trace-land.
        let p = hot_loop(100_000);
        let sim = run_dynamo(&p, &DynamoConfig::new(Scheme::Net, 50)).unwrap();
        let real = run_dynamo_linked(&p, &DynamoConfig::new(Scheme::Net, 50)).unwrap();
        assert_eq!(real.outcome.fragments_installed, sim.fragments_installed);
        assert!(real.outcome.cycles.trace > real.outcome.cycles.interp);
        assert!(sim.cycles.trace > sim.cycles.interp);
    }

    #[test]
    fn errors_propagate_identically() {
        // A program that divides by zero fails the same way under both
        // entry points.
        let mut fb = FunctionBuilder::new("main");
        let a = fb.imm(1);
        let b = fb.imm(0);
        fb.bin(hotpath_ir::BinOp::Div, a, a, b);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        let p = pb.finish().unwrap();
        let plain = Vm::new(&p).run(&mut NullObserver).unwrap_err();
        let linked = run_dynamo_linked(&p, &DynamoConfig::new(Scheme::Net, 50)).unwrap_err();
        assert_eq!(plain, linked);
    }
}
