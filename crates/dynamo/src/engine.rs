//! The Dynamo engine: interpret, profile, predict, record, cache, link,
//! flush, bail out.

use hotpath_core::{HotPathPredictor, NetPredictor, PathProfilePredictor};
use hotpath_ir::dense::CounterTable;
use hotpath_ir::Program;
use hotpath_profiles::{PathExecution, PathExtractor, PathSink, DEFAULT_PATH_CAP};
use hotpath_telemetry as telemetry;
use hotpath_vm::{BlockEvent, ExecutionObserver, Vm, VmError};

use crate::cost::{CostModel, CycleBreakdown};
use crate::fragment::{FragmentCache, FragmentId};
use crate::phases::{FlushPolicy, SpikeDetector};

/// A completed path's carry-over state: `(blocks, insts, touched_cache,
/// diverged, diverged_at)`.
type FinishedPath = (Vec<u32>, u32, bool, bool, Option<usize>);

/// Which prediction scheme drives the engine (the two bars of Figure 5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scheme {
    /// Next Executing Tail prediction.
    Net,
    /// Path-profile based prediction.
    PathProfile,
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scheme::Net => "NET",
            Scheme::PathProfile => "PathProfile",
        })
    }
}

/// When the engine gives up and falls back to native execution
/// (Dynamo's bail-out on gcc/go: "excessively high numbers of dynamic
/// paths and no dominant reuse").
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct BailoutPolicy {
    /// Evaluate the condition every this many completed paths.
    pub check_every_paths: u64,
    /// Bail once more fragments than this have been installed — the
    /// "excessively high numbers of dynamic paths" churn signal.
    pub max_installs: u64,
}

impl Default for BailoutPolicy {
    fn default() -> Self {
        BailoutPolicy {
            check_every_paths: 50_000,
            max_installs: 1_500,
        }
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct DynamoConfig {
    /// Prediction scheme.
    pub scheme: Scheme,
    /// Prediction delay τ (the paper runs 10, 50, 100).
    pub delay: u64,
    /// Cycle cost model.
    pub cost: CostModel,
    /// Fragment-count limit; exceeding it flushes the cache (Dynamo
    /// flushes when the cache fills).
    pub max_fragments: usize,
    /// Phase-change flush heuristic (§6.1).
    pub flush: FlushPolicy,
    /// Bail-out policy; `None` never bails.
    pub bailout: Option<BailoutPolicy>,
    /// Staged degradation ladder for the linked engine; `None` disables
    /// it. When set, the ladder supersedes `bailout` in
    /// [`LinkedEngine`](crate::LinkedEngine) (the simulated [`Engine`]
    /// ignores it — it has no linking to degrade).
    pub degrade: Option<crate::degrade::DegradeConfig>,
    /// Path length cap in blocks.
    pub path_cap: u32,
    /// Optimization level applied to traces at install time by the linked
    /// engine (the simulated [`Engine`] executes no traces and ignores
    /// it). Every level is bit-identical in observable results.
    pub opt_level: hotpath_vm::OptLevel,
}

impl DynamoConfig {
    /// A configuration with experiment defaults for `scheme` at delay τ.
    pub fn new(scheme: Scheme, delay: u64) -> Self {
        DynamoConfig {
            scheme,
            delay,
            cost: CostModel::default(),
            max_fragments: 8_192,
            flush: FlushPolicy::Never,
            bailout: Some(BailoutPolicy::default()),
            degrade: None,
            path_cap: DEFAULT_PATH_CAP,
            opt_level: hotpath_vm::OptLevel::None,
        }
    }

    /// Returns the configuration with `opt_level` set.
    pub fn with_opt_level(mut self, level: hotpath_vm::OptLevel) -> Self {
        self.opt_level = level;
        self
    }
}

/// Summary of one Dynamo run.
#[derive(Clone, Debug)]
pub struct DynamoOutcome {
    /// Where the cycles went.
    pub cycles: CycleBreakdown,
    /// Fragments installed over the run (across flushes).
    pub fragments_installed: u64,
    /// Live fragments at the end.
    pub fragments_live: usize,
    /// Cache flushes (capacity + phase).
    pub flushes: u64,
    /// Phase-spike flushes only.
    pub spike_flushes: u64,
    /// True if the engine bailed out to native execution.
    pub bailed_out: bool,
    /// Completed paths.
    pub paths_completed: u64,
    /// Fraction of blocks executed from the fragment cache.
    pub cached_block_fraction: f64,
    /// Total instruction slots executed.
    pub insts_executed: u64,
    /// Guard checks executed in trace-land (zero for the simulated
    /// engine, which runs no traces). The trace optimizer's target: fewer
    /// guards per cached block at higher [`OptLevel`]s.
    ///
    /// [`OptLevel`]: hotpath_vm::OptLevel
    pub guard_execs: u64,
}

impl DynamoOutcome {
    /// Speedup over native execution, in percent; negative is a slowdown.
    pub fn speedup_percent(&self, native_cycles: f64) -> f64 {
        (native_cycles / self.cycles.total() - 1.0) * 100.0
    }
}

/// Execution mode of the engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    /// Interpreting (profiled).
    Interp,
    /// Executing inside a fragment at the given position.
    Cached { frag: FragmentId, pos: usize },
    /// A fragment finished on the previous event; the next event decides
    /// between a linked transfer, an extension into a longer sibling, and
    /// a cache exit.
    FragmentEnd {
        /// The fragment that just completed.
        frag: FragmentId,
        /// Its length (the position the next block would extend at).
        pos: usize,
    },
}

/// Sink keeping only the most recent completed path.
#[derive(Default, Debug)]
pub(crate) struct LastSink(pub(crate) Option<PathExecution>);

impl PathSink for LastSink {
    fn on_path(&mut self, exec: &PathExecution) {
        debug_assert!(self.0.is_none(), "one completion per event");
        self.0 = Some(*exec);
    }
}

pub(crate) enum Predictor {
    Net(NetPredictor),
    PathProfile(PathProfilePredictor),
}

impl Predictor {
    /// The predictor for `scheme` at delay τ.
    pub(crate) fn for_scheme(scheme: Scheme, delay: u64) -> Self {
        match scheme {
            Scheme::Net => Predictor::Net(NetPredictor::new(delay)),
            Scheme::PathProfile => Predictor::PathProfile(PathProfilePredictor::new(delay)),
        }
    }

    /// Clears all counters (on a cache flush).
    pub(crate) fn reset(&mut self) {
        match self {
            Predictor::Net(p) => p.reset(),
            Predictor::PathProfile(p) => p.reset(),
        }
    }
}

impl std::fmt::Debug for Predictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predictor::Net(_) => f.write_str("Predictor::Net"),
            Predictor::PathProfile(_) => f.write_str("Predictor::PathProfile"),
        }
    }
}

/// The Dynamo engine; drive it as the observer of a [`Vm`] run, then call
/// [`Engine::finish`].
#[derive(Debug)]
pub struct Engine {
    config: DynamoConfig,
    predictor: Predictor,
    extractor: PathExtractor<LastSink>,
    cache: FragmentCache,
    cycles: CycleBreakdown,
    mode: Mode,
    detector: Option<SpikeDetector>,
    /// Blocks of the path currently being executed.
    cur_blocks: Vec<u32>,
    cur_insts: u32,
    /// True if any block of the current path ran from the cache.
    cur_touched_cache: bool,
    /// True if the current path entered a fragment and exited early
    /// (through an exit stub) — the situation Dynamo's secondary trace
    /// heads exist for.
    cur_diverged: bool,
    /// Where the current path diverged from its fragment: the block index
    /// of the first off-trace block (tail fragments start there).
    cur_diverged_at: Option<usize>,
    /// Exit-stub counters: per exit-target block, arrivals through an
    /// unlinked stub. At τ the tail from that block becomes a fragment —
    /// Dynamo's "exits from existing traces are potential trace heads".
    exit_counts: CounterTable,
    /// Paths that already have a fragment (indexed by PathId).
    cached_paths: Vec<bool>,
    bailed: bool,
    spike_flushes: u64,
    paths_completed: u64,
    blocks_total: u64,
    blocks_cached: u64,
    insts_total: u64,
    started: bool,
}

impl Engine {
    /// Creates an engine.
    pub fn new(config: DynamoConfig) -> Self {
        let predictor = Predictor::for_scheme(config.scheme, config.delay);
        let detector = match config.flush {
            FlushPolicy::Never => None,
            FlushPolicy::OnSpike {
                window,
                factor,
                min_predictions,
            } => Some(SpikeDetector::new(window, factor, min_predictions)),
        };
        let cap = config.path_cap;
        Engine {
            config,
            predictor,
            extractor: PathExtractor::with_cap(LastSink::default(), cap),
            cache: FragmentCache::new(),
            cycles: CycleBreakdown::default(),
            mode: Mode::Interp,
            detector,
            cur_blocks: Vec::with_capacity(64),
            cur_insts: 0,
            cur_touched_cache: false,
            cur_diverged: false,
            cur_diverged_at: None,
            exit_counts: CounterTable::new(),
            cached_paths: Vec::new(),
            bailed: false,
            spike_flushes: 0,
            paths_completed: 0,
            blocks_total: 0,
            blocks_cached: 0,
            insts_total: 0,
            started: false,
        }
    }

    /// The fragment cache (inspection).
    pub fn cache(&self) -> &FragmentCache {
        &self.cache
    }

    /// True once the engine has bailed out.
    pub fn bailed_out(&self) -> bool {
        self.bailed
    }

    /// Finalizes the run into an outcome.
    pub fn finish(self) -> DynamoOutcome {
        if telemetry::enabled() {
            for (target, count) in self.exit_counts.iter() {
                if count > 0 {
                    telemetry::emit!(telemetry::Event::ExitStubHotness { target, count });
                }
            }
        }
        DynamoOutcome {
            cycles: self.cycles,
            fragments_installed: self.cache.installs(),
            fragments_live: self.cache.len(),
            flushes: self.cache.flushes(),
            spike_flushes: self.spike_flushes,
            bailed_out: self.bailed,
            paths_completed: self.paths_completed,
            cached_block_fraction: if self.blocks_total == 0 {
                0.0
            } else {
                self.blocks_cached as f64 / self.blocks_total as f64
            },
            insts_executed: self.insts_total,
            guard_execs: 0,
        }
    }

    fn is_cached_path(&self, exec: &PathExecution) -> bool {
        self.cached_paths
            .get(exec.path.index())
            .copied()
            .unwrap_or(false)
    }

    fn mark_cached(&mut self, exec: &PathExecution) {
        let i = exec.path.index();
        if i >= self.cached_paths.len() {
            self.cached_paths.resize(i + 1, false);
        }
        self.cached_paths[i] = true;
    }

    fn install_fragment(&mut self, blocks: &[u32], insts: u32) {
        if matches!(self.cache.install(blocks, insts), Ok(Some(_))) {
            self.cycles.build +=
                self.config.cost.build_fixed + self.config.cost.build_per_inst * insts as f64;
            telemetry::emit!(telemetry::Event::FragmentInstall {
                head: blocks[0],
                blocks: blocks.len() as u32,
                insts,
                installs: self.cache.installs(),
                at_path: self.paths_completed,
            });
        }
    }

    fn flush(&mut self, kind: &'static str) {
        telemetry::emit!(telemetry::Event::CacheFlush {
            kind,
            evicted: self.cache.len() as u64,
            at_path: self.paths_completed,
        });
        self.cache.flush();
        self.predictor.reset();
        self.cached_paths.clear();
        self.exit_counts.clear();
        self.mode = Mode::Interp;
    }

    /// Handles a completed, fully-interpreted path: profile, predict,
    /// install.
    fn on_interpreted_path(&mut self, exec: &PathExecution, blocks: &[u32], insts: u32) -> bool {
        let cost = self.config.cost;
        let predicted = match &mut self.predictor {
            Predictor::Net(p) => {
                if exec.start.is_net_countable() {
                    self.cycles.profiling += cost.counter_op;
                }
                p.observe(exec)
            }
            Predictor::PathProfile(p) => {
                self.cycles.profiling +=
                    cost.shift_op * exec.blocks.saturating_sub(1) as f64 + cost.table_op;
                p.observe(exec)
            }
        };
        if predicted.is_some() {
            self.install_fragment(blocks, insts);
            self.mark_cached(exec);
            return true;
        }
        false
    }
}

impl ExecutionObserver for Engine {
    fn on_block(&mut self, event: &BlockEvent) {
        let cost = self.config.cost;
        let size = event.block_size as f64;
        self.insts_total += event.block_size as u64;
        if self.bailed {
            self.cycles.native += size * cost.native_per_inst;
            return;
        }
        self.blocks_total += 1;
        let first = !self.started;
        self.started = true;

        // ---- 1. path bookkeeping --------------------------------------
        self.extractor.on_block(event);
        let completed = self.extractor.sink_mut().0.take();
        let path_started = completed.is_some() || first;
        let mut finished: Option<FinishedPath> = None;
        if completed.is_some() {
            finished = Some((
                std::mem::take(&mut self.cur_blocks),
                self.cur_insts,
                self.cur_touched_cache,
                self.cur_diverged,
                self.cur_diverged_at,
            ));
            self.cur_insts = 0;
            self.cur_touched_cache = false;
            self.cur_diverged = false;
            self.cur_diverged_at = None;
        }
        self.cur_blocks.push(event.block.as_u32());
        self.cur_insts += event.block_size;

        // ---- 2. prediction / flush / bail-out on completion ------------
        if let (Some(exec), Some((blocks, insts, touched, diverged, diverged_at))) =
            (completed, finished.as_ref())
        {
            self.paths_completed += 1;
            let mut was_prediction = false;
            // A path is observable if it ran interpreted, or if it entered
            // a fragment at its head and exited early — sibling paths
            // always look like that, and they are exactly what Dynamo's
            // exit-stub trace selection (and the path-profile scheme's own
            // counters) must keep seeing.
            if (!touched || *diverged) && !self.is_cached_path(&exec) {
                was_prediction = self.on_interpreted_path(&exec, blocks, *insts);
            }
            // Exit-stub trace heads: count arrivals at the off-trace block
            // of a divergence; at τ the executed tail from that block
            // becomes its own fragment, so the stub can be patched.
            if !was_prediction {
                if let Some(at) = diverged_at {
                    if *at < blocks.len() {
                        let target = blocks[*at];
                        self.cycles.profiling += cost.counter_op;
                        let c = self.exit_counts.slot(target);
                        *c += 1;
                        if *c >= self.config.delay {
                            *c = 0;
                            let tail = &blocks[*at..];
                            // Instruction count of the tail is approximated
                            // proportionally; exact per-block sizes are not
                            // retained.
                            let tail_insts = (*insts as u64 * tail.len() as u64
                                / blocks.len().max(1) as u64)
                                as u32;
                            self.install_fragment(tail, tail_insts.max(1));
                            was_prediction = true;
                        }
                    }
                }
            }
            if let Some(det) = &mut self.detector {
                if det.observe(was_prediction) {
                    self.spike_flushes += 1;
                    self.flush("spike");
                }
            }
            if self.cache.len() > self.config.max_fragments {
                self.flush("capacity");
            }
            if let Some(bp) = self.config.bailout {
                if self.paths_completed % bp.check_every_paths == 0
                    && self.cache.installs() > bp.max_installs
                {
                    self.bailed = true;
                    telemetry::emit!(telemetry::Event::Bailout {
                        at_path: self.paths_completed,
                        installs: self.cache.installs(),
                    });
                    self.cycles.native += size * cost.native_per_inst;
                    return;
                }
            }
        }

        // ---- 3. execution-mode simulation ------------------------------
        match self.mode {
            Mode::Cached { frag, pos } => {
                let matches = match self.cache.fragment(frag) {
                    Ok(f) => pos < f.len() && f.blocks()[pos] == event.block.as_u32(),
                    Err(_) => false,
                };
                if matches {
                    self.cycles.trace += size * cost.trace_per_inst;
                    self.blocks_cached += 1;
                    self.cur_touched_cache = true;
                    let done = self
                        .cache
                        .fragment(frag)
                        .map_or(true, |f| pos + 1 == f.len());
                    if done {
                        self.cache.note_completion(frag);
                        self.mode = Mode::FragmentEnd { frag, pos: pos + 1 };
                    } else {
                        self.mode = Mode::Cached { frag, pos: pos + 1 };
                    }
                    return;
                }
                // Divergence: try a linked sibling fragment first.
                if let Some(sib) = self.cache.divert(frag, pos, event.block.as_u32()) {
                    self.cycles.transitions += cost.link_transfer;
                    telemetry::emit!(telemetry::Event::Transition {
                        kind: "link_sibling",
                        at_block: self.blocks_total,
                    });
                    self.cache.note_entry(sib);
                    self.cycles.trace += size * cost.trace_per_inst;
                    self.blocks_cached += 1;
                    self.cur_touched_cache = true;
                    let done = self
                        .cache
                        .fragment(sib)
                        .map_or(true, |f| pos + 1 == f.len());
                    self.mode = if done {
                        self.cache.note_completion(sib);
                        Mode::FragmentEnd {
                            frag: sib,
                            pos: pos + 1,
                        }
                    } else {
                        Mode::Cached {
                            frag: sib,
                            pos: pos + 1,
                        }
                    };
                    return;
                }
                // A patched stub may jump straight into a tail fragment
                // starting at the off-trace block.
                if let Some(tf) = self.cache.entry_for(event.block) {
                    self.cycles.transitions += cost.link_transfer;
                    telemetry::emit!(telemetry::Event::Transition {
                        kind: "link_stub",
                        at_block: self.blocks_total,
                    });
                    self.cache.note_entry(tf);
                    self.cycles.trace += size * cost.trace_per_inst;
                    self.blocks_cached += 1;
                    self.cur_touched_cache = true;
                    self.mode = if self.cache.fragment(tf).map_or(true, |f| f.len() == 1) {
                        self.cache.note_completion(tf);
                        Mode::FragmentEnd { frag: tf, pos: 1 }
                    } else {
                        Mode::Cached { frag: tf, pos: 1 }
                    };
                    return;
                }
                // Exit through an unlinked stub; the block is handled
                // below and the exit target is counted at completion. The
                // off-trace block is the one just pushed onto the current
                // path.
                self.cycles.transitions += cost.early_exit;
                telemetry::emit!(telemetry::Event::Transition {
                    kind: "early_exit",
                    at_block: self.blocks_total,
                });
                self.cur_diverged = true;
                self.cur_diverged_at = Some(self.cur_blocks.len() - 1);
                self.mode = Mode::Interp;
            }
            Mode::FragmentEnd { frag, pos } => {
                if path_started {
                    if let Some(next) = self.cache.entry_for(event.block) {
                        // Fragment linking: direct transfer, no context
                        // switch; a fragment looping back to itself is the
                        // trace's own backward branch and costs nothing.
                        if next != frag {
                            self.cycles.transitions += cost.link_transfer;
                            telemetry::emit!(telemetry::Event::Transition {
                                kind: "link_next",
                                at_block: self.blocks_total,
                            });
                        }
                        self.cache.note_entry(next);
                        self.cycles.trace += size * cost.trace_per_inst;
                        self.blocks_cached += 1;
                        self.cur_touched_cache = true;
                        self.mode = if self.cache.fragment(next).map_or(true, |f| f.len() == 1) {
                            self.cache.note_completion(next);
                            Mode::FragmentEnd { frag: next, pos: 1 }
                        } else {
                            Mode::Cached { frag: next, pos: 1 }
                        };
                        return;
                    }
                } else if let Some(ext) = self.cache.divert(frag, pos, event.block.as_u32()) {
                    // The current path extends past this fragment's end; a
                    // longer sibling continues with the next block.
                    self.cycles.transitions += cost.link_transfer;
                    telemetry::emit!(telemetry::Event::Transition {
                        kind: "link_extend",
                        at_block: self.blocks_total,
                    });
                    self.cache.note_entry(ext);
                    self.cycles.trace += size * cost.trace_per_inst;
                    self.blocks_cached += 1;
                    self.cur_touched_cache = true;
                    self.mode = if self
                        .cache
                        .fragment(ext)
                        .map_or(true, |f| f.len() == pos + 1)
                    {
                        self.cache.note_completion(ext);
                        Mode::FragmentEnd {
                            frag: ext,
                            pos: pos + 1,
                        }
                    } else {
                        Mode::Cached {
                            frag: ext,
                            pos: pos + 1,
                        }
                    };
                    return;
                } else {
                    // The path runs off the cached prefix: an exit stub —
                    // observable, so a longer fragment (or a tail fragment
                    // at this block) can be selected.
                    self.cur_diverged = true;
                    self.cur_diverged_at = Some(self.cur_blocks.len() - 1);
                }
                self.cycles.transitions += cost.cache_exit;
                telemetry::emit!(telemetry::Event::Transition {
                    kind: "cache_exit",
                    at_block: self.blocks_total,
                });
                self.mode = Mode::Interp;
            }
            Mode::Interp => {}
        }

        // ---- 4. interpreted execution of this block --------------------
        if path_started {
            if let Some(fid) = self.cache.entry_for(event.block) {
                self.cycles.transitions += cost.cache_entry;
                telemetry::emit!(telemetry::Event::Transition {
                    kind: "cache_enter",
                    at_block: self.blocks_total,
                });
                self.cache.note_entry(fid);
                self.cycles.trace += size * cost.trace_per_inst;
                self.blocks_cached += 1;
                self.cur_touched_cache = true;
                self.mode = if self.cache.fragment(fid).map_or(true, |f| f.len() == 1) {
                    self.cache.note_completion(fid);
                    Mode::FragmentEnd { frag: fid, pos: 1 }
                } else {
                    Mode::Cached { frag: fid, pos: 1 }
                };
                return;
            }
        }
        self.cycles.interp += size * cost.interp_per_inst;
    }

    fn on_halt(&mut self) {
        if self.bailed {
            return;
        }
        self.extractor.on_halt();
        if self.extractor.sink_mut().0.take().is_some() {
            self.paths_completed += 1;
        }
    }
}

/// Cycles for a plain native run of `program` (the Figure 5 baseline).
///
/// # Errors
///
/// Propagates VM failures.
pub fn run_native(program: &Program) -> Result<f64, VmError> {
    let mut counter = hotpath_vm::CountingObserver::default();
    let stats = Vm::new(program).run(&mut counter)?;
    Ok(stats.insts_executed as f64 * CostModel::default().native_per_inst)
}

/// Runs `program` under the Dynamo engine.
///
/// # Errors
///
/// Propagates VM failures.
pub fn run_dynamo(program: &Program, config: &DynamoConfig) -> Result<DynamoOutcome, VmError> {
    let mut engine = Engine::new(config.clone());
    Vm::new(program).run(&mut engine)?;
    Ok(engine.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
    use hotpath_ir::CmpOp;

    /// Tight single-path loop: the best case for trace caching.
    fn hot_loop(trip: i64) -> Program {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, trip);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.add_imm(i, i, 1);
        fb.add_imm(i, i, 0);
        fb.add_imm(i, i, 0);
        fb.add_imm(i, i, 0);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.finish().unwrap()
    }

    /// Loop alternating between two paths: exercises secondary traces and
    /// sibling linking.
    fn two_path_loop(trip: i64) -> Program {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let odd = fb.new_block();
        let even = fb.new_block();
        let latch = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, trip);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let par = fb.reg();
        fb.and_imm(par, i, 1);
        fb.branch(par, odd, even);
        fb.switch_to(odd);
        fb.jump(latch);
        fb.switch_to(even);
        fb.jump(latch);
        fb.switch_to(latch);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.finish().unwrap()
    }

    #[test]
    fn hot_loop_net_gets_a_speedup() {
        let p = hot_loop(200_000);
        let native = run_native(&p).unwrap();
        let out = run_dynamo(&p, &DynamoConfig::new(Scheme::Net, 50)).unwrap();
        assert!(!out.bailed_out);
        assert!(out.fragments_installed >= 1);
        assert!(
            out.cached_block_fraction > 0.95,
            "cached fraction {}",
            out.cached_block_fraction
        );
        let s = out.speedup_percent(native);
        assert!(s > 5.0, "speedup {s:.1}% should be clearly positive");
    }

    #[test]
    fn two_path_loop_caches_both_siblings() {
        let p = two_path_loop(200_000);
        let out = run_dynamo(&p, &DynamoConfig::new(Scheme::Net, 50)).unwrap();
        // Primary + secondary fragments for the two loop paths.
        assert!(
            out.fragments_installed >= 2,
            "installed {}",
            out.fragments_installed
        );
        assert!(
            out.cached_block_fraction > 0.9,
            "cached fraction {}",
            out.cached_block_fraction
        );
        let native = run_native(&p).unwrap();
        assert!(out.speedup_percent(native) > 0.0);
    }

    #[test]
    fn sibling_paths_both_reach_the_cache() {
        // NET's head counter resets after each prediction (exit-stub
        // counting), so the second loop path is installed after another
        // tau uncovered arrivals and steady state runs fully cached.
        let p = two_path_loop(200_000);
        let out = run_dynamo(&p, &DynamoConfig::new(Scheme::Net, 50)).unwrap();
        assert!(out.fragments_installed >= 2);
        assert!(out.cached_block_fraction > 0.95);
    }

    #[test]
    fn path_profile_pays_more_profiling_overhead() {
        let p = two_path_loop(100_000);
        let net = run_dynamo(&p, &DynamoConfig::new(Scheme::Net, 50)).unwrap();
        let pp = run_dynamo(&p, &DynamoConfig::new(Scheme::PathProfile, 50)).unwrap();
        assert!(
            pp.cycles.profiling > net.cycles.profiling,
            "pp {} vs net {}",
            pp.cycles.profiling,
            net.cycles.profiling
        );
    }

    #[test]
    fn native_baseline_counts_instructions() {
        let p = hot_loop(1_000);
        let native = run_native(&p).unwrap();
        assert!(native > 1_000.0);
    }

    #[test]
    fn interp_only_when_cache_empty() {
        // With an absurd delay nothing is ever predicted: all interpreted.
        let p = hot_loop(5_000);
        let out = run_dynamo(&p, &DynamoConfig::new(Scheme::Net, u64::MAX)).unwrap();
        assert_eq!(out.fragments_installed, 0);
        assert_eq!(out.cached_block_fraction, 0.0);
        assert!(out.cycles.trace == 0.0);
        assert!(out.cycles.interp > 0.0);
        let native = run_native(&p).unwrap();
        assert!(out.speedup_percent(native) < -80.0, "pure interpretation");
    }

    /// Regression: a path that runs an entire fragment and then continues
    /// (the fragment is a strict prefix) must still reach full cache
    /// coverage via an exit-stub tail fragment — early builds interpreted
    /// such tails forever.
    #[test]
    fn prefix_fragment_grows_a_tail() {
        // A loop whose iterations alternate between a short path and a
        // long path sharing the short one as a prefix: the inner loop
        // usually runs one iteration (short), but every other outer
        // iteration runs two (the long variant).
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let j = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let inner_hdr = fb.new_block();
        let inner_body = fb.new_block();
        let exit_inner = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, 100_000);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.and_imm(j, i, 1);
        fb.add_imm(j, j, 1); // 1 or 2 inner trips
        fb.jump(inner_hdr);
        fb.switch_to(inner_hdr);
        let more = fb.cmp_imm(CmpOp::Gt, j, 0);
        fb.branch(more, inner_body, exit_inner);
        fb.switch_to(inner_body);
        fb.add_imm(j, j, -1);
        fb.jump(inner_hdr);
        fb.switch_to(exit_inner);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        let p = pb.finish().unwrap();

        let out = run_dynamo(&p, &DynamoConfig::new(Scheme::Net, 50)).unwrap();
        assert!(
            out.cached_block_fraction > 0.95,
            "tail fragments must cover the long variant: cached {}",
            out.cached_block_fraction
        );
        let native = run_native(&p).unwrap();
        assert!(out.speedup_percent(native) > 0.0);
    }

    /// Regression: mid-fragment divergence toward a block that heads a
    /// tail fragment must transfer into it (patched exit stub), not exit
    /// to the interpreter.
    #[test]
    fn divergence_enters_tail_fragments() {
        let p = two_path_loop(300_000);
        let out = run_dynamo(&p, &DynamoConfig::new(Scheme::Net, 50)).unwrap();
        // In steady state nearly everything runs cached; the transitions
        // bucket stays small relative to trace cycles (no perpetual
        // early-exit churn).
        assert!(
            out.cycles.transitions < out.cycles.trace * 0.2,
            "transitions {} vs trace {}",
            out.cycles.transitions,
            out.cycles.trace
        );
        assert!(out.cached_block_fraction > 0.95);
    }

    #[test]
    fn flush_policy_resets_cache() {
        let p = two_path_loop(50_000);
        let mut cfg = DynamoConfig::new(Scheme::Net, 10);
        // Tiny cache: constant capacity flushes.
        cfg.max_fragments = 1;
        let out = run_dynamo(&p, &cfg).unwrap();
        assert!(out.flushes >= 1);
    }
}
