//! The fragment (trace) cache.
//!
//! A *fragment* is the code-cache image of one predicted hot path: its
//! block sequence, straightened, with exit stubs at every off-path branch.
//! The cache maps path heads to their fragments; multiple fragments can
//! share a head (Dynamo's exit-stub trace heads create siblings) and
//! divergence can transfer between same-head fragments along their common
//! prefix, modeling linked exit stubs.

use std::fmt;

use hotpath_ir::BlockId;

/// Why a fragment-cache operation was refused.
///
/// The cache used to panic on these; a robust engine treats them as
/// recoverable — an install that fails simply leaves the path
/// interpreted, and a stale id (from before a flush) means the fragment
/// is gone, not that the process is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FragmentError {
    /// An install was given an empty block sequence; a fragment covers at
    /// least its head block.
    EmptyBlocks,
    /// A [`FragmentId`] from a previous cache generation (before a flush)
    /// was dereferenced.
    StaleId {
        /// The stale id.
        id: FragmentId,
        /// Live fragments in the current generation.
        live: usize,
    },
}

impl fmt::Display for FragmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FragmentError::EmptyBlocks => {
                f.write_str("fragment install with no blocks (a fragment covers at least one)")
            }
            FragmentError::StaleId { id, live } => write!(
                f,
                "stale fragment id {} (cache generation holds {} fragments)",
                id.index(),
                live
            ),
        }
    }
}

impl std::error::Error for FragmentError {}

/// Identifies a fragment in its [`FragmentCache`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FragmentId(u32);

impl FragmentId {
    /// Raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One cached trace.
#[derive(Clone, Debug)]
pub struct Fragment {
    blocks: Vec<u32>,
    insts: u32,
    entries: u64,
    completions: u64,
}

impl Fragment {
    /// The block sequence (global block ids) the fragment covers.
    pub fn blocks(&self) -> &[u32] {
        &self.blocks
    }

    /// The head block.
    pub fn head(&self) -> BlockId {
        BlockId::new(self.blocks[0])
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// A fragment always covers at least its head block.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total instruction slots across the fragment's blocks.
    pub fn insts(&self) -> u32 {
        self.insts
    }

    /// How many times execution entered this fragment.
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// How many times execution ran the fragment to its end.
    pub fn completions(&self) -> u64 {
        self.completions
    }
}

/// The software code cache: fragments indexed by head block.
#[derive(Clone, Default, Debug)]
pub struct FragmentCache {
    fragments: Vec<Fragment>,
    /// Fragment ids per head block, indexed densely by block id; an empty
    /// row means no fragment starts there.
    by_head: Vec<Vec<FragmentId>>,
    installs: u64,
    flushes: u64,
}

impl FragmentCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of live fragments.
    pub fn len(&self) -> usize {
        self.fragments.len()
    }

    /// True if the cache holds no fragments.
    pub fn is_empty(&self) -> bool {
        self.fragments.is_empty()
    }

    /// Total fragments ever installed (not reset by flushes).
    pub fn installs(&self) -> u64 {
        self.installs
    }

    /// Number of flushes performed.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Installs a fragment for a path's block sequence. Returns its id,
    /// or `Ok(None)` if an identical fragment is already cached
    /// (installation is idempotent).
    ///
    /// # Errors
    ///
    /// [`FragmentError::EmptyBlocks`] if `blocks` is empty.
    pub fn install(
        &mut self,
        blocks: &[u32],
        insts: u32,
    ) -> Result<Option<FragmentId>, FragmentError> {
        if blocks.is_empty() {
            return Err(FragmentError::EmptyBlocks);
        }
        let head = blocks[0] as usize;
        if head >= self.by_head.len() {
            self.by_head.resize_with(head + 1, Vec::new);
        }
        if self.by_head[head]
            .iter()
            .any(|&id| self.fragments[id.index()].blocks == blocks)
        {
            return Ok(None);
        }
        let id = FragmentId(self.fragments.len() as u32);
        self.fragments.push(Fragment {
            blocks: blocks.to_vec(),
            insts,
            entries: 0,
            completions: 0,
        });
        self.by_head[head].push(id);
        self.installs += 1;
        Ok(Some(id))
    }

    /// Installs like [`FragmentCache::install`], additionally reporting
    /// whether the head had no fragment before this call — i.e. whether
    /// the install anchored a brand-new trace head. A linked backend
    /// compiles exactly those fragments for direct execution; siblings
    /// share the primary's anchor and stay engine-side.
    ///
    /// # Errors
    ///
    /// [`FragmentError::EmptyBlocks`] if `blocks` is empty.
    pub fn install_anchoring(
        &mut self,
        blocks: &[u32],
        insts: u32,
    ) -> Result<(Option<FragmentId>, bool), FragmentError> {
        let new_head = !blocks
            .first()
            .is_some_and(|&h| self.has_head(BlockId::new(h)));
        Ok((self.install(blocks, insts)?, new_head))
    }

    /// The fragments starting at a head block, in install order.
    fn head_row(&self, head: u32) -> &[FragmentId] {
        self.by_head.get(head as usize).map_or(&[], Vec::as_slice)
    }

    /// The primary (first-installed) fragment for a head, if any.
    pub fn entry_for(&self, head: BlockId) -> Option<FragmentId> {
        self.head_row(head.as_u32()).first().copied()
    }

    /// True if any fragment starts at `head`.
    pub fn has_head(&self, head: BlockId) -> bool {
        !self.head_row(head.as_u32()).is_empty()
    }

    /// Fragment accessor.
    ///
    /// # Errors
    ///
    /// [`FragmentError::StaleId`] if `id` is not from this cache
    /// generation (the cache was flushed since `id` was handed out).
    pub fn fragment(&self, id: FragmentId) -> Result<&Fragment, FragmentError> {
        self.fragments
            .get(id.index())
            .ok_or(FragmentError::StaleId {
                id,
                live: self.fragments.len(),
            })
    }

    /// Records an entry into `id`; a stale id is ignored.
    pub fn note_entry(&mut self, id: FragmentId) {
        if let Some(f) = self.fragments.get_mut(id.index()) {
            f.entries += 1;
        }
    }

    /// Records a full run-through of `id`; a stale id is ignored.
    pub fn note_completion(&mut self, id: FragmentId) {
        if let Some(f) = self.fragments.get_mut(id.index()) {
            f.completions += 1;
        }
    }

    /// Looks for a sibling fragment of `id` (same head) that shares the
    /// executed prefix `prefix_len` and continues with `next` — the linked
    /// exit-stub transfer. A stale `id` diverts nowhere.
    pub fn divert(&self, id: FragmentId, prefix_len: usize, next: u32) -> Option<FragmentId> {
        let cur = self.fragments.get(id.index())?;
        let head = cur.blocks[0];
        self.head_row(head)
            .iter()
            .copied()
            .filter(|&cand| cand != id)
            .find(|&cand| {
                let f = &self.fragments[cand.index()];
                f.blocks.len() > prefix_len
                    && f.blocks[prefix_len] == next
                    && f.blocks[..prefix_len] == cur.blocks[..prefix_len]
            })
    }

    /// Empties the cache (Dynamo's phase flush). Statistics of installed
    /// fragments are discarded; `installs`/`flushes` counters survive.
    pub fn flush(&mut self) {
        self.fragments.clear();
        for row in &mut self.by_head {
            row.clear();
        }
        self.flushes += 1;
    }

    /// Sum of `entries` over live fragments.
    pub fn total_entries(&self) -> u64 {
        self.fragments.iter().map(|f| f.entries).sum()
    }

    /// Iterates over live fragments.
    pub fn iter(&self) -> impl Iterator<Item = (FragmentId, &Fragment)> {
        self.fragments
            .iter()
            .enumerate()
            .map(|(i, f)| (FragmentId(i as u32), f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_and_lookup() {
        let mut c = FragmentCache::new();
        let id = c.install(&[5, 6, 7], 12).unwrap().unwrap();
        assert_eq!(c.len(), 1);
        assert_eq!(c.entry_for(BlockId::new(5)), Some(id));
        assert!(c.has_head(BlockId::new(5)));
        assert!(!c.has_head(BlockId::new(6)));
        assert_eq!(c.fragment(id).unwrap().blocks(), &[5, 6, 7]);
        assert_eq!(c.fragment(id).unwrap().insts(), 12);
        assert_eq!(c.fragment(id).unwrap().head(), BlockId::new(5));
        assert_eq!(c.fragment(id).unwrap().len(), 3);
    }

    #[test]
    fn duplicate_install_is_idempotent() {
        let mut c = FragmentCache::new();
        c.install(&[1, 2], 4).unwrap().unwrap();
        assert_eq!(c.install(&[1, 2], 4), Ok(None));
        assert_eq!(c.len(), 1);
        assert_eq!(c.installs(), 1);
        // A sibling with the same head but different body installs fine.
        assert!(c.install(&[1, 3], 4).unwrap().is_some());
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn install_anchoring_reports_new_heads() {
        let mut c = FragmentCache::new();
        let (id, new_head) = c.install_anchoring(&[4, 5], 3).unwrap();
        assert!(id.is_some());
        assert!(new_head, "first fragment at a head anchors it");
        // A sibling at the same head installs but anchors nothing new.
        let (id, new_head) = c.install_anchoring(&[4, 6], 3).unwrap();
        assert!(id.is_some());
        assert!(!new_head);
        // A duplicate neither installs nor anchors.
        let (id, new_head) = c.install_anchoring(&[4, 5], 3).unwrap();
        assert!(id.is_none());
        assert!(!new_head);
    }

    #[test]
    fn primary_entry_is_first_installed() {
        let mut c = FragmentCache::new();
        let a = c.install(&[9, 1], 2).unwrap().unwrap();
        let _b = c.install(&[9, 2], 2).unwrap().unwrap();
        assert_eq!(c.entry_for(BlockId::new(9)), Some(a));
    }

    #[test]
    fn divert_finds_prefix_sharing_sibling() {
        let mut c = FragmentCache::new();
        let a = c.install(&[1, 2, 3, 4], 8).unwrap().unwrap();
        let b = c.install(&[1, 2, 5], 6).unwrap().unwrap();
        // Executing `a`, diverging at position 2 toward block 5: sibling
        // `b` continues there.
        assert_eq!(c.divert(a, 2, 5), Some(b));
        // No sibling continues with block 9.
        assert_eq!(c.divert(a, 2, 9), None);
        // Prefix mismatch: diverging at position 1 toward 5 requires a
        // sibling whose second block is 5 — b's is 2 at position 1? No:
        // b.blocks[1] == 2, so looking for next == 2 from a at pos 1 would
        // match... but a[1] is already 2, so the engine would not divert.
        assert_eq!(c.divert(a, 1, 5), None);
    }

    #[test]
    fn flush_empties_but_keeps_counters() {
        let mut c = FragmentCache::new();
        let id = c.install(&[3], 1).unwrap().unwrap();
        c.note_entry(id);
        c.note_completion(id);
        assert_eq!(c.total_entries(), 1);
        c.flush();
        assert!(c.is_empty());
        assert_eq!(c.installs(), 1);
        assert_eq!(c.flushes(), 1);
        assert!(!c.has_head(BlockId::new(3)));
    }

    #[test]
    fn empty_fragment_is_a_typed_error() {
        let mut c = FragmentCache::new();
        assert_eq!(c.install(&[], 0), Err(FragmentError::EmptyBlocks));
        assert_eq!(c.install_anchoring(&[], 0), Err(FragmentError::EmptyBlocks));
        assert!(c.is_empty());
        assert_eq!(c.installs(), 0);
    }

    #[test]
    fn stale_ids_surface_instead_of_panicking() {
        let mut c = FragmentCache::new();
        let id = c.install(&[3, 4], 2).unwrap().unwrap();
        c.flush();
        assert_eq!(
            c.fragment(id).unwrap_err(),
            FragmentError::StaleId { id, live: 0 }
        );
        // Statistics hooks tolerate stale ids silently...
        c.note_entry(id);
        c.note_completion(id);
        assert_eq!(c.total_entries(), 0);
        // ...and a stale id diverts nowhere.
        assert_eq!(c.divert(id, 1, 9), None);
        // Errors format for operators.
        let msg = FragmentError::StaleId { id, live: 0 }.to_string();
        assert!(msg.contains("stale"), "{msg}");
        assert!(FragmentError::EmptyBlocks.to_string().contains("no blocks"));
    }
}
