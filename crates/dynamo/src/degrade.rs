//! Staged graceful degradation for the linked-trace engine.
//!
//! Dynamo bails out *wholesale* when the cache churns (gcc/go). The
//! ladder here is gentler: a watchdog monitors flush storms, guard-fail
//! rates, and trace efficiency over fixed-size event windows and steps
//! the engine down one rung at a time —
//!
//! 1. [`LadderMode::FullLinking`] — normal operation: traces installed,
//!    trace-to-trace links patched;
//! 2. [`LadderMode::NoLink`] — traces still run, but every traversal
//!    returns to the dispatch loop (links severed, none re-patched), so
//!    a mispredicted loop nest cannot ping-pong between fragments;
//! 3. [`LadderMode::InterpOnly`] — traces flushed and installs gated:
//!    pure profiled interpretation.
//!
//! Unlike a bail-out, every rung keeps profiling, so after
//! [`DegradeConfig::cooldown_windows`] consecutive healthy windows the
//! watchdog steps back *up* and the engine re-promotes itself — a phase
//! change that made the old working set worthless does not condemn the
//! rest of the run.

/// Execution rung of the degradation ladder, healthiest first.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum LadderMode {
    /// Traces execute and link trace-to-trace (normal operation).
    FullLinking,
    /// Traces execute but never chain; each traversal returns to the
    /// dispatch loop.
    NoLink,
    /// No traces at all: profiled interpretation only.
    InterpOnly,
}

impl LadderMode {
    /// Stable snake_case tag, used in telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            LadderMode::FullLinking => "full_linking",
            LadderMode::NoLink => "no_link",
            LadderMode::InterpOnly => "interp_only",
        }
    }

    /// The next rung down, if any.
    fn down(self) -> Option<Self> {
        match self {
            LadderMode::FullLinking => Some(LadderMode::NoLink),
            LadderMode::NoLink => Some(LadderMode::InterpOnly),
            LadderMode::InterpOnly => None,
        }
    }

    /// The next rung up, if any.
    fn up(self) -> Option<Self> {
        match self {
            LadderMode::FullLinking => None,
            LadderMode::NoLink => Some(LadderMode::FullLinking),
            LadderMode::InterpOnly => Some(LadderMode::NoLink),
        }
    }
}

/// Tuning for the [`Watchdog`]. Enabled by setting
/// [`DynamoConfig::degrade`](crate::DynamoConfig::degrade); when enabled
/// the ladder supersedes the coarse [`BailoutPolicy`](crate::BailoutPolicy).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DegradeConfig {
    /// Window length in watchdog events (one event per completed path
    /// plus one per trace entry).
    pub window_events: u64,
    /// A window with more cache flushes than this is a flush storm.
    pub max_flushes_per_window: u64,
    /// A window whose guard failures exceed this fraction of trace
    /// entries is churning (traces exit almost immediately).
    pub max_guard_fail_rate: f64,
    /// A window averaging fewer trace blocks per entry than this is not
    /// amortizing dispatch (a healthy trace covers several blocks).
    pub min_blocks_per_entry: f64,
    /// Guard-fail and blocks-per-entry checks only apply once a window
    /// has at least this many trace entries; quiet windows are healthy.
    pub min_entries: u64,
    /// Consecutive healthy windows required before stepping back up.
    pub cooldown_windows: u32,
}

impl Default for DegradeConfig {
    fn default() -> Self {
        DegradeConfig {
            window_events: 50_000,
            max_flushes_per_window: 4,
            max_guard_fail_rate: 0.9,
            min_blocks_per_entry: 1.25,
            min_entries: 256,
            cooldown_windows: 2,
        }
    }
}

/// A mode transition decided by the [`Watchdog`]; the engine applies it
/// (commands, telemetry) — the watchdog only tracks health.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LadderStep {
    /// Health degraded: step down a rung.
    Down {
        /// Rung before the step.
        from: LadderMode,
        /// Rung after the step.
        to: LadderMode,
    },
    /// Health recovered through the cooldown: step back up a rung.
    Up {
        /// Rung before the step.
        from: LadderMode,
        /// Rung after the step.
        to: LadderMode,
    },
}

/// Sliding-window health monitor driving the degradation ladder.
///
/// The engine feeds it completed paths, trace excursions, and flushes;
/// at each window boundary the watchdog scores the window and may return
/// a [`LadderStep`] for the engine to apply.
#[derive(Clone, Debug)]
pub struct Watchdog {
    config: DegradeConfig,
    mode: LadderMode,
    /// Event clock within the current window.
    events: u64,
    flushes: u64,
    entries: u64,
    guard_fails: u64,
    blocks: u64,
    healthy_windows: u32,
}

impl Watchdog {
    /// A watchdog starting at [`LadderMode::FullLinking`].
    pub fn new(config: DegradeConfig) -> Self {
        Watchdog {
            config,
            mode: LadderMode::FullLinking,
            events: 0,
            flushes: 0,
            entries: 0,
            guard_fails: 0,
            blocks: 0,
            healthy_windows: 0,
        }
    }

    /// The current rung.
    pub fn mode(&self) -> LadderMode {
        self.mode
    }

    /// Counts a cache flush in the current window (degradation's own
    /// flush is *not* reported here — it must not poison the next
    /// window's score).
    pub fn observe_flush(&mut self) {
        self.flushes += 1;
    }

    /// Counts one completed interpreted path; may close a window.
    pub fn observe_path(&mut self) -> Option<LadderStep> {
        self.tick(1)
    }

    /// Counts one trace excursion (`entries` traversals, `guard_fails`
    /// failed guards, `blocks` blocks executed); may close a window.
    ///
    /// The event clock advances by `entries` so trace-heavy phases still
    /// close windows at a comparable block rate to interpreted phases.
    pub fn observe_excursion(
        &mut self,
        entries: u64,
        guard_fails: u64,
        blocks: u64,
    ) -> Option<LadderStep> {
        self.entries += entries;
        self.guard_fails += guard_fails;
        self.blocks += blocks;
        self.tick(entries.max(1))
    }

    fn tick(&mut self, n: u64) -> Option<LadderStep> {
        self.events += n;
        if self.events < self.config.window_events {
            return None;
        }
        let storm = self.flushes > self.config.max_flushes_per_window;
        let churn = self.entries >= self.config.min_entries
            && (self.guard_fails as f64 > self.config.max_guard_fail_rate * self.entries as f64
                || (self.blocks as f64) < self.config.min_blocks_per_entry * self.entries as f64);
        self.events = 0;
        self.flushes = 0;
        self.entries = 0;
        self.guard_fails = 0;
        self.blocks = 0;
        if storm || churn {
            self.healthy_windows = 0;
            let from = self.mode;
            let to = from.down()?;
            self.mode = to;
            Some(LadderStep::Down { from, to })
        } else {
            let from = self.mode;
            from.up()?;
            self.healthy_windows += 1;
            if self.healthy_windows < self.config.cooldown_windows {
                return None;
            }
            self.healthy_windows = 0;
            let to = from.up()?;
            self.mode = to;
            Some(LadderStep::Up { from, to })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DegradeConfig {
        DegradeConfig {
            window_events: 10,
            max_flushes_per_window: 1,
            max_guard_fail_rate: 0.9,
            min_blocks_per_entry: 1.25,
            min_entries: 4,
            cooldown_windows: 2,
        }
    }

    #[test]
    fn flush_storm_steps_down() {
        let mut w = Watchdog::new(tiny());
        w.observe_flush();
        w.observe_flush();
        let mut step = None;
        for _ in 0..10 {
            step = step.or(w.observe_path());
        }
        assert_eq!(
            step,
            Some(LadderStep::Down {
                from: LadderMode::FullLinking,
                to: LadderMode::NoLink,
            })
        );
        assert_eq!(w.mode(), LadderMode::NoLink);
    }

    #[test]
    fn guard_churn_steps_down_twice_then_stops() {
        let mut w = Watchdog::new(tiny());
        // Every entry guard-fails after a single block: maximal churn.
        assert_eq!(
            w.observe_excursion(10, 10, 10),
            Some(LadderStep::Down {
                from: LadderMode::FullLinking,
                to: LadderMode::NoLink,
            })
        );
        assert_eq!(
            w.observe_excursion(10, 10, 10),
            Some(LadderStep::Down {
                from: LadderMode::NoLink,
                to: LadderMode::InterpOnly,
            })
        );
        // At the bottom: more churn produces no further step.
        assert_eq!(w.observe_excursion(10, 10, 10), None);
        assert_eq!(w.mode(), LadderMode::InterpOnly);
    }

    #[test]
    fn healthy_windows_repromote_after_cooldown() {
        let mut w = Watchdog::new(tiny());
        w.observe_excursion(10, 10, 10);
        assert_eq!(w.mode(), LadderMode::NoLink);
        // Healthy trace windows: long traces, no guard failures.
        assert_eq!(w.observe_excursion(10, 0, 100), None); // cooldown 1/2
        assert_eq!(
            w.observe_excursion(10, 0, 100),
            Some(LadderStep::Up {
                from: LadderMode::NoLink,
                to: LadderMode::FullLinking,
            })
        );
        assert_eq!(w.mode(), LadderMode::FullLinking);
        // At the top: healthy windows produce no further step.
        assert_eq!(w.observe_excursion(10, 0, 100), None);
        assert_eq!(w.observe_excursion(10, 0, 100), None);
    }

    #[test]
    fn unhealthy_window_resets_cooldown() {
        let mut w = Watchdog::new(tiny());
        w.observe_excursion(10, 10, 10);
        assert_eq!(w.mode(), LadderMode::NoLink);
        assert_eq!(w.observe_excursion(10, 0, 100), None); // cooldown 1/2
        w.observe_excursion(10, 10, 10); // churn again -> InterpOnly
        assert_eq!(w.mode(), LadderMode::InterpOnly);
        // The cooldown restarted: two fresh healthy windows required.
        assert_eq!(w.observe_excursion(0, 0, 0), None);
        for _ in 0..9 {
            assert_eq!(w.observe_path(), None);
        }
        // Second healthy window (quiet: below min_entries) closes here.
        let mut step = None;
        for _ in 0..10 {
            step = step.or(w.observe_path());
        }
        assert_eq!(
            step,
            Some(LadderStep::Up {
                from: LadderMode::InterpOnly,
                to: LadderMode::NoLink,
            })
        );
    }

    #[test]
    fn quiet_windows_are_healthy() {
        let mut w = Watchdog::new(tiny());
        // Below min_entries: churn checks do not apply.
        assert_eq!(w.observe_excursion(1, 1, 1), None);
        assert_eq!(w.observe_excursion(1, 1, 1), None);
        for _ in 0..8 {
            w.observe_path();
        }
        assert_eq!(w.mode(), LadderMode::FullLinking);
    }
}
