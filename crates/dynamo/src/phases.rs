//! Phase-change detection via prediction-rate spikes (paper §6.1).
//!
//! > *Dynamo monitors the path prediction activity in order to identify
//! > sudden and sharp increases in the prediction rate. Such increases
//! > provide a good indication that a new phase is about to be entered.
//! > After detecting a phase transition, Dynamo triggers a cache flush.*
//!
//! [`SpikeDetector`] implements that heuristic over a window of path
//! completions: if the number of predictions inside the current window
//! exceeds `spike_factor` times the long-run per-window average (after a
//! warmup period), it signals a flush.

/// Whether and how the engine flushes the fragment cache on phase changes.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub enum FlushPolicy {
    /// Never flush (the baseline for ablations).
    #[default]
    Never,
    /// Flush when the prediction rate spikes.
    OnSpike {
        /// Window length in observed path completions.
        window: u64,
        /// Spike threshold as a multiple of the long-run rate.
        factor: f64,
        /// Minimum predictions inside one window before a spike can fire
        /// (suppresses noise at tiny rates).
        min_predictions: u64,
    },
}

impl FlushPolicy {
    /// A reasonable spike policy for the experiments.
    pub fn default_spike() -> Self {
        FlushPolicy::OnSpike {
            window: 20_000,
            factor: 8.0,
            min_predictions: 24,
        }
    }
}

/// Sliding-window prediction-rate spike detector.
#[derive(Clone, Debug)]
pub struct SpikeDetector {
    window: u64,
    factor: f64,
    min_predictions: u64,
    /// Path completions in the current window.
    seen: u64,
    /// Predictions in the current window.
    predicted: u64,
    /// Completed windows and their total predictions.
    windows_done: u64,
    predictions_total: u64,
    spikes: u64,
    /// Windows remaining in the post-flush cooldown: right after a flush
    /// the evicted working set re-predicts in a burst that must not be
    /// mistaken for another phase change.
    cooldown: u64,
}

impl SpikeDetector {
    /// Creates a detector from a [`FlushPolicy::OnSpike`] configuration.
    ///
    /// # Panics
    ///
    /// Panics if `window == 0` or `factor <= 1.0`.
    pub fn new(window: u64, factor: f64, min_predictions: u64) -> Self {
        assert!(window > 0, "window must be positive");
        assert!(factor > 1.0, "spike factor must exceed 1.0");
        SpikeDetector {
            window,
            factor,
            min_predictions,
            seen: 0,
            predicted: 0,
            windows_done: 0,
            predictions_total: 0,
            spikes: 0,
            cooldown: 0,
        }
    }

    /// Observes one path completion; `was_prediction` marks completions
    /// that produced a new fragment. Returns `true` when the current
    /// window closed with a spike — the caller should flush.
    pub fn observe(&mut self, was_prediction: bool) -> bool {
        self.seen += 1;
        if was_prediction {
            self.predicted += 1;
        }
        if self.seen < self.window {
            return false;
        }
        // Window complete: compare to the long-run average, unless we are
        // cooling down after a recent flush (the re-prediction burst would
        // read as another spike).
        let spike = if self.cooldown == 0
            && self.windows_done >= 2
            && self.predicted >= self.min_predictions
        {
            let avg = self.predictions_total as f64 / self.windows_done as f64;
            self.predicted as f64 > self.factor * avg.max(0.5)
        } else {
            false
        };
        self.windows_done += 1;
        self.predictions_total += self.predicted;
        self.seen = 0;
        self.predicted = 0;
        self.cooldown = self.cooldown.saturating_sub(1);
        if spike {
            self.spikes += 1;
            self.cooldown = 2;
        }
        spike
    }

    /// Number of spikes signaled so far.
    pub fn spikes(&self) -> u64 {
        self.spikes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_stream_never_spikes() {
        let mut d = SpikeDetector::new(100, 4.0, 5);
        for i in 0..10_000 {
            // 1% steady prediction rate.
            assert!(!d.observe(i % 100 == 0), "no spike at {i}");
        }
        assert_eq!(d.spikes(), 0);
    }

    #[test]
    fn burst_after_quiet_spikes() {
        let mut d = SpikeDetector::new(100, 4.0, 5);
        // Three quiet windows (1 prediction each).
        for i in 0..300 {
            d.observe(i % 100 == 0);
        }
        // A burst window: 30 predictions out of 100.
        let mut fired = false;
        for i in 0..100 {
            fired |= d.observe(i % 3 == 0);
        }
        assert!(fired, "burst should trigger a flush");
        assert_eq!(d.spikes(), 1);
    }

    #[test]
    fn min_predictions_suppresses_tiny_spikes() {
        let mut d = SpikeDetector::new(100, 2.0, 50);
        for i in 0..300 {
            d.observe(i % 100 == 0);
        }
        // 10 predictions is 10x the average but below min_predictions.
        let mut fired = false;
        for i in 0..100 {
            fired |= d.observe(i % 10 == 0);
        }
        assert!(!fired);
    }

    #[test]
    fn cooldown_suppresses_the_echo_spike() {
        let mut d = SpikeDetector::new(100, 3.0, 5);
        for i in 0..300 {
            d.observe(i % 100 == 0);
        }
        // Phase change: a burst window spikes...
        for i in 0..100 {
            d.observe(i % 4 == 0);
        }
        assert_eq!(d.spikes(), 1);
        // ...and the post-flush re-prediction burst in the next two
        // windows does not.
        let mut echoed = false;
        for i in 0..200 {
            echoed |= d.observe(i % 4 == 0);
        }
        assert!(!echoed, "cooldown must absorb the re-prediction burst");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = SpikeDetector::new(0, 2.0, 1);
    }

    #[test]
    #[should_panic(expected = "spike factor")]
    fn low_factor_panics() {
        let _ = SpikeDetector::new(10, 1.0, 1);
    }
}
