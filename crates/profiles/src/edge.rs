//! Edge profiling and the edge-vs-path "showdown" (paper §7, ref. [6]).
//!
//! Ball, Mataga & Sagiv showed that plain edge profiles often suffice to
//! recover most of the hot portion of a path profile. [`EdgeProfiler`]
//! collects edge and block frequencies (one counter bump per control
//! transfer — cheaper than bit tracing, pricier than NET), and
//! [`estimate_path_freq`] scores a path under the branch-independence
//! assumption:
//!
//! ```text
//! freq̂(p) = count(head) · Π  P(bᵢ₊₁ | bᵢ)
//! ```
//!
//! [`showdown`] ranks the true paths by that estimate and reports how much of
//! the true hot flow the edge-derived top set captures — the experiment
//! behind the paper's closing remark that even offline, sophisticated path
//! profiling buys little over cheaper schemes.

use hotpath_ir::dense::{AdjCounters, CounterTable};
use hotpath_vm::{BlockEvent, ExecutionObserver};

use crate::profile::{HotPathSet, PathProfile};
use crate::signature::{PathId, PathTable};

/// Collects edge and block execution frequencies.
#[derive(Clone, Default, Debug)]
pub struct EdgeProfiler {
    edges: AdjCounters,
    blocks: CounterTable,
    transfers: u64,
}

impl EdgeProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Frequency of the edge `from -> to`.
    pub fn edge(&self, from: u32, to: u32) -> u64 {
        self.edges.get(from, to)
    }

    /// Execution count of a block.
    pub fn block(&self, block: u32) -> u64 {
        self.blocks.get(block)
    }

    /// Number of distinct edges seen (the scheme's counter space).
    pub fn edge_count(&self) -> usize {
        self.edges.edge_count()
    }

    /// Total control transfers observed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Probability of taking `from -> to` among `from`'s outgoing
    /// transfers (0 if `from` was never left).
    pub fn transition_probability(&self, from: u32, to: u32) -> f64 {
        let out = self.block(from);
        if out == 0 {
            0.0
        } else {
            self.edge(from, to) as f64 / out as f64
        }
    }
}

impl ExecutionObserver for EdgeProfiler {
    fn on_block(&mut self, event: &BlockEvent) {
        *self.blocks.slot(event.block.as_u32()) += 1;
        if let Some(from) = event.from {
            self.edges.bump(from.as_u32(), event.block.as_u32());
            self.transfers += 1;
        }
    }
}

/// Estimates a path's frequency from edge profiles under branch
/// independence.
pub fn estimate_path_freq(edges: &EdgeProfiler, blocks: &[u32]) -> f64 {
    let Some(&head) = blocks.first() else {
        return 0.0;
    };
    let mut est = edges.block(head) as f64;
    for w in blocks.windows(2) {
        est *= edges.transition_probability(w[0], w[1]);
        if est == 0.0 {
            break;
        }
    }
    est
}

/// Result of the edge-vs-path showdown.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ShowdownReport {
    /// Size of the true hot set.
    pub hot_paths: usize,
    /// How many of the edge-estimated top-`hot_paths` paths are truly hot.
    pub overlap: usize,
    /// True hot flow captured by the edge-estimated top set, as a
    /// percentage of the true hot flow.
    pub hot_flow_captured_pct: f64,
    /// Edge counters used vs. path counters used.
    pub edge_counters: usize,
    /// Distinct paths (the path profile's counter requirement).
    pub path_counters: usize,
}

/// Ranks true paths by their edge-profile estimate and measures how much
/// of the hot path profile the top set recovers.
pub fn showdown(
    edges: &EdgeProfiler,
    profile: &PathProfile,
    table: &PathTable,
    sequences: &[Vec<u32>],
    hot: &HotPathSet,
) -> ShowdownReport {
    let mut scored: Vec<(PathId, f64)> = profile
        .iter()
        .map(|(id, _)| {
            let seq = sequences
                .get(id.index())
                .map(|s| s.as_slice())
                .unwrap_or(&[]);
            (id, estimate_path_freq(edges, seq))
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    scored.truncate(hot.len());

    let mut overlap = 0usize;
    let mut captured = 0u64;
    for (id, _) in &scored {
        if hot.contains(*id) {
            overlap += 1;
            captured += profile.freq(*id);
        }
    }
    ShowdownReport {
        hot_paths: hot.len(),
        overlap,
        hot_flow_captured_pct: if hot.hot_flow() == 0 {
            0.0
        } else {
            captured as f64 / hot.hot_flow() as f64 * 100.0
        },
        edge_counters: edges.edge_count(),
        path_counters: table.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequences::SequenceRecorder;
    use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
    use hotpath_ir::CmpOp;
    use hotpath_vm::{Tee, Vm};

    fn skewed_loop(trip: i64) -> hotpath_ir::Program {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let rare = fb.new_block();
        let common = fb.new_block();
        let latch = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, trip);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let m = fb.reg();
        fb.and_imm(m, i, 15);
        let r = fb.cmp_imm(CmpOp::Eq, m, 15);
        fb.branch(r, rare, common);
        fb.switch_to(rare);
        fb.jump(latch);
        fb.switch_to(common);
        fb.jump(latch);
        fb.switch_to(latch);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.finish().unwrap()
    }

    #[test]
    fn edge_counts_are_exact() {
        let p = skewed_loop(160);
        let mut edges = EdgeProfiler::new();
        let stats = Vm::new(&p).run(&mut edges).unwrap();
        assert_eq!(edges.transfers(), stats.blocks_executed - 1);
        // Block ids: header=1, body=2, rare=3, common=4.
        assert_eq!(edges.edge(2, 3), 10, "rare arm every 16th iteration");
        assert_eq!(edges.edge(2, 4), 150);
        let pr = edges.transition_probability(2, 4);
        assert!((pr - 150.0 / 160.0).abs() < 1e-9);
    }

    #[test]
    fn showdown_recovers_the_dominant_path() {
        let p = skewed_loop(3200);
        let mut edges = EdgeProfiler::new();
        let mut seqs = SequenceRecorder::new();
        let mut tee = Tee(&mut edges, &mut seqs);
        Vm::new(&p).run(&mut tee).unwrap();
        let (stream, table, sequences) = seqs.into_parts();
        let profile = stream.to_profile();
        let hot = profile.hot_set(0.001);
        let report = showdown(&edges, &profile, &table, &sequences, &hot);
        assert_eq!(report.hot_paths, hot.len());
        // The dominant common-arm path must be recovered.
        assert!(report.overlap >= 1);
        assert!(
            report.hot_flow_captured_pct > 90.0,
            "captured {:.1}%",
            report.hot_flow_captured_pct
        );
    }

    #[test]
    fn estimate_is_zero_for_phantom_sequences() {
        let p = skewed_loop(100);
        let mut edges = EdgeProfiler::new();
        Vm::new(&p).run(&mut edges).unwrap();
        // rare (3) never transfers to itself.
        assert_eq!(estimate_path_freq(&edges, &[3, 3]), 0.0);
        assert_eq!(estimate_path_freq(&edges, &[]), 0.0);
    }
}
