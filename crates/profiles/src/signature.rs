//! Bit-tracing path signatures and the interning path table.
//!
//! The paper (§2) identifies a path by the signature
//! `<start_address>.<history>,<indirect_branch_target_list>`: one history
//! bit per conditional branch on the path (1 = taken) and the dynamic
//! target of every indirect transfer. Signatures are built on the fly as
//! the program executes — no preparatory static analysis — which is why
//! Dynamo used this scheme, and why we use it as the canonical path
//! identity.

use std::fmt;

use hotpath_ir::fasthash::FxHashMap;
use hotpath_ir::BlockId;

/// Dense identifier for an interned path.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PathId(u32);

impl PathId {
    /// Creates a path id from a raw index (mainly for tests).
    pub fn new(index: u32) -> Self {
        PathId(index)
    }

    /// The raw dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PathId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A bit-tracing path signature.
///
/// Signatures are built incrementally: [`push_bit`](PathSignature::push_bit)
/// per conditional branch, [`push_indirect`](PathSignature::push_indirect)
/// per indirect transfer. Given a program, equal signatures imply equal
/// block sequences: the start block plus the branch decisions determine the
/// walk.
#[derive(Clone, PartialEq, Eq, Hash, Default, Debug)]
pub struct PathSignature {
    start: u32,
    /// History bits, 64 per word, oldest bit first (LSB-first within each
    /// word).
    history: Vec<u64>,
    history_len: u32,
    /// Dynamic targets of indirect transfers (switches, cross-frame
    /// returns), in path order.
    indirect: Vec<u32>,
}

impl PathSignature {
    /// Starts a signature at `start`, clearing previous contents. Reusing
    /// one signature buffer avoids per-path allocation in the extractor.
    pub fn reset(&mut self, start: BlockId) {
        self.start = start.as_u32();
        self.history.clear();
        self.history_len = 0;
        self.indirect.clear();
    }

    /// Creates a signature starting at `start`.
    pub fn new(start: BlockId) -> Self {
        let mut s = PathSignature::default();
        s.reset(start);
        s
    }

    /// The path's starting block.
    pub fn start(&self) -> BlockId {
        BlockId::new(self.start)
    }

    /// Shifts one branch-outcome bit into the history.
    pub fn push_bit(&mut self, taken: bool) {
        let word = (self.history_len / 64) as usize;
        let bit = self.history_len % 64;
        if word == self.history.len() {
            self.history.push(0);
        }
        if taken {
            self.history[word] |= 1u64 << bit;
        }
        self.history_len += 1;
    }

    /// Appends an indirect-transfer target.
    pub fn push_indirect(&mut self, target: BlockId) {
        self.indirect.push(target.as_u32());
    }

    /// Number of history bits recorded.
    pub fn history_len(&self) -> u32 {
        self.history_len
    }

    /// Number of indirect targets recorded.
    pub fn indirect_len(&self) -> usize {
        self.indirect.len()
    }

    /// The `i`-th history bit, if recorded.
    pub fn bit(&self, i: u32) -> Option<bool> {
        if i >= self.history_len {
            return None;
        }
        Some(self.history[(i / 64) as usize] >> (i % 64) & 1 == 1)
    }

    /// The `i`-th 64-bit history word (LSB-first packing); zero past the
    /// recorded range.
    pub fn history_word(&self, i: usize) -> u64 {
        self.history.get(i).copied().unwrap_or(0)
    }

    /// The `i`-th indirect-transfer target, if recorded.
    pub fn indirect_target(&self, i: usize) -> Option<BlockId> {
        self.indirect.get(i).map(|&t| BlockId::new(t))
    }
}

impl fmt::Display for PathSignature {
    /// Renders in the paper's `<start>.<history>,<indirects>` notation.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B{}.", self.start)?;
        for i in 0..self.history_len {
            write!(f, "{}", u8::from(self.bit(i).expect("in range")))?;
        }
        if !self.indirect.is_empty() {
            write!(f, ",")?;
            for (i, t) in self.indirect.iter().enumerate() {
                if i > 0 {
                    write!(f, ";")?;
                }
                write!(f, "B{t}")?;
            }
        }
        Ok(())
    }
}

/// Static facts about one interned path, captured at first execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PathInfo {
    /// First block of the path (the *path head* in NET terminology).
    pub head: BlockId,
    /// Number of blocks on the path.
    pub blocks: u32,
    /// Total instruction slots on the path.
    pub insts: u32,
    /// Conditional branches on the path (= history bits in the signature).
    pub cond_branches: u32,
    /// Indirect transfers on the path (= indirect-list entries).
    pub indirects: u32,
}

/// Interns [`PathSignature`]s to dense [`PathId`]s.
///
/// The table is the "path table" of the paper's bit-tracing scheme: upon
/// reaching the end of a path, the signature indexes the table to bump the
/// path's counter. Here the table also records [`PathInfo`] for metrics.
#[derive(Clone, Default, Debug)]
pub struct PathTable {
    map: FxHashMap<PathSignature, PathId>,
    infos: Vec<PathInfo>,
    sigs: Vec<PathSignature>,
}

impl PathTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `sig`, interning it with `info` if new. The
    /// signature is only cloned on first sight.
    pub fn intern(&mut self, sig: &PathSignature, info: PathInfo) -> PathId {
        if let Some(&id) = self.map.get(sig) {
            return id;
        }
        let id = PathId(self.infos.len() as u32);
        self.infos.push(info);
        self.sigs.push(sig.clone());
        self.map.insert(sig.clone(), id);
        id
    }

    /// The signature behind an interned id, if produced by this table.
    pub fn signature(&self, id: PathId) -> Option<&PathSignature> {
        self.sigs.get(id.index())
    }

    /// Looks up a signature without interning.
    pub fn get(&self, sig: &PathSignature) -> Option<PathId> {
        self.map.get(sig).copied()
    }

    /// Info for an interned path.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this table.
    pub fn info(&self, id: PathId) -> &PathInfo {
        &self.infos[id.index()]
    }

    /// Number of distinct paths seen.
    pub fn len(&self) -> usize {
        self.infos.len()
    }

    /// True if no path has been interned.
    pub fn is_empty(&self) -> bool {
        self.infos.is_empty()
    }

    /// Iterates over `(PathId, &PathInfo)`.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, &PathInfo)> {
        self.infos
            .iter()
            .enumerate()
            .map(|(i, info)| (PathId(i as u32), info))
    }

    /// Number of distinct path heads across all interned paths — the
    /// counter-space requirement of NET prediction (Table 2).
    pub fn unique_heads(&self) -> usize {
        let mut heads: Vec<u32> = self.infos.iter().map(|i| i.head.as_u32()).collect();
        heads.sort_unstable();
        heads.dedup();
        heads.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u32) -> BlockId {
        BlockId::new(i)
    }

    #[test]
    fn signature_bits_roundtrip() {
        let mut s = PathSignature::new(b(7));
        let pattern = [true, false, false, true, true];
        for &bit in &pattern {
            s.push_bit(bit);
        }
        assert_eq!(s.history_len(), 5);
        for (i, &bit) in pattern.iter().enumerate() {
            assert_eq!(s.bit(i as u32), Some(bit));
        }
        assert_eq!(s.bit(5), None);
        assert_eq!(s.start(), b(7));
    }

    #[test]
    fn signature_crosses_word_boundary() {
        let mut s = PathSignature::new(b(0));
        for i in 0..130 {
            s.push_bit(i % 3 == 0);
        }
        assert_eq!(s.history_len(), 130);
        for i in 0..130u32 {
            assert_eq!(s.bit(i), Some(i % 3 == 0), "bit {i}");
        }
    }

    #[test]
    fn display_matches_paper_notation() {
        // Paper Figure 1: path ABDG has signature A.0101 — we render our
        // own ids but the same shape.
        let mut s = PathSignature::new(b(0));
        for bit in [false, true, false, true] {
            s.push_bit(bit);
        }
        assert_eq!(s.to_string(), "B0.0101");
        s.push_indirect(b(9));
        s.push_indirect(b(4));
        assert_eq!(s.to_string(), "B0.0101,B9;B4");
    }

    #[test]
    fn distinct_histories_are_distinct() {
        let mut a = PathSignature::new(b(1));
        a.push_bit(true);
        let mut c = PathSignature::new(b(1));
        c.push_bit(false);
        assert_ne!(a, c);
        // Same bits, different start.
        let mut d = PathSignature::new(b(2));
        d.push_bit(true);
        assert_ne!(a, d);
        // Bits vs indirect are not confusable.
        let mut e = PathSignature::new(b(1));
        e.push_indirect(b(1));
        assert_ne!(a, e);
    }

    #[test]
    fn reset_clears_everything() {
        let mut s = PathSignature::new(b(1));
        s.push_bit(true);
        s.push_indirect(b(2));
        s.reset(b(3));
        assert_eq!(s, PathSignature::new(b(3)));
        assert_eq!(s.history_len(), 0);
        assert_eq!(s.indirect_len(), 0);
    }

    #[test]
    fn interning_dedups() {
        let mut table = PathTable::new();
        let info = PathInfo {
            head: b(1),
            blocks: 3,
            insts: 9,
            cond_branches: 1,
            indirects: 0,
        };
        let mut s = PathSignature::new(b(1));
        s.push_bit(true);
        let id1 = table.intern(&s, info);
        let id2 = table.intern(&s, info);
        assert_eq!(id1, id2);
        assert_eq!(table.len(), 1);
        let mut s2 = PathSignature::new(b(1));
        s2.push_bit(false);
        let id3 = table.intern(&s2, info);
        assert_ne!(id1, id3);
        assert_eq!(table.len(), 2);
        assert_eq!(table.get(&s), Some(id1));
        assert_eq!(table.info(id1).blocks, 3);
    }

    #[test]
    fn unique_heads_counts_distinct_heads() {
        let mut table = PathTable::new();
        for (start, bit) in [(1u32, true), (1, false), (2, true)] {
            let mut s = PathSignature::new(b(start));
            s.push_bit(bit);
            table.intern(
                &s,
                PathInfo {
                    head: b(start),
                    blocks: 1,
                    insts: 1,
                    cond_branches: 1,
                    indirects: 0,
                },
            );
        }
        assert_eq!(table.len(), 3);
        assert_eq!(table.unique_heads(), 2);
    }
}
