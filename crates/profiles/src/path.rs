//! The interprocedural forward-path extractor (paper §3).
//!
//! > *An interprocedural forward path starts at the target of a backward
//! > taken branch and extends up to the next backward taken branch. The
//! > path may extend across procedure call or return statements unless the
//! > call or return is a backward branch. If a path includes a (forward)
//! > procedure call it will terminate at the corresponding return branch,
//! > if not earlier.*
//!
//! [`PathExtractor`] implements that definition as an
//! [`ExecutionObserver`]: it segments the dynamic block stream into paths,
//! interns each path's bit-tracing signature, and hands one
//! [`PathExecution`] per completed path to a [`PathSink`].
//!
//! ## What counts as a "backward taken branch"?
//!
//! With function-contiguous code layout (ours, PA-RISC's, everyone's),
//! *returns* are backward transfers whenever the callee sits at a higher
//! address than the caller — i.e. almost always after a forward call. The
//! paper's definition reads literally: paths may cross calls and returns
//! "unless the call or return is a backward branch". Table 2's head
//! counts corroborate the literal reading — compress has 143 unique heads
//! for only 230 paths, far more than its loop headers alone — so:
//!
//! * [`BackwardRule::AllTransfers`] (default): any backward transfer,
//!   including calls and returns, ends the path and its target is a
//!   NET-countable head. Under contiguous layout this is also what makes
//!   the "terminate at the corresponding return" clause fire: a forward
//!   call's matching return is backward.
//! * [`BackwardRule::BranchesOnly`]: only backward jumps, conditional
//!   branches, and indirect branches end paths; calls and returns never
//!   do, and an in-path call's matching return ends the path with
//!   [`PathEndKind::CallReturn`]. Offered for the ablation benches.
//!
//! Two practical extensions Dynamo also needed: a safety **length cap**
//! ([`PathEndKind::Capped`]), and *continuation* starts
//! ([`PathStartKind::Continuation`]) for paths that begin where a previous
//! path ended without a backward branch.

use hotpath_ir::BlockId;
use hotpath_vm::{BlockEvent, ExecutionObserver, TransferKind};

use crate::signature::{PathId, PathInfo, PathSignature, PathTable};

/// Which control transfers end paths when backward. See the module docs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Debug)]
pub enum BackwardRule {
    /// Only branch instructions (jump, conditional, indirect) end paths.
    BranchesOnly,
    /// Any backward transfer ends paths, including calls and returns.
    #[default]
    AllTransfers,
}

/// Why a path began.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PathStartKind {
    /// Program entry (the very first path).
    Entry,
    /// Target of a backward taken branch — the starts NET maintains
    /// counters for.
    BackwardTarget,
    /// Continuation after a path that ended without a backward branch
    /// (call-return termination or the length cap).
    Continuation,
}

impl PathStartKind {
    /// True for starts that NET profiles (targets of backward taken
    /// branches).
    pub fn is_net_countable(self) -> bool {
        matches!(self, PathStartKind::BackwardTarget)
    }

    /// Compact tag for stream encodings; inverse of
    /// [`from_tag`](PathStartKind::from_tag).
    pub fn tag(self) -> u8 {
        match self {
            PathStartKind::Entry => 0,
            PathStartKind::BackwardTarget => 1,
            PathStartKind::Continuation => 2,
        }
    }

    /// Decodes a tag.
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => PathStartKind::Entry,
            1 => PathStartKind::BackwardTarget,
            2 => PathStartKind::Continuation,
            _ => return None,
        })
    }

    /// Stable snake_case name (telemetry and reports).
    pub fn as_str(self) -> &'static str {
        match self {
            PathStartKind::Entry => "entry",
            PathStartKind::BackwardTarget => "backward",
            PathStartKind::Continuation => "continuation",
        }
    }
}

/// Why a path ended.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PathEndKind {
    /// A backward taken control transfer (the normal case).
    BackwardBranch,
    /// The return matching a call made inside the path.
    CallReturn,
    /// The safety length cap.
    Capped,
    /// The program halted.
    ProgramEnd,
}

impl PathEndKind {
    /// Stable snake_case name (telemetry and reports).
    pub fn as_str(self) -> &'static str {
        match self {
            PathEndKind::BackwardBranch => "backward",
            PathEndKind::CallReturn => "call_return",
            PathEndKind::Capped => "capped",
            PathEndKind::ProgramEnd => "program_end",
        }
    }
}

/// One dynamic execution of a path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PathExecution {
    /// The interned path identity.
    pub path: PathId,
    /// First block of the path.
    pub head: BlockId,
    /// Why the path began.
    pub start: PathStartKind,
    /// Why the path ended.
    pub end: PathEndKind,
    /// Blocks on this execution of the path.
    pub blocks: u32,
    /// Instruction slots on this execution of the path.
    pub insts: u32,
}

/// Receives completed paths from a [`PathExtractor`].
pub trait PathSink {
    /// Called once per completed path execution.
    fn on_path(&mut self, exec: &PathExecution);

    /// Called when the underlying program run ends.
    fn on_end(&mut self) {}
}

impl<S: PathSink + ?Sized> PathSink for &mut S {
    fn on_path(&mut self, exec: &PathExecution) {
        (**self).on_path(exec);
    }

    fn on_end(&mut self) {
        (**self).on_end();
    }
}

/// A [`PathSink`] that collects executions into a vector (tests and small
/// experiments).
#[derive(Clone, Default, Debug)]
pub struct CollectSink {
    /// All completed path executions, in order.
    pub paths: Vec<PathExecution>,
    /// True once the run ended.
    pub ended: bool,
}

impl PathSink for CollectSink {
    fn on_path(&mut self, exec: &PathExecution) {
        self.paths.push(*exec);
    }

    fn on_end(&mut self) {
        self.ended = true;
    }
}

/// Default safety cap on path length, in blocks (Dynamo bounds trace
/// length the same way).
pub const DEFAULT_PATH_CAP: u32 = 1024;

/// Segments a block-event stream into interprocedural forward paths.
///
/// Use as the observer of a [`Vm`](hotpath_vm::Vm) run (or of a
/// [`RecordedTrace`](hotpath_vm::RecordedTrace) replay). After the run,
/// [`into_parts`](PathExtractor::into_parts) yields the sink and the
/// interned [`PathTable`].
#[derive(Debug)]
pub struct PathExtractor<S> {
    sink: S,
    table: PathTable,
    sig: PathSignature,
    start_kind: PathStartKind,
    /// Calls made inside the current path that have not returned yet.
    pending_calls: u32,
    blocks: u32,
    insts: u32,
    cap: u32,
    rule: BackwardRule,
    active: bool,
}

impl<S: PathSink> PathExtractor<S> {
    /// Creates an extractor feeding `sink` with the default cap and
    /// [`BackwardRule::BranchesOnly`].
    pub fn new(sink: S) -> Self {
        Self::with_options(sink, DEFAULT_PATH_CAP, BackwardRule::default())
    }

    /// Creates an extractor with an explicit length cap (in blocks).
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn with_cap(sink: S, cap: u32) -> Self {
        Self::with_options(sink, cap, BackwardRule::default())
    }

    /// Creates an extractor with explicit cap and backward rule.
    ///
    /// # Panics
    ///
    /// Panics if `cap == 0`.
    pub fn with_options(sink: S, cap: u32, rule: BackwardRule) -> Self {
        assert!(cap > 0, "path cap must be positive");
        PathExtractor {
            sink,
            table: PathTable::new(),
            sig: PathSignature::default(),
            start_kind: PathStartKind::Entry,
            pending_calls: 0,
            blocks: 0,
            insts: 0,
            cap,
            rule,
            active: false,
        }
    }

    /// The sink (e.g. to read collected results mid-run).
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the sink (e.g. to drain per-event results while
    /// embedding the extractor in a larger observer, as the Dynamo engine
    /// does).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Consumes the extractor, returning the sink and the path table.
    pub fn into_parts(self) -> (S, PathTable) {
        (self.sink, self.table)
    }

    /// Consumes the extractor, returning only the path table.
    pub fn into_table(self) -> PathTable {
        self.table
    }

    /// The interned paths so far.
    pub fn table(&self) -> &PathTable {
        &self.table
    }

    fn begin(&mut self, block: BlockId, kind: PathStartKind, block_size: u32) {
        self.sig.reset(block);
        self.start_kind = kind;
        self.pending_calls = 0;
        self.blocks = 1;
        self.insts = block_size;
        self.active = true;
    }

    fn finish(&mut self, end: PathEndKind) {
        if !self.active {
            return;
        }
        let head = self.sig.start();
        let id = self.table.intern(
            &self.sig,
            PathInfo {
                head,
                blocks: self.blocks,
                insts: self.insts,
                cond_branches: self.sig.history_len(),
                indirects: self.sig.indirect_len() as u32,
            },
        );
        let exec = PathExecution {
            path: id,
            head,
            start: self.start_kind,
            end,
            blocks: self.blocks,
            insts: self.insts,
        };
        self.active = false;
        hotpath_telemetry::emit!(hotpath_telemetry::Event::PathCompleted {
            path: id.index() as u32,
            head: head.as_u32(),
            blocks: exec.blocks,
            insts: exec.insts,
            start: exec.start.as_str(),
            end: exec.end.as_str(),
        });
        self.sink.on_path(&exec);
    }

    fn extend(&mut self, event: &BlockEvent) {
        match event.kind {
            TransferKind::BranchTaken => self.sig.push_bit(true),
            TransferKind::BranchNotTaken => self.sig.push_bit(false),
            TransferKind::Indirect => self.sig.push_indirect(event.block),
            // A return that does not terminate the path crosses out of the
            // frame the path started in; like an indirect branch, its
            // dynamic target is part of the path identity.
            TransferKind::Return => self.sig.push_indirect(event.block),
            TransferKind::Jump | TransferKind::Call | TransferKind::Start => {}
        }
        self.blocks += 1;
        self.insts += event.block_size;
    }
}

impl<S: PathSink> ExecutionObserver for PathExtractor<S> {
    fn on_block(&mut self, event: &BlockEvent) {
        if event.kind == TransferKind::Start {
            self.begin(event.block, PathStartKind::Entry, event.block_size);
            return;
        }

        // Decide whether the incoming transfer ends the current path.
        let is_branch = !matches!(event.kind, TransferKind::Call | TransferKind::Return);
        let backward_ends =
            event.backward && (is_branch || self.rule == BackwardRule::AllTransfers);
        let mut end: Option<PathEndKind> = None;
        match event.kind {
            TransferKind::Call => self.pending_calls += 1,
            TransferKind::Return if self.pending_calls > 0 => {
                self.pending_calls -= 1;
                if self.pending_calls == 0 {
                    // The return matching the first in-path call.
                    end = Some(PathEndKind::CallReturn);
                }
            }
            _ => {}
        }
        if backward_ends {
            end = Some(PathEndKind::BackwardBranch);
        } else if end.is_none() && self.blocks >= self.cap {
            end = Some(PathEndKind::Capped);
        }

        match end {
            Some(reason) => {
                self.finish(reason);
                let kind = if backward_ends {
                    PathStartKind::BackwardTarget
                } else {
                    PathStartKind::Continuation
                };
                self.begin(event.block, kind, event.block_size);
            }
            None => self.extend(event),
        }
    }

    fn on_halt(&mut self) {
        self.finish(PathEndKind::ProgramEnd);
        self.sink.on_end();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
    use hotpath_ir::{CmpOp, GlobalReg, Program};
    use hotpath_vm::Vm;

    /// Counted loop with an if/else body, blocks created in layout order:
    /// entry(b0), header(b1), body(b2), odd(b3), even(b4), latch(b5),
    /// exit(b6). Two distinct loop-iteration paths.
    fn loop_program(trip: i64) -> Program {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let odd_b = fb.new_block();
        let even_b = fb.new_block();
        let latch = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, trip);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let par = fb.reg();
        fb.and_imm(par, i, 1);
        fb.branch(par, odd_b, even_b);
        fb.switch_to(odd_b);
        fb.jump(latch);
        fb.switch_to(even_b);
        fb.jump(latch);
        fb.switch_to(latch);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.finish().unwrap()
    }

    fn extract(p: &Program) -> (CollectSink, PathTable) {
        let mut ex = PathExtractor::new(CollectSink::default());
        Vm::new(p).run(&mut ex).unwrap();
        ex.into_parts()
    }

    #[test]
    fn loop_paths_partition_the_run() {
        let p = loop_program(10);
        let mut ex = PathExtractor::new(CollectSink::default());
        let stats = Vm::new(&p).run(&mut ex).unwrap();
        let (sink, table) = ex.into_parts();
        assert!(sink.ended);
        // Paths partition the block stream exactly.
        let total_blocks: u64 = sink.paths.iter().map(|e| e.blocks as u64).sum();
        assert_eq!(total_blocks, stats.blocks_executed);
        let total_insts: u64 = sink.paths.iter().map(|e| e.insts as u64).sum();
        assert_eq!(total_insts, stats.insts_executed);
        // Distinct paths: entry prefix (even iter 0), odd iteration, even
        // iteration, final header->exit.
        assert_eq!(table.len(), 4);
        // Executions: entry path + 9 further iterations + final exit path.
        assert_eq!(sink.paths.len(), 11);
        assert_eq!(
            sink.paths
                .iter()
                .filter(|e| e.end == PathEndKind::BackwardBranch)
                .count(),
            10
        );
        assert_eq!(sink.paths[0].start, PathStartKind::Entry);
        assert!(sink.paths[1..]
            .iter()
            .all(|e| e.start == PathStartKind::BackwardTarget));
        assert_eq!(sink.paths.last().unwrap().end, PathEndKind::ProgramEnd);
    }

    #[test]
    fn alternating_iterations_intern_two_loop_paths() {
        let p = loop_program(8);
        let (sink, table) = extract(&p);
        let iter_ids: Vec<PathId> = sink
            .paths
            .iter()
            .filter(|e| {
                e.end == PathEndKind::BackwardBranch && e.start == PathStartKind::BackwardTarget
            })
            .map(|e| e.path)
            .collect();
        let mut unique = iter_ids.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), 2, "odd and even iteration paths");
        assert_ne!(iter_ids[0], iter_ids[1]);
        assert_eq!(iter_ids[0], iter_ids[2]);
        // Both loop paths share the loop header as their head; the NET
        // counter space for this loop is a single counter (paper §4.1).
        let heads: Vec<_> = unique.iter().map(|&id| table.info(id).head).collect();
        assert_eq!(heads[0], heads[1]);
        // Heads across all interned paths: the program entry block and the
        // loop header (the final header->exit path also starts at the
        // header).
        assert_eq!(table.unique_heads(), 2);
    }

    /// A loop body that calls a helper: under the BranchesOnly rule the
    /// path extends into the callee and ends at the matching return, and
    /// the continuation is NOT a NET-countable head.
    #[test]
    fn in_path_call_terminates_at_matching_return() {
        let mut pb = ProgramBuilder::new();
        let helper = pb.declare("helper");

        // Helper declared (and laid out) first: the call is backward, the
        // return forward — the default rule ignores both.
        let mut hb = FunctionBuilder::new("helper");
        let x = hb.reg();
        hb.get_global(x, GlobalReg::new(0));
        hb.add_imm(x, x, 1);
        hb.set_global(GlobalReg::new(0), x);
        hb.ret();
        pb.add_function(hb).unwrap();

        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let after_call = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, 5);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.add_imm(i, i, 1);
        fb.call(helper, after_call);
        fb.switch_to(after_call);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        pb.add_function(fb).unwrap();

        let p = pb.finish().unwrap();
        let mut ex = PathExtractor::with_options(
            CollectSink::default(),
            DEFAULT_PATH_CAP,
            BackwardRule::BranchesOnly,
        );
        let stats = Vm::new(&p).run(&mut ex).unwrap();
        let (sink, table) = ex.into_parts();
        let total_blocks: u64 = sink.paths.iter().map(|e| e.blocks as u64).sum();
        assert_eq!(total_blocks, stats.blocks_executed, "paths partition run");
        // One CallReturn termination per loop iteration.
        assert_eq!(
            sink.paths
                .iter()
                .filter(|e| e.end == PathEndKind::CallReturn)
                .count(),
            5
        );
        // Each is followed by a continuation, which is not NET-countable.
        for w in sink.paths.windows(2) {
            if w[0].end == PathEndKind::CallReturn {
                assert_eq!(w[1].start, PathStartKind::Continuation);
                assert!(!w[1].start.is_net_countable());
            }
        }
        // Unique heads: main entry, loop header, after_call continuation.
        assert_eq!(table.unique_heads(), 3);
    }

    /// Under the (default) `AllTransfers` rule the backward call ends
    /// paths and the callee entry becomes a head.
    #[test]
    fn all_transfers_rule_makes_callee_entry_a_head() {
        let mut pb = ProgramBuilder::new();
        let helper = pb.declare("helper");
        let mut hb = FunctionBuilder::new("helper");
        hb.ret();
        pb.add_function(hb).unwrap();

        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let after_call = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, 3);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.add_imm(i, i, 1);
        fb.call(helper, after_call);
        fb.switch_to(after_call);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        pb.add_function(fb).unwrap();
        let p = pb.finish().unwrap();

        let mut ex = PathExtractor::with_options(
            CollectSink::default(),
            DEFAULT_PATH_CAP,
            BackwardRule::AllTransfers,
        );
        let stats = Vm::new(&p).run(&mut ex).unwrap();
        let (sink, _) = ex.into_parts();
        let total_blocks: u64 = sink.paths.iter().map(|e| e.blocks as u64).sum();
        assert_eq!(total_blocks, stats.blocks_executed);
        // The backward call ends a path whose successor path starts at the
        // helper's entry (global block 0: helper is laid out first) as a
        // BackwardTarget.
        let helper_entry = hotpath_ir::BlockId::new(0);
        let helper_entry_head_paths = sink
            .paths
            .iter()
            .filter(|e| e.start == PathStartKind::BackwardTarget && e.head == helper_entry)
            .count();
        assert!(helper_entry_head_paths >= 3, "callee entry became a head");
    }

    #[test]
    fn cap_splits_long_paths() {
        // A long straight-line chain of blocks, then halt.
        let mut fb = FunctionBuilder::new("main");
        for _ in 0..20 {
            let nb = fb.new_block();
            fb.jump(nb);
            fb.switch_to(nb);
        }
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        let p = pb.finish().unwrap();

        let mut ex = PathExtractor::with_cap(CollectSink::default(), 4);
        let stats = Vm::new(&p).run(&mut ex).unwrap();
        let (sink, _) = ex.into_parts();
        let total: u64 = sink.paths.iter().map(|e| e.blocks as u64).sum();
        assert_eq!(total, stats.blocks_executed);
        assert!(sink.paths.iter().any(|e| e.end == PathEndKind::Capped));
        assert!(sink.paths.iter().all(|e| e.blocks <= 4));
        for w in sink.paths.windows(2) {
            if w[0].end == PathEndKind::Capped {
                assert_eq!(w[1].start, PathStartKind::Continuation);
            }
        }
    }

    #[test]
    #[should_panic(expected = "path cap must be positive")]
    fn zero_cap_panics() {
        let _ = PathExtractor::with_cap(CollectSink::default(), 0);
    }

    #[test]
    fn start_kind_tags_roundtrip() {
        for k in [
            PathStartKind::Entry,
            PathStartKind::BackwardTarget,
            PathStartKind::Continuation,
        ] {
            assert_eq!(PathStartKind::from_tag(k.tag()), Some(k));
        }
        assert_eq!(PathStartKind::from_tag(9), None);
    }

    #[test]
    fn replayed_trace_extracts_identical_paths() {
        let p = loop_program(6);
        // Live extraction.
        let (live, _) = extract(&p);
        // Trace, then replay through a fresh extractor.
        let mut rec = hotpath_vm::TraceRecorder::new();
        Vm::new(&p).run(&mut rec).unwrap();
        let trace = rec.into_trace();
        let mut ex = PathExtractor::new(CollectSink::default());
        trace.replay(&mut ex);
        let (replayed, _) = ex.into_parts();
        assert_eq!(live.paths, replayed.paths);
        assert!(replayed.ended);
    }
}
