//! Path profiles: frequency distributions, flow, and hot sets.

use crate::path::{PathExecution, PathSink};
use crate::signature::{PathId, PathTable};

/// A frequency distribution over interned paths — the paper's
/// `freq(p)` / `Flow` (§2).
///
/// Collect one by using it as the [`PathSink`] of a
/// [`PathExtractor`](crate::PathExtractor), or build it from a recorded
/// [`PathStream`](crate::PathStream).
#[derive(Clone, Default, Debug)]
pub struct PathProfile {
    counts: Vec<u64>,
}

impl PathProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one execution of `path`.
    pub fn record(&mut self, path: PathId) {
        let i = path.index();
        if i >= self.counts.len() {
            self.counts.resize(i + 1, 0);
        }
        self.counts[i] += 1;
    }

    /// Execution frequency of `path` (`freq(p)`).
    pub fn freq(&self, path: PathId) -> u64 {
        self.counts.get(path.index()).copied().unwrap_or(0)
    }

    /// Total flow: the sum of all path frequencies.
    pub fn flow(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Number of distinct paths with nonzero frequency.
    pub fn path_count(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Iterates over `(PathId, freq)` pairs with nonzero frequency.
    pub fn iter(&self) -> impl Iterator<Item = (PathId, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (PathId::new(i as u32), c))
    }

    /// The hot-path set for a frequency threshold expressed as a fraction
    /// of total flow (the paper uses 0.1%, i.e. `0.001`).
    ///
    /// A path is hot if `freq(p) >= fraction * flow` and `freq(p) > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn hot_set(&self, fraction: f64) -> HotPathSet {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "hot fraction must be in (0, 1], got {fraction}"
        );
        let flow = self.flow();
        let threshold = fraction * flow as f64;
        let mut paths: Vec<PathId> = Vec::new();
        let mut hot_flow = 0u64;
        for (id, freq) in self.iter() {
            if freq as f64 >= threshold {
                paths.push(id);
                hot_flow += freq;
            }
        }
        HotPathSet {
            paths,
            hot_flow,
            total_flow: flow,
            fraction,
        }
    }

    /// The `n` most frequent paths, most frequent first (frequency ties
    /// broken by path id for determinism).
    pub fn top_n(&self, n: usize) -> Vec<(PathId, u64)> {
        let mut all: Vec<(PathId, u64)> = self.iter().collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }
}

impl PathSink for PathProfile {
    fn on_path(&mut self, exec: &PathExecution) {
        self.record(exec.path);
    }
}

/// The `HotPath_h` set of paper §3: all paths whose frequency meets the
/// hot threshold, plus the flow bookkeeping Table 1 reports.
#[derive(Clone, PartialEq, Debug)]
pub struct HotPathSet {
    paths: Vec<PathId>,
    hot_flow: u64,
    total_flow: u64,
    fraction: f64,
}

impl HotPathSet {
    /// The hot paths, in path-id order.
    pub fn paths(&self) -> &[PathId] {
        &self.paths
    }

    /// Number of hot paths (Table 1, `#Paths` of the hot set).
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True if no path met the threshold.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// Membership test (binary search; the set is ordered).
    pub fn contains(&self, path: PathId) -> bool {
        self.paths.binary_search(&path).is_ok()
    }

    /// Flow captured by the hot paths (`freq(HotPath)`).
    pub fn hot_flow(&self) -> u64 {
        self.hot_flow
    }

    /// Total flow of the profile the set was computed from.
    pub fn total_flow(&self) -> u64 {
        self.total_flow
    }

    /// Percentage of total flow captured by the hot set (Table 1,
    /// `%Flow`).
    pub fn flow_percentage(&self) -> f64 {
        if self.total_flow == 0 {
            0.0
        } else {
            self.hot_flow as f64 / self.total_flow as f64 * 100.0
        }
    }

    /// The threshold fraction the set was computed with.
    pub fn fraction(&self) -> f64 {
        self.fraction
    }

    /// Builds a dense membership bitmap covering `table` (fast lookups in
    /// replay loops).
    pub fn membership_bitmap(&self, table: &PathTable) -> Vec<bool> {
        let mut bits = vec![false; table.len()];
        for p in &self.paths {
            if p.index() < bits.len() {
                bits[p.index()] = true;
            }
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(counts: &[(u32, u64)]) -> PathProfile {
        let mut p = PathProfile::new();
        for &(id, n) in counts {
            for _ in 0..n {
                p.record(PathId::new(id));
            }
        }
        p
    }

    #[test]
    fn freq_and_flow() {
        let p = profile(&[(0, 5), (2, 3)]);
        assert_eq!(p.freq(PathId::new(0)), 5);
        assert_eq!(p.freq(PathId::new(1)), 0);
        assert_eq!(p.freq(PathId::new(2)), 3);
        assert_eq!(p.freq(PathId::new(99)), 0);
        assert_eq!(p.flow(), 8);
        assert_eq!(p.path_count(), 2);
    }

    #[test]
    fn hot_set_thresholding() {
        // flow = 1000; 0.1% threshold = 1.0, so paths with freq >= 1 are
        // hot; with 10% threshold = 100 only the dominant path is hot.
        let p = profile(&[(0, 900), (1, 99), (2, 1)]);
        let all_hot = p.hot_set(0.001);
        assert_eq!(all_hot.len(), 3);
        assert_eq!(all_hot.hot_flow(), 1000);
        assert!((all_hot.flow_percentage() - 100.0).abs() < 1e-9);

        let hot = p.hot_set(0.10);
        assert_eq!(hot.paths(), &[PathId::new(0)]);
        assert!(hot.contains(PathId::new(0)));
        assert!(!hot.contains(PathId::new(1)));
        assert_eq!(hot.hot_flow(), 900);
        assert!((hot.flow_percentage() - 90.0).abs() < 1e-9);
        assert_eq!(hot.total_flow(), 1000);
        assert_eq!(hot.fraction(), 0.10);
    }

    #[test]
    fn empty_profile_has_empty_hot_set() {
        let p = PathProfile::new();
        let h = p.hot_set(0.001);
        assert!(h.is_empty());
        assert_eq!(h.flow_percentage(), 0.0);
    }

    #[test]
    #[should_panic(expected = "hot fraction")]
    fn bad_fraction_panics() {
        let _ = PathProfile::new().hot_set(0.0);
    }

    #[test]
    fn top_n_orders_by_frequency() {
        let p = profile(&[(0, 5), (1, 50), (2, 20), (3, 50)]);
        let top = p.top_n(3);
        assert_eq!(
            top,
            vec![
                (PathId::new(1), 50),
                (PathId::new(3), 50),
                (PathId::new(2), 20)
            ]
        );
    }

    #[test]
    fn sink_impl_records() {
        use crate::path::{PathEndKind, PathStartKind};
        use hotpath_ir::BlockId;
        let mut p = PathProfile::new();
        let exec = PathExecution {
            path: PathId::new(4),
            head: BlockId::new(0),
            start: PathStartKind::Entry,
            end: PathEndKind::ProgramEnd,
            blocks: 1,
            insts: 1,
        };
        p.on_path(&exec);
        p.on_path(&exec);
        assert_eq!(p.freq(PathId::new(4)), 2);
    }
}
