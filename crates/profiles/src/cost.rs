//! Accounting of runtime profiling operations.
//!
//! The paper's central overhead argument (§4) compares schemes by the
//! *profiling operations* they execute: bit tracing shifts a history bit on
//! every branch and updates a path table at every path end; Ball–Larus
//! updates a path register on instrumented (chord) edges; NET bumps a
//! single counter per backward-taken-branch target. [`ProfilingCost`]
//! tallies those operations so the Dynamo cost model (and the Criterion
//! micro-benches) can charge them.

use std::ops::{Add, AddAssign};

/// Counts of runtime profiling operations performed by a scheme.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ProfilingCost {
    /// History-register shift operations (bit tracing: one per conditional
    /// branch on a profiled path).
    pub history_shifts: u64,
    /// Indirect-target recordings (bit tracing: one per indirect transfer
    /// on a profiled path).
    pub indirect_records: u64,
    /// Plain counter increments (NET head counters, Ball–Larus path
    /// register updates on chord edges).
    pub counter_increments: u64,
    /// Hash/path-table updates (one per completed profiled path).
    pub table_updates: u64,
}

impl ProfilingCost {
    /// A zeroed cost.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of operations, unweighted.
    pub fn total_ops(&self) -> u64 {
        self.history_shifts + self.indirect_records + self.counter_increments + self.table_updates
    }

    /// Weighted cost in abstract cycles: cheap register ops at `cheap`
    /// cycles each, table updates at `table` cycles each.
    pub fn weighted(&self, cheap: f64, table: f64) -> f64 {
        (self.history_shifts + self.indirect_records + self.counter_increments) as f64 * cheap
            + self.table_updates as f64 * table
    }
}

impl Add for ProfilingCost {
    type Output = ProfilingCost;

    fn add(self, rhs: ProfilingCost) -> ProfilingCost {
        ProfilingCost {
            history_shifts: self.history_shifts + rhs.history_shifts,
            indirect_records: self.indirect_records + rhs.indirect_records,
            counter_increments: self.counter_increments + rhs.counter_increments,
            table_updates: self.table_updates + rhs.table_updates,
        }
    }
}

impl AddAssign for ProfilingCost {
    fn add_assign(&mut self, rhs: ProfilingCost) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_weighting() {
        let c = ProfilingCost {
            history_shifts: 10,
            indirect_records: 2,
            counter_increments: 5,
            table_updates: 3,
        };
        assert_eq!(c.total_ops(), 20);
        let w = c.weighted(1.0, 10.0);
        assert!((w - (17.0 + 30.0)).abs() < 1e-9);
    }

    #[test]
    fn add_combines_fields() {
        let a = ProfilingCost {
            history_shifts: 1,
            indirect_records: 2,
            counter_increments: 3,
            table_updates: 4,
        };
        let mut b = a;
        b += a;
        assert_eq!(b, a + a);
        assert_eq!(b.history_shifts, 2);
        assert_eq!(b.table_updates, 8);
    }
}
