//! Recording the block sequence of every distinct path.
//!
//! The extractor identifies paths by signature; several analyses (the
//! Boa phantom check, the edge-vs-path showdown) need the *block
//! sequences* behind those ids. [`SequenceRecorder`] wraps an extractor
//! and stores each path's sequence the first time it completes.

use hotpath_vm::{BlockEvent, ExecutionObserver};

use crate::path::{PathExecution, PathExtractor, PathSink};
use crate::signature::{PathId, PathTable};
use crate::stream::{PathStream, StreamingSink};

#[derive(Default, Debug)]
struct TapSink {
    inner: StreamingSink,
    last: Option<PathExecution>,
}

impl PathSink for TapSink {
    fn on_path(&mut self, exec: &PathExecution) {
        self.inner.on_path(exec);
        self.last = Some(*exec);
    }

    fn on_end(&mut self) {
        self.inner.on_end();
    }
}

/// Records a run's path stream *and* the block sequence of each distinct
/// path.
#[derive(Debug)]
pub struct SequenceRecorder {
    extractor: PathExtractor<TapSink>,
    cur: Vec<u32>,
    sequences: Vec<Vec<u32>>,
}

impl SequenceRecorder {
    /// Creates a recorder with default extractor options.
    pub fn new() -> Self {
        SequenceRecorder {
            extractor: PathExtractor::new(TapSink::default()),
            cur: Vec::new(),
            sequences: Vec::new(),
        }
    }

    fn on_completion(&mut self) {
        if let Some(exec) = self.extractor.sink_mut().last.take() {
            let blocks = std::mem::take(&mut self.cur);
            let idx = exec.path.index();
            if idx >= self.sequences.len() {
                self.sequences.resize(idx + 1, Vec::new());
            }
            if self.sequences[idx].is_empty() {
                self.sequences[idx] = blocks;
            }
        }
    }

    /// Finishes recording: the stream, the table, and per-path block
    /// sequences (indexed by [`PathId`]).
    pub fn into_parts(self) -> (PathStream, PathTable, Vec<Vec<u32>>) {
        let SequenceRecorder {
            extractor,
            sequences,
            ..
        } = self;
        let (sink, table) = extractor.into_parts();
        (sink.inner.into_stream(), table, sequences)
    }

    /// The sequence of a path recorded so far, if any.
    pub fn sequence(&self, path: PathId) -> Option<&[u32]> {
        self.sequences
            .get(path.index())
            .filter(|s| !s.is_empty())
            .map(|s| s.as_slice())
    }
}

impl Default for SequenceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl ExecutionObserver for SequenceRecorder {
    fn on_block(&mut self, event: &BlockEvent) {
        self.extractor.on_block(event);
        self.on_completion();
        self.cur.push(event.block.as_u32());
    }

    fn on_halt(&mut self) {
        self.extractor.on_halt();
        self.on_completion();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
    use hotpath_ir::CmpOp;
    use hotpath_vm::Vm;

    #[test]
    fn sequences_match_path_info() {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, 5);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        let p = pb.finish().unwrap();

        let mut rec = SequenceRecorder::new();
        Vm::new(&p).run(&mut rec).unwrap();
        let (stream, table, seqs) = rec.into_parts();
        assert!(!stream.is_empty());
        for (id, info) in table.iter() {
            let seq = &seqs[id.index()];
            assert_eq!(seq.len(), info.blocks as usize, "{id}");
            assert_eq!(seq[0], info.head.as_u32(), "{id} head");
        }
    }
}
