//! Young & Smith k-bounded general path profiling (paper §2).
//!
//! A *k-bounded general path* is an intraprocedural path of at most `k`
//! branches that, unlike a Ball–Larus path, may include backward edges.
//! Young & Smith compute them at runtime with a k-entry FIFO of the most
//! recently executed branches; each executed branch defines a new general
//! path — the current FIFO contents — whose counter is bumped (they use a
//! lazy update; we charge one table update per branch, its cost
//! upper bound).

use hotpath_ir::fasthash::FxHashMap;
use hotpath_vm::{BlockEvent, ExecutionObserver, TransferKind};

use crate::cost::ProfilingCost;

/// Profiles k-bounded general paths over the dynamic branch stream.
///
/// The profiled unit is the sequence of the last `k` *branch targets*
/// (conditional or indirect), a faithful dynamic encoding of the original's
/// branch FIFO.
#[derive(Debug)]
pub struct KBoundedProfiler {
    k: usize,
    window: Vec<u32>,
    counts: FxHashMap<Box<[u32]>, u64>,
    cost: ProfilingCost,
    branches: u64,
}

impl KBoundedProfiler {
    /// Creates a profiler with bound `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        KBoundedProfiler {
            k,
            window: Vec::with_capacity(k),
            counts: FxHashMap::default(),
            cost: ProfilingCost::new(),
            branches: 0,
        }
    }

    /// The bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct general paths observed.
    pub fn distinct_paths(&self) -> usize {
        self.counts.len()
    }

    /// Total branches processed (each defines one general-path
    /// observation).
    pub fn observations(&self) -> u64 {
        self.branches
    }

    /// Count for a specific window of branch targets.
    pub fn count(&self, window: &[u32]) -> u64 {
        self.counts.get(window).copied().unwrap_or(0)
    }

    /// The `n` most frequent general paths, most frequent first.
    pub fn top_n(&self, n: usize) -> Vec<(Vec<u32>, u64)> {
        let mut all: Vec<(Vec<u32>, u64)> =
            self.counts.iter().map(|(w, &c)| (w.to_vec(), c)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(n);
        all
    }

    /// Profiling operations performed so far.
    pub fn cost(&self) -> &ProfilingCost {
        &self.cost
    }
}

impl ExecutionObserver for KBoundedProfiler {
    fn on_block(&mut self, event: &BlockEvent) {
        let is_branch = matches!(
            event.kind,
            TransferKind::BranchTaken | TransferKind::BranchNotTaken | TransferKind::Indirect
        );
        if !is_branch {
            return;
        }
        self.branches += 1;
        // FIFO update: drop the oldest entry once full, push the new
        // branch target.
        if self.window.len() == self.k {
            self.window.remove(0);
        }
        self.window.push(event.block.as_u32());
        self.cost.history_shifts += 1;
        self.cost.table_updates += 1;
        match self.counts.get_mut(self.window.as_slice()) {
            Some(c) => *c += 1,
            None => {
                self.counts
                    .insert(self.window.clone().into_boxed_slice(), 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
    use hotpath_ir::CmpOp;
    use hotpath_vm::Vm;

    fn loop_program(trip: i64) -> hotpath_ir::Program {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, trip);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.finish().unwrap()
    }

    #[test]
    fn observes_every_branch() {
        let p = loop_program(10);
        let mut prof = KBoundedProfiler::new(4);
        let stats = Vm::new(&p).run(&mut prof).unwrap();
        assert_eq!(
            prof.observations(),
            stats.cond_branches + stats.indirect_branches
        );
        assert_eq!(prof.cost().table_updates, prof.observations());
    }

    #[test]
    fn window_bounded_by_k() {
        let p = loop_program(20);
        let mut prof = KBoundedProfiler::new(3);
        Vm::new(&p).run(&mut prof).unwrap();
        for (w, _) in prof.top_n(usize::MAX) {
            assert!(w.len() <= 3);
        }
    }

    #[test]
    fn steady_loop_converges_to_one_dominant_window() {
        let p = loop_program(50);
        let mut prof = KBoundedProfiler::new(2);
        Vm::new(&p).run(&mut prof).unwrap();
        let top = prof.top_n(1);
        // The steady-state window (body, body, ...) dominates.
        assert!(top[0].1 >= 45, "dominant window count {}", top[0].1);
        assert!(prof.count(&top[0].0) == top[0].1);
    }

    #[test]
    fn k_one_degenerates_to_branch_target_profile() {
        let p = loop_program(10);
        let mut prof = KBoundedProfiler::new(1);
        Vm::new(&p).run(&mut prof).unwrap();
        // Two distinct branch targets: body (taken) and exit (not taken).
        assert_eq!(prof.distinct_paths(), 2);
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        let _ = KBoundedProfiler::new(0);
    }
}
