//! Runtime Ball–Larus path profiling driven by the VM event stream.
//!
//! This is the "existing offline path profiling scheme" of paper §2: the
//! per-function [`BallLarus`] numbering places increments on spanning-tree
//! chords; at runtime a path register accumulates them and indexes a path
//! table at every path end. Paths are intraprocedural (they pause across
//! calls and resume after the matching return), exactly as in Ball & Larus.

use hotpath_ir::ball_larus::{BallLarus, BallLarusError, Transfer};
use hotpath_ir::fasthash::FxHashMap;
use hotpath_ir::{Layout, LocalBlockId, Program};
use hotpath_vm::{BlockEvent, ExecutionObserver, TransferKind};

use crate::cost::ProfilingCost;

/// A saved caller context while a callee runs.
#[derive(Clone, Copy, Debug)]
struct SavedFrame {
    func: u32,
    reg: i128,
    /// The caller block containing the call; its CFG edge to the return
    /// continuation is traversed when the callee returns.
    call_block: LocalBlockId,
}

/// Collects a Ball–Larus path profile for every function of a program.
#[derive(Debug)]
pub struct BallLarusProfiler {
    layout: Layout,
    numberings: Vec<BallLarus>,
    counts: FxHashMap<(u32, u128), u64>,
    stack: Vec<SavedFrame>,
    cur_func: u32,
    reg: i128,
    last_local: LocalBlockId,
    cost: ProfilingCost,
}

impl BallLarusProfiler {
    /// Builds numberings for all functions of `program`.
    ///
    /// # Errors
    ///
    /// Propagates [`BallLarusError`] if any function is irreducible or its
    /// path space overflows.
    pub fn new(program: &Program) -> Result<Self, BallLarusError> {
        let numberings = program
            .functions
            .iter()
            .map(BallLarus::new)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(BallLarusProfiler {
            layout: Layout::new(program),
            numberings,
            counts: FxHashMap::default(),
            stack: Vec::new(),
            cur_func: 0,
            reg: 0,
            last_local: LocalBlockId::new(0),
            cost: ProfilingCost::new(),
        })
    }

    /// Per-function numbering (e.g. to decode counted path ids).
    pub fn numbering(&self, func: hotpath_ir::FuncId) -> &BallLarus {
        &self.numberings[func.index()]
    }

    /// Iterates over `((FuncId, path id), count)` entries.
    pub fn iter(&self) -> impl Iterator<Item = ((hotpath_ir::FuncId, u128), u64)> + '_ {
        self.counts
            .iter()
            .map(|(&(f, p), &c)| ((hotpath_ir::FuncId::new(f), p), c))
    }

    /// Number of distinct (function, path) pairs counted.
    pub fn distinct_paths(&self) -> usize {
        self.counts.len()
    }

    /// Total number of counted path executions.
    pub fn flow(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Count for one function path.
    pub fn count(&self, func: hotpath_ir::FuncId, path: u128) -> u64 {
        self.counts
            .get(&(func.index() as u32, path))
            .copied()
            .unwrap_or(0)
    }

    /// Profiling operations performed so far.
    pub fn cost(&self) -> &ProfilingCost {
        &self.cost
    }

    fn bump(&mut self, path_reg: i128) {
        self.cost.table_updates += 1;
        let id = u128::try_from(path_reg).unwrap_or_else(|_| {
            panic!(
                "negative Ball-Larus path id {path_reg} in fn{}",
                self.cur_func
            )
        });
        *self.counts.entry((self.cur_func, id)).or_insert(0) += 1;
    }
}

impl ExecutionObserver for BallLarusProfiler {
    fn on_block(&mut self, event: &BlockEvent) {
        let (to_func, to_local) = self.layout.location(event.block);
        match event.kind {
            TransferKind::Start => {
                self.cur_func = to_func.index() as u32;
                self.reg = self.numberings[to_func.index()]
                    .path_start(to_local)
                    .expect("function entry starts a path");
            }
            TransferKind::Jump
            | TransferKind::BranchTaken
            | TransferKind::BranchNotTaken
            | TransferKind::Indirect => {
                let from_local = self.last_local;
                match self.numberings[self.cur_func as usize].transfer(from_local, to_local) {
                    Some(Transfer::Advance(inc)) => {
                        self.reg += inc;
                        if inc != 0 {
                            self.cost.counter_increments += 1;
                        }
                    }
                    Some(Transfer::EndAndRestart { end_inc, restart }) => {
                        let finished = self.reg + end_inc;
                        self.bump(finished);
                        self.reg = restart;
                    }
                    None => {
                        debug_assert!(false, "dynamic transfer is not a CFG edge");
                    }
                }
            }
            TransferKind::Call => {
                self.stack.push(SavedFrame {
                    func: self.cur_func,
                    reg: self.reg,
                    call_block: self.last_local,
                });
                self.cur_func = to_func.index() as u32;
                self.reg = self.numberings[to_func.index()]
                    .path_start(to_local)
                    .expect("callee entry starts a path");
            }
            TransferKind::Return => {
                // Finish the callee's current path at its return block.
                if let Some(exit_inc) =
                    self.numberings[self.cur_func as usize].block_exit_inc(self.last_local)
                {
                    let finished = self.reg + exit_inc;
                    self.bump(finished);
                } else {
                    debug_assert!(false, "return block has no exit increment");
                }
                let frame = self.stack.pop().expect("return matches a call");
                self.cur_func = frame.func;
                self.reg = frame.reg;
                // Resume the caller's path across the call edge.
                match self.numberings[self.cur_func as usize].transfer(frame.call_block, to_local) {
                    Some(Transfer::Advance(inc)) => {
                        self.reg += inc;
                        if inc != 0 {
                            self.cost.counter_increments += 1;
                        }
                    }
                    Some(Transfer::EndAndRestart { .. }) | None => {
                        debug_assert!(false, "call continuation edge must be a forward CFG edge");
                    }
                }
            }
        }
        self.last_local = to_local;
    }

    fn on_halt(&mut self) {
        // Finish the path of the halting function; paths of suspended
        // callers are abandoned (the program ended mid-path).
        if let Some(exit_inc) =
            self.numberings[self.cur_func as usize].block_exit_inc(self.last_local)
        {
            let finished = self.reg + exit_inc;
            self.bump(finished);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
    use hotpath_ir::{CmpOp, FuncId};
    use hotpath_vm::Vm;

    /// Loop with if/else body: iteration paths alternate between two BL
    /// path ids.
    #[test]
    fn loop_profile_counts_match_iterations() {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let odd_b = fb.new_block();
        let even_b = fb.new_block();
        let latch = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, 10);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let par = fb.reg();
        fb.and_imm(par, i, 1);
        fb.branch(par, odd_b, even_b);
        fb.switch_to(odd_b);
        fb.jump(latch);
        fb.switch_to(even_b);
        fb.jump(latch);
        fb.switch_to(latch);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        let p = pb.finish().unwrap();

        let mut profiler = BallLarusProfiler::new(&p).unwrap();
        Vm::new(&p).run(&mut profiler).unwrap();
        // 10 loop iterations end at the latch back edge; plus the final
        // header->exit path ends at halt. The entry path (b0->header...)
        // also ends at the first back edge. Total counted = 11.
        assert_eq!(profiler.flow(), 11);
        // Distinct intraprocedural paths: entry+even-iteration,
        // header+odd-iteration, header+even-iteration, header->exit.
        assert_eq!(profiler.distinct_paths(), 4);
        // Each count's decoded block sequence starts at a path-start block.
        let main = FuncId::new(0);
        for ((f, id), count) in profiler.iter() {
            assert_eq!(f, main);
            assert!(count > 0);
            let blocks = profiler.numbering(f).decode(id).expect("countable id");
            assert!(!blocks.is_empty());
        }
        // 5 odd iterations and 4 even header-started iterations (iteration
        // 0 runs on the entry path).
        let counts: Vec<u64> = {
            let mut v: Vec<u64> = profiler.iter().map(|(_, c)| c).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(counts, vec![1, 1, 4, 5]);
    }

    /// Calls pause the caller's path and resume it at the return.
    #[test]
    fn calls_pause_and_resume_caller_paths() {
        let mut pb = ProgramBuilder::new();
        let helper = pb.declare("helper");
        let mut hb = FunctionBuilder::new("helper");
        hb.ret();
        pb.add_function(hb).unwrap();

        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let after = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, 4);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.add_imm(i, i, 1);
        fb.call(helper, after);
        fb.switch_to(after);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        pb.add_function(fb).unwrap();
        let p = pb.finish().unwrap();

        let mut profiler = BallLarusProfiler::new(&p).unwrap();
        Vm::new(&p).run(&mut profiler).unwrap();
        // Helper runs 4 one-block paths; main runs 4 iteration paths plus
        // the final exit path (entry path merges into iteration 1's path).
        let helper_flow: u64 = profiler
            .iter()
            .filter(|((f, _), _)| *f == helper)
            .map(|(_, c)| c)
            .sum();
        assert_eq!(helper_flow, 4);
        let main_flow = profiler.flow() - helper_flow;
        assert_eq!(main_flow, 5);
        // The helper has exactly one path shape.
        let helper_paths = profiler.iter().filter(|((f, _), _)| *f == helper).count();
        assert_eq!(helper_paths, 1);
    }

    #[test]
    fn cost_counts_table_updates() {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, 6);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        let p = pb.finish().unwrap();
        let mut profiler = BallLarusProfiler::new(&p).unwrap();
        Vm::new(&p).run(&mut profiler).unwrap();
        // One table update per completed path: 6 iterations + final exit.
        assert_eq!(profiler.cost().table_updates, 7);
        assert_eq!(profiler.flow(), 7);
    }
}
