//! Path profiling substrates for the hot-path prediction reproduction.
//!
//! Implements everything §2–3 of Duesterwald & Bala (ASPLOS 2000) builds on:
//!
//! * [`PathSignature`] — *bit tracing*: a path is identified by
//!   `<start>.<branch-history-bits>,<indirect-target-list>`, constructed on
//!   the fly as the program executes (paper §2, Figure 1);
//! * [`PathExtractor`] — the paper's **interprocedural forward path**
//!   definition (§3): a path starts at the target of a backward taken
//!   branch, extends to the next backward taken branch, may cross calls and
//!   returns unless they are backward, and terminates at the return matching
//!   an in-path call, if not earlier;
//! * [`PathTable`] / [`PathProfile`] / [`HotPathSet`] — interning, frequency
//!   distributions, flow, and the 0.1% `HotPath` set of Table 1;
//! * [`PathStream`] — a compact recording of every path execution so τ-sweeps
//!   replay without re-running the VM;
//! * [`BallLarusProfiler`] — runtime path profiling via the Ball–Larus
//!   numbering (spanning-tree instrumented edges), the paper's offline
//!   baseline;
//! * [`KBoundedProfiler`] — Young & Smith k-bounded general paths via a
//!   FIFO of the most recent branches (paper §2);
//! * [`ProfilingCost`] — counts of the runtime profiling operations
//!   (history shifts, counter increments, table updates) that the paper's
//!   overhead argument is about.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ball_larus_profile;
mod cost;
mod edge;
mod kbounded;
mod path;
mod persist;
mod profile;
mod sequences;
mod signature;
mod stream;

pub use ball_larus_profile::BallLarusProfiler;
pub use cost::ProfilingCost;
pub use edge::{estimate_path_freq, showdown, EdgeProfiler, ShowdownReport};
pub use kbounded::KBoundedProfiler;
pub use path::{
    BackwardRule, CollectSink, PathEndKind, PathExecution, PathExtractor, PathSink, PathStartKind,
    DEFAULT_PATH_CAP,
};
pub use persist::{load_run, save_run};
pub use profile::{HotPathSet, PathProfile};
pub use sequences::SequenceRecorder;
pub use signature::{PathId, PathInfo, PathSignature, PathTable};
pub use stream::{PathStream, StreamingSink};
