//! Compact recordings of path-execution streams.
//!
//! The τ-sweeps of Figures 2 and 3 evaluate two schemes at ~16 prediction
//! delays each; re-running the VM for all 32 points would dominate the
//! experiment. [`StreamingSink`] records each path execution in five bytes
//! (path id + start kind), and [`PathStream`] replays the stream through
//! anything that consumes [`PathExecution`]s, reconstructing per-path
//! details from the [`PathTable`].

use crate::path::{PathEndKind, PathExecution, PathSink, PathStartKind};
use crate::signature::{PathId, PathTable};

/// A [`PathSink`] that records the execution stream compactly.
#[derive(Clone, Default, Debug)]
pub struct StreamingSink {
    ids: Vec<u32>,
    kinds: Vec<u8>,
    ended: bool,
}

impl StreamingSink {
    /// Creates an empty recording sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes recording, producing the stream.
    pub fn into_stream(self) -> PathStream {
        PathStream {
            ids: self.ids,
            kinds: self.kinds,
            ended: self.ended,
        }
    }
}

impl PathSink for StreamingSink {
    fn on_path(&mut self, exec: &PathExecution) {
        self.ids.push(exec.path.index() as u32);
        // Pack start kind (2 bits) and end kind (2 bits).
        let end_tag = match exec.end {
            PathEndKind::BackwardBranch => 0u8,
            PathEndKind::CallReturn => 1,
            PathEndKind::Capped => 2,
            PathEndKind::ProgramEnd => 3,
        };
        self.kinds.push(exec.start.tag() | (end_tag << 2));
    }

    fn on_end(&mut self) {
        self.ended = true;
    }
}

/// A recorded sequence of path executions.
#[derive(Clone, Default, Debug)]
pub struct PathStream {
    ids: Vec<u32>,
    kinds: Vec<u8>,
    ended: bool,
}

impl PathStream {
    /// Rebuilds a stream from raw parts (the persistence format).
    pub(crate) fn from_raw(ids: Vec<u32>, kinds: Vec<u8>, ended: bool) -> Self {
        PathStream { ids, kinds, ended }
    }

    /// The packed kind byte of the `i`-th execution (persistence format).
    pub(crate) fn raw_kind(&self, i: usize) -> u8 {
        self.kinds[i]
    }

    /// Number of recorded path executions (the run's total *flow*).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// True if the recorded run ended normally.
    pub fn ended(&self) -> bool {
        self.ended
    }

    /// The path id of the `i`-th execution.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn path(&self, i: usize) -> PathId {
        PathId::new(self.ids[i])
    }

    /// The start kind of the `i`-th execution.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn start_kind(&self, i: usize) -> PathStartKind {
        PathStartKind::from_tag(self.kinds[i] & 0b11).expect("recorded tag is valid")
    }

    /// The end kind of the `i`-th execution.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn end_kind(&self, i: usize) -> PathEndKind {
        match self.kinds[i] >> 2 {
            0 => PathEndKind::BackwardBranch,
            1 => PathEndKind::CallReturn,
            2 => PathEndKind::Capped,
            _ => PathEndKind::ProgramEnd,
        }
    }

    /// Reconstructs the `i`-th execution using `table` for per-path facts.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()` or the table does not cover the recorded ids.
    pub fn execution(&self, i: usize, table: &PathTable) -> PathExecution {
        let id = self.path(i);
        let info = table.info(id);
        PathExecution {
            path: id,
            head: info.head,
            start: self.start_kind(i),
            end: self.end_kind(i),
            blocks: info.blocks,
            insts: info.insts,
        }
    }

    /// Replays the stream through `sink`.
    pub fn replay<S: PathSink>(&self, table: &PathTable, sink: &mut S) {
        for i in 0..self.len() {
            let exec = self.execution(i, table);
            sink.on_path(&exec);
        }
        if self.ended {
            sink.on_end();
        }
    }

    /// Builds the frequency profile of the stream.
    pub fn to_profile(&self) -> crate::PathProfile {
        let mut p = crate::PathProfile::new();
        for &id in &self.ids {
            p.record(PathId::new(id));
        }
        p
    }

    /// Approximate heap footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.ids.len() * 4 + self.kinds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{CollectSink, PathExtractor};
    use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
    use hotpath_ir::CmpOp;
    use hotpath_vm::Vm;

    fn loop_program(trip: i64) -> hotpath_ir::Program {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, trip);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        pb.finish().unwrap()
    }

    #[test]
    fn stream_round_trips_the_live_execution() {
        let p = loop_program(7);
        // Live collection.
        let mut live = PathExtractor::new(CollectSink::default());
        Vm::new(&p).run(&mut live).unwrap();
        let (live_sink, live_table) = live.into_parts();

        // Streamed collection, then replay into a CollectSink.
        let mut rec = PathExtractor::new(StreamingSink::new());
        Vm::new(&p).run(&mut rec).unwrap();
        let (streaming, table) = rec.into_parts();
        let stream = streaming.into_stream();
        assert!(stream.ended());
        assert_eq!(stream.len(), live_sink.paths.len());

        let mut replayed = CollectSink::default();
        stream.replay(&table, &mut replayed);
        assert!(replayed.ended);
        assert_eq!(replayed.paths, live_sink.paths);
        let _ = live_table;
    }

    #[test]
    fn to_profile_matches_stream_contents() {
        let p = loop_program(5);
        let mut rec = PathExtractor::new(StreamingSink::new());
        Vm::new(&p).run(&mut rec).unwrap();
        let (streaming, _) = rec.into_parts();
        let stream = streaming.into_stream();
        let profile = stream.to_profile();
        assert_eq!(profile.flow() as usize, stream.len());
    }

    #[test]
    fn empty_stream() {
        let s = PathStream::default();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.ended());
        assert_eq!(s.memory_bytes(), 0);
    }
}
