//! Saving and loading recorded runs.
//!
//! Recording a full-scale workload takes seconds to minutes; analyses
//! (sweeps, ablations) are replay-only. [`save_run`] writes a
//! `(PathStream, PathTable)` pair in a compact binary format so analyses
//! can run in separate processes without re-executing the VM.
//!
//! The format is versioned by magic number and makes no cross-platform
//! promises beyond little-endian integers.

use std::io::{self, Read, Write};

use hotpath_ir::BlockId;

use crate::signature::{PathInfo, PathSignature, PathTable};
use crate::stream::PathStream;

const MAGIC: &[u8; 8] = b"HPRUN01\n";

fn w_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn w_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn r_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn r_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Writes a recorded run.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn save_run<W: Write>(w: &mut W, stream: &PathStream, table: &PathTable) -> io::Result<()> {
    w.write_all(MAGIC)?;
    // Stream.
    w_u64(w, stream.len() as u64)?;
    w.write_all(&[u8::from(stream.ended())])?;
    for i in 0..stream.len() {
        w_u32(w, stream.path(i).index() as u32)?;
    }
    for i in 0..stream.len() {
        w.write_all(&[stream.raw_kind(i)])?;
    }
    // Table: infos + signatures, in id order.
    w_u64(w, table.len() as u64)?;
    for (id, info) in table.iter() {
        let sig = table
            .signature(id)
            .expect("every interned id has a signature");
        w_u32(w, info.head.as_u32())?;
        w_u32(w, info.blocks)?;
        w_u32(w, info.insts)?;
        w_u32(w, info.cond_branches)?;
        w_u32(w, info.indirects)?;
        w_u32(w, sig.start().as_u32())?;
        w_u32(w, sig.history_len())?;
        for i in 0..sig.history_len().div_ceil(64) {
            w_u64(w, sig.history_word(i as usize))?;
        }
        w_u32(w, sig.indirect_len() as u32)?;
        for i in 0..sig.indirect_len() {
            w_u32(w, sig.indirect_target(i).expect("in range").as_u32())?;
        }
    }
    Ok(())
}

/// Reads a recorded run written by [`save_run`].
///
/// # Errors
///
/// Returns `InvalidData` on a bad magic number or malformed contents, and
/// propagates I/O errors.
pub fn load_run<R: Read>(r: &mut R) -> io::Result<(PathStream, PathTable)> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a hotpath run file (bad magic)",
        ));
    }
    let n = r_u64(r)? as usize;
    let mut ended_b = [0u8; 1];
    r.read_exact(&mut ended_b)?;
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(r_u32(r)?);
    }
    let mut kinds = Vec::with_capacity(n);
    for _ in 0..n {
        let mut b = [0u8; 1];
        r.read_exact(&mut b)?;
        kinds.push(b[0]);
    }
    let stream = PathStream::from_raw(ids, kinds, ended_b[0] != 0);

    let paths = r_u64(r)? as usize;
    let mut table = PathTable::new();
    for k in 0..paths {
        let head = BlockId::new(r_u32(r)?);
        let blocks = r_u32(r)?;
        let insts = r_u32(r)?;
        let cond_branches = r_u32(r)?;
        let indirects = r_u32(r)?;
        let start = BlockId::new(r_u32(r)?);
        let hlen = r_u32(r)?;
        let mut sig = PathSignature::new(start);
        let words = hlen.div_ceil(64);
        let mut history = Vec::with_capacity(words as usize);
        for _ in 0..words {
            history.push(r_u64(r)?);
        }
        for i in 0..hlen {
            let word = history[(i / 64) as usize];
            sig.push_bit(word >> (i % 64) & 1 == 1);
        }
        let ilen = r_u32(r)?;
        for _ in 0..ilen {
            sig.push_indirect(BlockId::new(r_u32(r)?));
        }
        let id = table.intern(
            &sig,
            PathInfo {
                head,
                blocks,
                insts,
                cond_branches,
                indirects,
            },
        );
        if id.index() != k {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "duplicate signature in run file",
            ));
        }
    }
    // All stream ids must be covered by the table.
    for i in 0..stream.len() {
        if stream.path(i).index() >= table.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "stream references a path missing from the table",
            ));
        }
    }
    Ok((stream, table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::PathExtractor;
    use crate::stream::StreamingSink;
    use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
    use hotpath_ir::CmpOp;
    use hotpath_vm::Vm;

    fn record() -> (PathStream, PathTable) {
        let mut fb = FunctionBuilder::new("main");
        let i = fb.reg();
        let header = fb.new_block();
        let body = fb.new_block();
        let odd = fb.new_block();
        let even = fb.new_block();
        let latch = fb.new_block();
        let exit = fb.new_block();
        fb.const_(i, 0);
        fb.jump(header);
        fb.switch_to(header);
        let c = fb.cmp_imm(CmpOp::Lt, i, 100);
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let par = fb.reg();
        fb.and_imm(par, i, 1);
        fb.branch(par, odd, even);
        fb.switch_to(odd);
        fb.jump(latch);
        fb.switch_to(even);
        fb.jump(latch);
        fb.switch_to(latch);
        fb.add_imm(i, i, 1);
        fb.jump(header);
        fb.switch_to(exit);
        fb.halt();
        let mut pb = ProgramBuilder::new();
        pb.add_function(fb).unwrap();
        let p = pb.finish().unwrap();
        let mut ex = PathExtractor::new(StreamingSink::new());
        Vm::new(&p).run(&mut ex).unwrap();
        let (sink, table) = ex.into_parts();
        (sink.into_stream(), table)
    }

    #[test]
    fn save_load_round_trip() {
        let (stream, table) = record();
        let mut buf = Vec::new();
        save_run(&mut buf, &stream, &table).unwrap();
        let (s2, t2) = load_run(&mut buf.as_slice()).unwrap();
        assert_eq!(s2.len(), stream.len());
        assert_eq!(s2.ended(), stream.ended());
        assert_eq!(t2.len(), table.len());
        for i in 0..stream.len() {
            assert_eq!(s2.path(i), stream.path(i), "id at {i}");
            assert_eq!(s2.start_kind(i), stream.start_kind(i), "kind at {i}");
            assert_eq!(s2.end_kind(i), stream.end_kind(i), "end at {i}");
        }
        for (id, info) in table.iter() {
            assert_eq!(t2.info(id), info, "{id}");
        }
        // Profiles derived from both are identical.
        assert_eq!(s2.to_profile().flow(), stream.to_profile().flow());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = load_run(&mut &b"NOTARUN!"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_is_an_error() {
        let (stream, table) = record();
        let mut buf = Vec::new();
        save_run(&mut buf, &stream, &table).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_run(&mut buf.as_slice()).is_err());
    }
}
