//! Hot-path prediction: a full reproduction of Duesterwald & Bala,
//! *Software Profiling for Hot Path Prediction: Less is More* (ASPLOS
//! 2000), as a Rust workspace.
//!
//! This facade crate re-exports the whole stack:
//!
//! | Layer | Crate | What it provides |
//! |---|---|---|
//! | IR | [`ir`] | virtual ISA, CFGs, layout, Ball–Larus numbering |
//! | VM | [`vm`] | deterministic interpreter + block event stream |
//! | Profiling | [`profiles`] | forward-path extraction, bit tracing, path tables, k-bounded paths |
//! | Prediction | [`core`] | NET and path-profile predictors, hit/noise/MOC metrics, τ-sweeps |
//! | Workloads | [`workloads`] | the nine SPECint95-inspired benchmarks |
//! | Dynamo | [`dynamo`] | fragment-cache optimizer simulation, Figure 5 harness |
//! | Serving | [`serve`] | sharded session service, TCP protocol, cache snapshots |
//! | Telemetry | [`telemetry`] | structured pipeline events, recorders, run summaries |
//! | Self-profiling | [`selfprof`] | measuring allocator, per-stage percentiles, sealed reports |
//! | Faults | [`faultinject`] | deterministic seeded fault plans for robustness testing |
//!
//! # Quickstart
//!
//! ```
//! use hotpath::prelude::*;
//!
//! // Build a benchmark, record its path stream, evaluate NET at tau=50.
//! let w = hotpath::workloads::build(WorkloadName::Compress, Scale::Smoke);
//! let mut extractor = PathExtractor::new(StreamingSink::new());
//! Vm::new(&w.program).run(&mut extractor)?;
//! let (sink, table) = extractor.into_parts();
//! let stream = sink.into_stream();
//! let hot = stream.to_profile().hot_set(0.001);
//! let outcome = evaluate(&stream, &table, &hot, &mut NetPredictor::new(50));
//! assert!(outcome.hit_rate() > 85.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use hotpath_core as core;
pub use hotpath_dynamo as dynamo;
pub use hotpath_faultinject as faultinject;
pub use hotpath_ir as ir;
pub use hotpath_profiles as profiles;
pub use hotpath_selfprof as selfprof;
pub use hotpath_serve as serve;
pub use hotpath_telemetry as telemetry;
pub use hotpath_vm as vm;
pub use hotpath_workloads as workloads;

/// The most commonly used items, one `use` away.
pub mod prelude {
    pub use hotpath_core::{
        evaluate, evaluate_phased, sweep, BoaSelector, FirstExecutionPredictor, HotPathPredictor,
        NetPredictor, PathProfilePredictor, PhasedOutcome, PredictionOutcome, RetirePolicy,
        SchemeKind, DEFAULT_DELAYS,
    };
    pub use hotpath_dynamo::{
        run_dynamo, run_dynamo_linked, run_native, CostModel, DynamoConfig, DynamoOutcome, Engine,
        FlushPolicy, LinkedEngine, LinkedRun, Scheme,
    };
    pub use hotpath_ir::builder::{FunctionBuilder, ProgramBuilder};
    pub use hotpath_ir::{BinOp, BlockId, CmpOp, GlobalReg, Layout, Program};
    pub use hotpath_profiles::{
        load_run, save_run, showdown, BackwardRule, EdgeProfiler, HotPathSet, PathExecution,
        PathExtractor, PathProfile, PathStream, PathTable, SequenceRecorder, StreamingSink,
    };
    pub use hotpath_vm::{
        BlockEvent, ExecutionObserver, RunConfig, TraceCommand, TraceController, TraceExcursion,
        TraceExitReason, TraceRecorder, Vm,
    };
    pub use hotpath_workloads::{build, suite, Scale, Workload, WorkloadName};
}
