//! Structured pipeline events and their deterministic JSON-lines encoding.

use std::fmt::Write as _;

/// One thing the pipeline did.
///
/// Every variant carries logical clocks only (paths completed, blocks
/// executed, observations made); [`Event::Timing`] is the sole wall-clock
/// exception and is excluded from determinism guarantees.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum Event<'a> {
    /// A labelled phase of a benchmark run began (e.g. one workload/mode
    /// pair of `perf_baseline`).
    RunStart {
        /// Free-form label, e.g. `"compress/net"`.
        label: &'a str,
    },
    /// The matching end of a [`Event::RunStart`].
    RunEnd {
        /// The label passed to the matching start.
        label: &'a str,
    },
    /// A VM run reached `Halt`.
    VmHalt {
        /// Basic blocks executed over the run.
        blocks: u64,
        /// Instruction slots executed over the run.
        insts: u64,
    },
    /// The path extractor completed one interprocedural forward path.
    PathCompleted {
        /// Interned path id.
        path: u32,
        /// Head block (global id).
        head: u32,
        /// Blocks on this execution.
        blocks: u32,
        /// Instruction slots on this execution.
        insts: u32,
        /// Why the path began (`"entry"`, `"backward"`, `"continuation"`).
        start: &'static str,
        /// Why the path ended (`"backward"`, `"call_return"`, `"capped"`,
        /// `"program_end"`).
        end: &'static str,
    },
    /// A dense counter table grew to cover a new id range.
    CounterTableGrow {
        /// Which table family grew (`"counter_table"`, `"adj_rows"`).
        table: &'static str,
        /// Slot count before the growth.
        from: u64,
        /// Slot count after the growth.
        to: u64,
    },
    /// A predictor's counter reached the prediction delay τ.
    TauTrigger {
        /// Scheme that triggered (`"net"`, `"path_profile"`).
        scheme: &'static str,
        /// The head (NET) or path id (path-profile) whose counter fired.
        head: u32,
        /// The delay τ that was reached.
        tau: u64,
        /// Profiling observations the scheme had made when it fired — the
        /// logical timestamp; deltas between consecutive triggers are the
        /// τ-trigger latencies.
        observed: u64,
    },
    /// The Dynamo engine installed a fragment.
    FragmentInstall {
        /// Head block of the fragment.
        head: u32,
        /// Blocks covered.
        blocks: u32,
        /// Instruction slots covered.
        insts: u32,
        /// Total installs so far (including this one).
        installs: u64,
        /// Paths completed when the install happened — deltas between
        /// consecutive installs are the trace-formation interarrivals.
        at_path: u64,
    },
    /// The Dynamo engine flushed its fragment cache, evicting every live
    /// fragment.
    CacheFlush {
        /// Why (`"capacity"`, `"spike"`).
        kind: &'static str,
        /// Fragments evicted.
        evicted: u64,
        /// Paths completed at the flush.
        at_path: u64,
    },
    /// The Dynamo engine bailed out to native execution.
    Bailout {
        /// Paths completed at the bail-out.
        at_path: u64,
        /// Fragments installed up to the bail-out.
        installs: u64,
    },
    /// The Dynamo engine switched execution mode.
    Transition {
        /// Which edge of the interpret/trace state machine fired
        /// (`"cache_enter"`, `"link_sibling"`, `"link_stub"`,
        /// `"link_next"`, `"link_extend"`, `"early_exit"`, `"cache_exit"`).
        kind: &'static str,
        /// Blocks executed when the transition happened.
        at_block: u64,
    },
    /// Final hotness of one exit-stub counter (emitted when a Dynamo
    /// engine is finalized, once per counted stub target).
    ExitStubHotness {
        /// The stub's target block.
        target: u32,
        /// Arrivals counted through the stub.
        count: u64,
    },
    /// The VM dispatched into a compiled trace (the start of one batched
    /// excursion through trace-land).
    TraceEnter {
        /// Head block of the entered trace.
        head: u32,
        /// Blocks executed when the entry happened.
        at_block: u64,
    },
    /// The VM left trace-land — one batched event per excursion, covering
    /// every linked trace traversed since the matching
    /// [`Event::TraceEnter`].
    TraceExit {
        /// Why the excursion ended (`"trace_end"`, `"guard_fail"`,
        /// `"fuel"`, `"halt"`).
        reason: &'static str,
        /// Block control transferred to.
        target: u32,
        /// Blocks executed inside the excursion.
        blocks: u64,
        /// Trace traversals the excursion made (≥ 1).
        entries: u64,
        /// Trace-to-trace link transfers taken.
        links: u64,
        /// Guard checks executed inside the excursion (entry guards
        /// included); the optimizer exists to shrink this.
        guards: u64,
        /// Blocks executed when the exit happened.
        at_block: u64,
    },
    /// A trace guard failed mid-trace, diverting control off the predicted
    /// path.
    GuardFail {
        /// Block whose guard failed.
        block: u32,
        /// Block control diverted to.
        target: u32,
        /// Blocks executed when the guard failed.
        at_block: u64,
    },
    /// The trace optimizer dropped a guard whose predicate is implied by
    /// facts established earlier on the same superblock.
    GuardElided {
        /// Head block of the optimized trace.
        head: u32,
        /// Block whose guard was elided.
        block: u32,
    },
    /// The trace optimizer hoisted a loop-invariant guard to the trace
    /// head, where it is checked once per traversal entry instead of once
    /// per pass over the guarded block.
    GuardHoisted {
        /// Head block of the optimized trace.
        head: u32,
        /// Block whose guard was hoisted.
        block: u32,
        /// Frame-relative register the hoisted guard tests.
        reg: u32,
    },
    /// The constant-folding pass rewrote or sank instructions on one
    /// trace (emitted once per optimized trace that changed).
    ConstFolded {
        /// Head block of the optimized trace.
        head: u32,
        /// Instructions rewritten to cheaper forms.
        folded: u32,
        /// Dead constants sunk into exit stubs.
        sunk: u32,
    },
    /// Wall-clock duration of one optimizer pass over one trace.
    /// Nondeterministic, like [`Event::Timing`].
    OptPass {
        /// Pass name (`"hoist"`, `"constfold"`, `"guard_elim"`, `"sink"`,
        /// `"thread"`).
        pass: &'static str,
        /// Elapsed nanoseconds.
        ns: u64,
    },
    /// A trace exit stub was patched into a direct trace-to-trace link.
    LinkPatched {
        /// Block owning the patched stub.
        from: u32,
        /// Head block of the linked trace.
        to: u32,
    },
    /// A trace-cache flush severed every patched link.
    LinkSevered {
        /// Links that were patched when the flush hit.
        links: u64,
    },
    /// The degradation ladder stepped the linked engine down one rung
    /// (full linking → no-link → interpreter-only).
    ModeDegraded {
        /// Mode before the step (`"full_linking"`, `"no_link"`).
        from: &'static str,
        /// Mode after the step (`"no_link"`, `"interp_only"`).
        to: &'static str,
        /// Paths completed when the ladder stepped.
        at_path: u64,
    },
    /// The degradation ladder re-promoted the linked engine one rung
    /// after a cooldown of healthy windows.
    ModeRepromoted {
        /// Mode before the step (`"no_link"`, `"interp_only"`).
        from: &'static str,
        /// Mode after the step (`"full_linking"`, `"no_link"`).
        to: &'static str,
        /// Paths completed when the ladder stepped.
        at_path: u64,
    },
    /// A trace panicked during execution; its head was blacklisted and
    /// the VM recovered to the interpreter.
    FragmentPoisoned {
        /// Head block of the poisoned trace.
        head: u32,
        /// Blocks executed when the poisoning happened.
        at_block: u64,
    },
    /// The fault injector fired at one of its enumerated points.
    FaultInjected {
        /// Which fault point fired (`"guard_fail"`, `"flush"`,
        /// `"fuel_starve"`, `"install_reject"`, `"trace_panic"`).
        point: &'static str,
        /// Blocks executed when the fault was injected.
        at_block: u64,
    },
    /// A serving session was opened on a shard.
    SessionOpened {
        /// Session id assigned by the manager.
        session: u64,
        /// Shard the session was placed on.
        shard: u32,
        /// Workload the session executes (`"ingest"` for event-stream
        /// sessions with no server-side program).
        workload: &'a str,
    },
    /// A serving session was closed (explicitly or by completing).
    SessionClosed {
        /// Session id.
        session: u64,
        /// Shard the session lived on.
        shard: u32,
        /// Blocks the session executed over its lifetime.
        blocks: u64,
    },
    /// A shard refused work because its queue was full or its session
    /// table was at capacity (the admission-control `Busy` reply).
    ShardBusy {
        /// The refusing shard.
        shard: u32,
    },
    /// A session's state was serialized into a snapshot blob.
    SnapshotSaved {
        /// Session id.
        session: u64,
        /// Encoded size in bytes.
        bytes: u64,
        /// Fragments captured in the snapshot.
        fragments: u64,
    },
    /// A session was rebuilt from a snapshot blob.
    SnapshotRestored {
        /// The restored session's (new) id.
        session: u64,
        /// Decoded blob size in bytes.
        bytes: u64,
        /// Fragments re-installed from the snapshot.
        fragments: u64,
    },
    /// A session's warm state was published into the cross-session
    /// profile store.
    ProfilePublished {
        /// Publishing session's id.
        session: u64,
        /// Fragments carried by the published profile.
        fragments: u64,
        /// The publisher's logical epoch (blocks executed, or events
        /// ingested, when the profile was captured).
        epoch: u64,
    },
    /// The profile store folded a publish into a per-workload aggregate
    /// and rebuilt the pre-warm image shards serve from.
    ProfileMerged {
        /// Workload key the publish merged into (`"ingest"` for
        /// event-stream sessions).
        workload: &'a str,
        /// Publishers merged into the aggregate so far.
        publishers: u64,
        /// Store generation after the merge (shard caches refresh when
        /// they observe a generation ahead of their own).
        generation: u64,
    },
    /// A session was pre-warmed from the store aggregate at admission.
    SessionPrewarmed {
        /// The admitted session's id.
        session: u64,
        /// Fragments imported from the aggregate.
        fragments: u64,
        /// NET + exit-stub counter entries imported from the aggregate.
        counters: u64,
    },
    /// A requested pre-warm was not applied; the session opened cold.
    PrewarmRejected {
        /// The admitted session's id.
        session: u64,
        /// Why (`"no aggregate profile"`, a validation failure, …).
        reason: &'a str,
    },
    /// The reactor front-end accepted a TCP connection.
    ConnAccepted {
        /// Index of the reactor event loop that owns the connection.
        reactor: u32,
        /// Generation-tagged connection token (unique while open).
        conn: u64,
    },
    /// A reactor connection closed (peer hangup, error, or drain).
    ConnClosed {
        /// Index of the owning reactor event loop.
        reactor: u32,
        /// Generation-tagged connection token.
        conn: u64,
        /// Requests the connection carried over its lifetime.
        requests: u64,
    },
    /// A reactor event loop woke from its poller.
    ReactorWakeup {
        /// Index of the reactor event loop.
        reactor: u32,
        /// Readiness events delivered by this wakeup.
        events: u64,
    },
    /// A connection's socket refused further bytes mid-flush; the
    /// remainder stays buffered until the peer drains (write
    /// backpressure made visible).
    WriteStalled {
        /// Index of the owning reactor event loop.
        reactor: u32,
        /// Generation-tagged connection token.
        conn: u64,
        /// Bytes still buffered after the short write.
        buffered: u64,
    },
    /// A shard worker panicked; its supervisor restarted it and rebuilt
    /// the session table from seeds.
    ShardRestarted {
        /// The restarted shard.
        shard: u32,
        /// Consecutive panics so far (resets on the first clean
        /// request; the circuit breaker trips past its bound).
        consecutive: u64,
        /// Sessions re-admitted into the rebuilt table.
        readmitted: u64,
    },
    /// One session came back after a shard restart.
    SessionReadmitted {
        /// The re-admitted session's id.
        session: u64,
        /// Shard it lives on.
        shard: u32,
        /// True when restored from its last sealed snapshot; false for a
        /// cold (but still correct) re-open.
        warm: bool,
    },
    /// A wire-level fault was injected on a serve connection.
    WireFaultInjected {
        /// Which wire point fired (`"wire_torn_write"`, `"wire_reset"`,
        /// `"wire_corrupt_len"`, `"wire_corrupt_payload"`,
        /// `"wire_stall"`, `"wire_delay_read"`).
        point: &'static str,
        /// Connection identity (generation-tagged token on the reactor
        /// front, accept index on the blocking front).
        conn: u64,
    },
    /// A profile publish was routed to the store's quarantine bucket
    /// instead of the fleet aggregate (unhealthy publisher).
    ProfileQuarantined {
        /// Publishing session's id.
        session: u64,
        /// Workload key the publish was quarantined under.
        workload: &'a str,
        /// Fragments held in the key's quarantine bucket afterwards.
        fragments: u64,
    },
    /// A measured wall-clock duration. **Nondeterministic** — excluded
    /// from the byte-identical stream guarantee; summaries keep timings
    /// separate from event counts for the same reason.
    Timing {
        /// What was timed (e.g. a workload name).
        label: &'a str,
        /// Measured wall seconds.
        secs: f64,
    },
}

impl Event<'_> {
    /// Stable snake_case tag identifying the variant, used as the JSON
    /// `"ev"` field and as the summary count key.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "run_start",
            Event::RunEnd { .. } => "run_end",
            Event::VmHalt { .. } => "vm_halt",
            Event::PathCompleted { .. } => "path_completed",
            Event::CounterTableGrow { .. } => "counter_table_grow",
            Event::TauTrigger { .. } => "tau_trigger",
            Event::FragmentInstall { .. } => "fragment_install",
            Event::CacheFlush { .. } => "cache_flush",
            Event::Bailout { .. } => "bailout",
            Event::Transition { .. } => "transition",
            Event::ExitStubHotness { .. } => "exit_stub_hotness",
            Event::TraceEnter { .. } => "trace_enter",
            Event::TraceExit { .. } => "trace_exit",
            Event::GuardFail { .. } => "guard_fail",
            Event::GuardElided { .. } => "guard_elided",
            Event::GuardHoisted { .. } => "guard_hoisted",
            Event::ConstFolded { .. } => "const_folded",
            Event::OptPass { .. } => "opt_pass_ns",
            Event::LinkPatched { .. } => "link_patched",
            Event::LinkSevered { .. } => "link_severed",
            Event::ModeDegraded { .. } => "mode_degraded",
            Event::ModeRepromoted { .. } => "mode_repromoted",
            Event::FragmentPoisoned { .. } => "fragment_poisoned",
            Event::FaultInjected { .. } => "fault_injected",
            Event::SessionOpened { .. } => "session_opened",
            Event::SessionClosed { .. } => "session_closed",
            Event::ShardBusy { .. } => "shard_busy",
            Event::SnapshotSaved { .. } => "snapshot_saved",
            Event::SnapshotRestored { .. } => "snapshot_restored",
            Event::ProfilePublished { .. } => "profile_published",
            Event::ProfileMerged { .. } => "profile_merged",
            Event::SessionPrewarmed { .. } => "session_prewarmed",
            Event::PrewarmRejected { .. } => "prewarm_rejected",
            Event::ConnAccepted { .. } => "conn_accepted",
            Event::ConnClosed { .. } => "conn_closed",
            Event::ReactorWakeup { .. } => "reactor_wakeup",
            Event::WriteStalled { .. } => "write_stalled",
            Event::ShardRestarted { .. } => "shard_restarted",
            Event::SessionReadmitted { .. } => "session_readmitted",
            Event::WireFaultInjected { .. } => "wire_fault_injected",
            Event::ProfileQuarantined { .. } => "profile_quarantined",
            Event::Timing { .. } => "timing",
        }
    }

    /// Appends the event as one JSON object (no trailing newline) with a
    /// fixed field order, so identical runs serialize identically.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"ev\":\"");
        out.push_str(self.kind());
        out.push('"');
        match *self {
            Event::RunStart { label } | Event::RunEnd { label } => {
                push_str_field(out, "label", label);
            }
            Event::VmHalt { blocks, insts } => {
                push_u64_field(out, "blocks", blocks);
                push_u64_field(out, "insts", insts);
            }
            Event::PathCompleted {
                path,
                head,
                blocks,
                insts,
                start,
                end,
            } => {
                push_u64_field(out, "path", path as u64);
                push_u64_field(out, "head", head as u64);
                push_u64_field(out, "blocks", blocks as u64);
                push_u64_field(out, "insts", insts as u64);
                push_str_field(out, "start", start);
                push_str_field(out, "end", end);
            }
            Event::CounterTableGrow { table, from, to } => {
                push_str_field(out, "table", table);
                push_u64_field(out, "from", from);
                push_u64_field(out, "to", to);
            }
            Event::TauTrigger {
                scheme,
                head,
                tau,
                observed,
            } => {
                push_str_field(out, "scheme", scheme);
                push_u64_field(out, "head", head as u64);
                push_u64_field(out, "tau", tau);
                push_u64_field(out, "observed", observed);
            }
            Event::FragmentInstall {
                head,
                blocks,
                insts,
                installs,
                at_path,
            } => {
                push_u64_field(out, "head", head as u64);
                push_u64_field(out, "blocks", blocks as u64);
                push_u64_field(out, "insts", insts as u64);
                push_u64_field(out, "installs", installs);
                push_u64_field(out, "at_path", at_path);
            }
            Event::CacheFlush {
                kind,
                evicted,
                at_path,
            } => {
                push_str_field(out, "kind", kind);
                push_u64_field(out, "evicted", evicted);
                push_u64_field(out, "at_path", at_path);
            }
            Event::Bailout { at_path, installs } => {
                push_u64_field(out, "at_path", at_path);
                push_u64_field(out, "installs", installs);
            }
            Event::Transition { kind, at_block } => {
                push_str_field(out, "kind", kind);
                push_u64_field(out, "at_block", at_block);
            }
            Event::ExitStubHotness { target, count } => {
                push_u64_field(out, "target", target as u64);
                push_u64_field(out, "count", count);
            }
            Event::TraceEnter { head, at_block } => {
                push_u64_field(out, "head", head as u64);
                push_u64_field(out, "at_block", at_block);
            }
            Event::TraceExit {
                reason,
                target,
                blocks,
                entries,
                links,
                guards,
                at_block,
            } => {
                push_str_field(out, "reason", reason);
                push_u64_field(out, "target", target as u64);
                push_u64_field(out, "blocks", blocks);
                push_u64_field(out, "entries", entries);
                push_u64_field(out, "links", links);
                push_u64_field(out, "guards", guards);
                push_u64_field(out, "at_block", at_block);
            }
            Event::GuardFail {
                block,
                target,
                at_block,
            } => {
                push_u64_field(out, "block", block as u64);
                push_u64_field(out, "target", target as u64);
                push_u64_field(out, "at_block", at_block);
            }
            Event::GuardElided { head, block } => {
                push_u64_field(out, "head", head as u64);
                push_u64_field(out, "block", block as u64);
            }
            Event::GuardHoisted { head, block, reg } => {
                push_u64_field(out, "head", head as u64);
                push_u64_field(out, "block", block as u64);
                push_u64_field(out, "reg", reg as u64);
            }
            Event::ConstFolded { head, folded, sunk } => {
                push_u64_field(out, "head", head as u64);
                push_u64_field(out, "folded", folded as u64);
                push_u64_field(out, "sunk", sunk as u64);
            }
            Event::OptPass { pass, ns } => {
                push_str_field(out, "pass", pass);
                push_u64_field(out, "ns", ns);
            }
            Event::LinkPatched { from, to } => {
                push_u64_field(out, "from", from as u64);
                push_u64_field(out, "to", to as u64);
            }
            Event::LinkSevered { links } => {
                push_u64_field(out, "links", links);
            }
            Event::ModeDegraded { from, to, at_path }
            | Event::ModeRepromoted { from, to, at_path } => {
                push_str_field(out, "from", from);
                push_str_field(out, "to", to);
                push_u64_field(out, "at_path", at_path);
            }
            Event::FragmentPoisoned { head, at_block } => {
                push_u64_field(out, "head", head as u64);
                push_u64_field(out, "at_block", at_block);
            }
            Event::FaultInjected { point, at_block } => {
                push_str_field(out, "point", point);
                push_u64_field(out, "at_block", at_block);
            }
            Event::SessionOpened {
                session,
                shard,
                workload,
            } => {
                push_u64_field(out, "session", session);
                push_u64_field(out, "shard", shard as u64);
                push_str_field(out, "workload", workload);
            }
            Event::SessionClosed {
                session,
                shard,
                blocks,
            } => {
                push_u64_field(out, "session", session);
                push_u64_field(out, "shard", shard as u64);
                push_u64_field(out, "blocks", blocks);
            }
            Event::ShardBusy { shard } => {
                push_u64_field(out, "shard", shard as u64);
            }
            Event::SnapshotSaved {
                session,
                bytes,
                fragments,
            }
            | Event::SnapshotRestored {
                session,
                bytes,
                fragments,
            } => {
                push_u64_field(out, "session", session);
                push_u64_field(out, "bytes", bytes);
                push_u64_field(out, "fragments", fragments);
            }
            Event::ProfilePublished {
                session,
                fragments,
                epoch,
            } => {
                push_u64_field(out, "session", session);
                push_u64_field(out, "fragments", fragments);
                push_u64_field(out, "epoch", epoch);
            }
            Event::ProfileMerged {
                workload,
                publishers,
                generation,
            } => {
                push_str_field(out, "workload", workload);
                push_u64_field(out, "publishers", publishers);
                push_u64_field(out, "generation", generation);
            }
            Event::SessionPrewarmed {
                session,
                fragments,
                counters,
            } => {
                push_u64_field(out, "session", session);
                push_u64_field(out, "fragments", fragments);
                push_u64_field(out, "counters", counters);
            }
            Event::PrewarmRejected { session, reason } => {
                push_u64_field(out, "session", session);
                push_str_field(out, "reason", reason);
            }
            Event::ConnAccepted { reactor, conn } => {
                push_u64_field(out, "reactor", reactor as u64);
                push_u64_field(out, "conn", conn);
            }
            Event::ConnClosed {
                reactor,
                conn,
                requests,
            } => {
                push_u64_field(out, "reactor", reactor as u64);
                push_u64_field(out, "conn", conn);
                push_u64_field(out, "requests", requests);
            }
            Event::ReactorWakeup { reactor, events } => {
                push_u64_field(out, "reactor", reactor as u64);
                push_u64_field(out, "events", events);
            }
            Event::WriteStalled {
                reactor,
                conn,
                buffered,
            } => {
                push_u64_field(out, "reactor", reactor as u64);
                push_u64_field(out, "conn", conn);
                push_u64_field(out, "buffered", buffered);
            }
            Event::ShardRestarted {
                shard,
                consecutive,
                readmitted,
            } => {
                push_u64_field(out, "shard", shard as u64);
                push_u64_field(out, "consecutive", consecutive);
                push_u64_field(out, "readmitted", readmitted);
            }
            Event::SessionReadmitted {
                session,
                shard,
                warm,
            } => {
                push_u64_field(out, "session", session);
                push_u64_field(out, "shard", shard as u64);
                push_u64_field(out, "warm", u64::from(warm));
            }
            Event::WireFaultInjected { point, conn } => {
                push_str_field(out, "point", point);
                push_u64_field(out, "conn", conn);
            }
            Event::ProfileQuarantined {
                session,
                workload,
                fragments,
            } => {
                push_u64_field(out, "session", session);
                push_str_field(out, "workload", workload);
                push_u64_field(out, "fragments", fragments);
            }
            Event::Timing { label, secs } => {
                push_str_field(out, "label", label);
                let _ = write!(out, ",\"secs\":{secs:.6}");
            }
        }
        out.push('}');
    }
}

fn push_u64_field(out: &mut String, key: &str, value: u64) {
    let _ = write!(out, ",\"{key}\":{value}");
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    let _ = write!(out, ",\"{key}\":");
    push_json_string(out, value);
}

/// Appends `value` as a JSON string literal, escaping as required.
pub(crate) fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_serialize_with_stable_field_order() {
        let mut out = String::new();
        Event::TauTrigger {
            scheme: "net",
            head: 7,
            tau: 50,
            observed: 1234,
        }
        .write_json(&mut out);
        assert_eq!(
            out,
            "{\"ev\":\"tau_trigger\",\"scheme\":\"net\",\"head\":7,\"tau\":50,\"observed\":1234}"
        );
    }

    #[test]
    fn labels_are_escaped() {
        let mut out = String::new();
        Event::Timing {
            label: "a\"b\\c\n",
            secs: 0.5,
        }
        .write_json(&mut out);
        assert_eq!(
            out,
            "{\"ev\":\"timing\",\"label\":\"a\\\"b\\\\c\\n\",\"secs\":0.500000}"
        );
    }

    #[test]
    fn every_variant_round_trips_through_the_parser() {
        let events = [
            Event::RunStart { label: "w/net" },
            Event::RunEnd { label: "w/net" },
            Event::VmHalt {
                blocks: 10,
                insts: 20,
            },
            Event::PathCompleted {
                path: 1,
                head: 2,
                blocks: 3,
                insts: 4,
                start: "backward",
                end: "backward",
            },
            Event::CounterTableGrow {
                table: "counter_table",
                from: 0,
                to: 8,
            },
            Event::TauTrigger {
                scheme: "net",
                head: 7,
                tau: 50,
                observed: 51,
            },
            Event::FragmentInstall {
                head: 7,
                blocks: 4,
                insts: 9,
                installs: 1,
                at_path: 50,
            },
            Event::CacheFlush {
                kind: "capacity",
                evicted: 3,
                at_path: 99,
            },
            Event::Bailout {
                at_path: 100,
                installs: 1501,
            },
            Event::Transition {
                kind: "cache_enter",
                at_block: 123,
            },
            Event::ExitStubHotness {
                target: 9,
                count: 17,
            },
            Event::TraceEnter {
                head: 7,
                at_block: 500,
            },
            Event::TraceExit {
                reason: "guard_fail",
                target: 12,
                blocks: 640,
                entries: 80,
                links: 79,
                guards: 160,
                at_block: 1140,
            },
            Event::GuardFail {
                block: 9,
                target: 12,
                at_block: 1140,
            },
            Event::GuardElided { head: 7, block: 9 },
            Event::GuardHoisted {
                head: 7,
                block: 9,
                reg: 3,
            },
            Event::ConstFolded {
                head: 7,
                folded: 5,
                sunk: 2,
            },
            Event::OptPass {
                pass: "guard_elim",
                ns: 1200,
            },
            Event::LinkPatched { from: 9, to: 12 },
            Event::LinkSevered { links: 4 },
            Event::ModeDegraded {
                from: "full_linking",
                to: "no_link",
                at_path: 4_000,
            },
            Event::ModeRepromoted {
                from: "no_link",
                to: "full_linking",
                at_path: 9_000,
            },
            Event::FragmentPoisoned {
                head: 7,
                at_block: 640,
            },
            Event::FaultInjected {
                point: "install_reject",
                at_block: 640,
            },
            Event::SessionOpened {
                session: 3,
                shard: 1,
                workload: "compress",
            },
            Event::SessionClosed {
                session: 3,
                shard: 1,
                blocks: 250_000,
            },
            Event::ShardBusy { shard: 1 },
            Event::SnapshotSaved {
                session: 3,
                bytes: 4096,
                fragments: 12,
            },
            Event::SnapshotRestored {
                session: 4,
                bytes: 4096,
                fragments: 12,
            },
            Event::ProfilePublished {
                session: 3,
                fragments: 12,
                epoch: 250_000,
            },
            Event::ProfileMerged {
                workload: "compress",
                publishers: 4,
                generation: 7,
            },
            Event::SessionPrewarmed {
                session: 5,
                fragments: 12,
                counters: 30,
            },
            Event::PrewarmRejected {
                session: 6,
                reason: "no aggregate profile",
            },
            Event::ConnAccepted {
                reactor: 0,
                conn: (7 << 32) | 3,
            },
            Event::ConnClosed {
                reactor: 0,
                conn: (7 << 32) | 3,
                requests: 41,
            },
            Event::ReactorWakeup {
                reactor: 1,
                events: 17,
            },
            Event::WriteStalled {
                reactor: 0,
                conn: (7 << 32) | 3,
                buffered: 262_144,
            },
            Event::ShardRestarted {
                shard: 2,
                consecutive: 1,
                readmitted: 5,
            },
            Event::SessionReadmitted {
                session: 9,
                shard: 2,
                warm: true,
            },
            Event::WireFaultInjected {
                point: "wire_torn_write",
                conn: (3 << 32) | 11,
            },
            Event::ProfileQuarantined {
                session: 9,
                workload: "compress",
                fragments: 4,
            },
            Event::Timing {
                label: "compress",
                secs: 1.25,
            },
        ];
        for event in events {
            let mut line = String::new();
            event.write_json(&mut line);
            let value =
                crate::json::JsonValue::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(
                value.get("ev").and_then(|v| v.as_str()),
                Some(event.kind()),
                "{line}"
            );
        }
    }
}
