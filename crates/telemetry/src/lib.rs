//! Lightweight observability for the hot-path prediction pipeline.
//!
//! The paper's thesis is that profiling *overhead* — not profile quality —
//! decides a dynamic optimizer's fate, so this reproduction measures its
//! own cycles the same way it measures the schemes it studies: with
//! near-zero-cost instrumentation that can be compiled out entirely.
//!
//! The crate provides four layers:
//!
//! * [`Event`] — structured, deterministic descriptions of what the
//!   pipeline did: path completions, τ-triggers, fragment installs, cache
//!   flushes, mode transitions, counter-table growth. Events carry only
//!   *logical* clocks (paths completed, blocks executed, observations
//!   made), never wall-clock time, so two identical runs emit byte-identical
//!   streams. The one exception is [`Event::Timing`], which reports measured
//!   wall seconds and is documented as nondeterministic.
//! * [`Recorder`] — the consumer interface. [`NullRecorder`] discards
//!   everything (and is verified to leave results bit-identical),
//!   [`JsonlRecorder`] writes one JSON object per line, and
//!   [`SummaryRecorder`] folds the stream into a [`TelemetrySummary`] of
//!   counts and fixed-bucket [`Histogram`]s.
//! * The thread-local emit path — [`install`], [`enabled`], and the
//!   [`emit!`](crate::emit) macro. Producers call `emit!` unconditionally;
//!   the event expression is only evaluated while a recorder is installed
//!   on the current thread. With the `enabled` feature off (build with
//!   `--no-default-features`), [`enabled`] is a constant `false` and every
//!   call site compiles out.
//! * [`json`] — a minimal JSON value parser (the workspace has no external
//!   dependencies), used by `bench_compare` to diff `BENCH_perf.json` and
//!   `telemetry.json` snapshots.
//!
//! # Example
//!
//! ```
//! use hotpath_telemetry as telemetry;
//! use telemetry::{Event, JsonlRecorder};
//!
//! let (recorder, buffer) = JsonlRecorder::to_shared_buffer();
//! let guard = telemetry::install(Box::new(recorder));
//! telemetry::emit!(Event::TauTrigger {
//!     scheme: "net",
//!     head: 7,
//!     tau: 50,
//!     observed: 50,
//! });
//! drop(guard);
//! let bytes = buffer.borrow();
//! # #[cfg(feature = "enabled")]
//! assert!(std::str::from_utf8(&bytes).unwrap().contains("\"tau_trigger\""));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod event;
mod histogram;
pub mod json;
mod recorder;
mod summary;

pub use event::Event;
pub use histogram::{Histogram, POW2_BOUNDS};
pub use recorder::{
    emit_event, enabled, install, JsonlRecorder, NullRecorder, Recorder, RecorderGuard,
};
pub use summary::{SummaryHandle, SummaryRecorder, TelemetrySummary};

/// Emits an event to the recorder installed on the current thread, if any.
///
/// The event expression is evaluated lazily: when no recorder is installed
/// (or the `enabled` feature is off) the argument is never constructed, so
/// call sites in hot loops cost one thread-local flag check.
#[macro_export]
macro_rules! emit {
    ($event:expr) => {
        if $crate::enabled() {
            $crate::emit_event(&$event);
        }
    };
}
