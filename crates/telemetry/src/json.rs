//! A minimal JSON value parser.
//!
//! The workspace builds offline with no external dependencies, so the
//! tooling that reads `BENCH_perf.json` and `telemetry.json` back (notably
//! `bench_compare`) parses with this ~200-line recursive-descent parser
//! instead of serde. It accepts standard JSON; it does not aim to reject
//! every malformed document with a perfect error message.

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always held as `f64`; the documents we read stay well
    /// inside exact-integer range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order (keys are not deduplicated).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Parses a complete JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset on malformed input or trailing
    /// garbage.
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Member lookup on an object (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }
}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            )),
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // documents; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape `\\{}`", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar; `pos` always sits on a char
                    // boundary because it only ever advances by whole chars.
                    let c = self.text[self.pos..].chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number chars");
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_bench_perf_document() {
        let doc = r#"{
  "runs": [
    {
      "label": "dense-tables",
      "scale": "small",
      "reps": 3,
      "total_blocks": 16272516,
      "modes": {
        "native": {"secs": 0.281232, "blocks_per_sec": 57861584}
      }
    }
  ]
}"#;
        let v = JsonValue::parse(doc).unwrap();
        let runs = v.get("runs").and_then(|r| r.as_arr()).unwrap();
        assert_eq!(runs.len(), 1);
        assert_eq!(
            runs[0].get("label").and_then(|l| l.as_str()),
            Some("dense-tables")
        );
        let native = runs[0].get("modes").and_then(|m| m.get("native")).unwrap();
        assert_eq!(
            native.get("blocks_per_sec").and_then(|b| b.as_f64()),
            Some(57861584.0)
        );
    }

    #[test]
    fn parses_scalars_arrays_and_escapes() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("-1.5e2").unwrap(), JsonValue::Num(-150.0));
        assert_eq!(
            JsonValue::parse(r#""a\"b\nA""#).unwrap(),
            JsonValue::Str("a\"b\nA".to_string())
        );
        assert_eq!(
            JsonValue::parse("[1, 2]").unwrap(),
            JsonValue::Arr(vec![JsonValue::Num(1.0), JsonValue::Num(2.0)])
        );
        assert_eq!(JsonValue::parse("[]").unwrap(), JsonValue::Arr(vec![]));
        assert_eq!(JsonValue::parse("{}").unwrap(), JsonValue::Obj(vec![]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\"}", "1 2", "nulL", "\"open"] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn handles_unicode_passthrough() {
        assert_eq!(
            JsonValue::parse("\"héllo→\"").unwrap(),
            JsonValue::Str("héllo→".to_string())
        );
    }
}
