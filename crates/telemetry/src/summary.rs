//! Per-run telemetry summaries: event counts plus fixed-bucket histograms,
//! serialized as `telemetry.json`.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

use crate::event::{push_json_string, Event};
use crate::histogram::Histogram;
use crate::recorder::Recorder;

/// Aggregated view of one run's event stream.
///
/// Counts every event kind and maintains the three distributions the
/// paper's overhead argument cares about: how long paths are, how often
/// trace formation happens, and how hot exit stubs get. Deterministic for
/// identical runs, except for the `timings` section (wall clock).
#[derive(Clone, Debug, Default)]
pub struct TelemetrySummary {
    /// Events seen, by [`Event::kind`] tag.
    counts: BTreeMap<&'static str, u64>,
    /// Distribution of completed path lengths, in blocks.
    path_length: Option<Histogram>,
    /// Distribution of paths elapsed between consecutive fragment installs.
    trace_interarrival: Option<Histogram>,
    /// Distribution of final exit-stub counter values.
    exit_stub_hotness: Option<Histogram>,
    /// Distribution of profiling observations elapsed between consecutive
    /// τ-triggers (per scheme, merged) — the τ-trigger latencies.
    tau_trigger_gap: Option<Histogram>,
    /// Distribution of blocks executed per trace entry (one sample per
    /// trace excursion: its block count divided by its traversal count).
    blocks_per_trace_entry: Option<Histogram>,
    /// Distribution of guard checks executed per trace entry (one sample
    /// per trace excursion) — the trace optimizer's target metric.
    guards_per_trace_entry: Option<Histogram>,
    /// Distinct timing labels in first-seen order. Labels are interned:
    /// repeated `Timing` events with the same label reuse the stored
    /// `String` instead of allocating a fresh one per event, so the
    /// steady-state observe path is allocation-free (pinned by the
    /// selfprof allocation-count test).
    timing_labels: Vec<String>,
    /// Wall-clock timings, in emission order, as `(label index, secs)`.
    timings: Vec<(u32, f64)>,
    /// Logical timestamp of the previous fragment install.
    last_install_at: Option<u64>,
    /// Logical timestamp of the previous τ-trigger, per scheme.
    last_trigger_observed: BTreeMap<&'static str, u64>,
}

impl TelemetrySummary {
    /// An empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one event in.
    pub fn observe(&mut self, event: &Event<'_>) {
        *self.counts.entry(event.kind()).or_insert(0) += 1;
        match *event {
            Event::PathCompleted { blocks, .. } => {
                self.path_length
                    .get_or_insert_with(Histogram::pow2)
                    .add(blocks as u64);
            }
            Event::FragmentInstall { at_path, .. } => {
                if let Some(prev) = self.last_install_at {
                    self.trace_interarrival
                        .get_or_insert_with(Histogram::pow2)
                        .add(at_path.saturating_sub(prev));
                }
                self.last_install_at = Some(at_path);
            }
            Event::ExitStubHotness { count, .. } => {
                self.exit_stub_hotness
                    .get_or_insert_with(Histogram::pow2)
                    .add(count);
            }
            Event::TauTrigger {
                scheme, observed, ..
            } => {
                if let Some(&prev) = self.last_trigger_observed.get(scheme) {
                    self.tau_trigger_gap
                        .get_or_insert_with(Histogram::pow2)
                        .add(observed.saturating_sub(prev));
                }
                self.last_trigger_observed.insert(scheme, observed);
            }
            Event::TraceExit {
                blocks,
                entries,
                guards,
                ..
            } => {
                self.blocks_per_trace_entry
                    .get_or_insert_with(Histogram::pow2)
                    .add(blocks / entries.max(1));
                self.guards_per_trace_entry
                    .get_or_insert_with(Histogram::pow2)
                    .add(guards / entries.max(1));
            }
            Event::Timing { label, secs } => {
                let idx = self.intern_timing_label(label);
                self.timings.push((idx, secs));
            }
            _ => {}
        }
    }

    /// Index of `label` in the interned label table, adding it on first
    /// sight. Timing labels are few (a handful of phase names per run), so
    /// a linear scan beats hashing and keeps repeats allocation-free.
    fn intern_timing_label(&mut self, label: &str) -> u32 {
        match self.timing_labels.iter().position(|l| l == label) {
            Some(i) => i as u32,
            None => {
                self.timing_labels.push(label.to_string());
                (self.timing_labels.len() - 1) as u32
            }
        }
    }

    /// Count of one event kind.
    pub fn count(&self, kind: &str) -> u64 {
        self.counts.get(kind).copied().unwrap_or(0)
    }

    /// All event counts, ordered by kind tag.
    pub fn counts(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counts.iter().map(|(&k, &v)| (k, v))
    }

    /// Wall-clock timings in emission order.
    pub fn timings(&self) -> impl Iterator<Item = (&str, f64)> + '_ {
        self.timings
            .iter()
            .map(move |&(idx, secs)| (self.timing_labels[idx as usize].as_str(), secs))
    }

    /// The path-length histogram, if any path completed.
    pub fn path_length(&self) -> Option<&Histogram> {
        self.path_length.as_ref()
    }

    /// The trace-formation interarrival histogram, if two installs
    /// happened.
    pub fn trace_interarrival(&self) -> Option<&Histogram> {
        self.trace_interarrival.as_ref()
    }

    /// The exit-stub hotness histogram, if any stub was counted.
    pub fn exit_stub_hotness(&self) -> Option<&Histogram> {
        self.exit_stub_hotness.as_ref()
    }

    /// The τ-trigger latency histogram, if two triggers happened.
    pub fn tau_trigger_gap(&self) -> Option<&Histogram> {
        self.tau_trigger_gap.as_ref()
    }

    /// The blocks-per-trace-entry histogram, if any trace excursion ran.
    pub fn blocks_per_trace_entry(&self) -> Option<&Histogram> {
        self.blocks_per_trace_entry.as_ref()
    }

    /// The guards-per-trace-entry histogram, if any trace excursion ran.
    pub fn guards_per_trace_entry(&self) -> Option<&Histogram> {
        self.guards_per_trace_entry.as_ref()
    }

    /// Folds another summary in (counts and histograms add; timings
    /// concatenate; the interarrival chains stay per-summary and do not
    /// bridge across the merge).
    pub fn merge(&mut self, other: &TelemetrySummary) {
        for (kind, n) in &other.counts {
            *self.counts.entry(kind).or_insert(0) += n;
        }
        for (mine, theirs) in [
            (&mut self.path_length, &other.path_length),
            (&mut self.trace_interarrival, &other.trace_interarrival),
            (&mut self.exit_stub_hotness, &other.exit_stub_hotness),
            (&mut self.tau_trigger_gap, &other.tau_trigger_gap),
            (
                &mut self.blocks_per_trace_entry,
                &other.blocks_per_trace_entry,
            ),
            (
                &mut self.guards_per_trace_entry,
                &other.guards_per_trace_entry,
            ),
        ] {
            if let Some(theirs) = theirs {
                mine.get_or_insert_with(Histogram::pow2).merge(theirs);
            }
        }
        for &(idx, secs) in &other.timings {
            let mine = self.intern_timing_label(&other.timing_labels[idx as usize]);
            self.timings.push((mine, secs));
        }
    }

    /// Serializes the summary as a `telemetry.json` document.
    pub fn to_json(&self, label: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"label\": ");
        push_json_string(&mut out, label);
        out.push_str(",\n  \"events\": {");
        let mut first = true;
        for (kind, n) in &self.counts {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(out, "\n    \"{kind}\": {n}");
        }
        out.push_str("\n  },\n  \"histograms\": {");
        let mut first = true;
        for (name, hist) in [
            ("path_length_blocks", &self.path_length),
            ("trace_interarrival_paths", &self.trace_interarrival),
            ("exit_stub_hotness", &self.exit_stub_hotness),
            ("tau_trigger_gap", &self.tau_trigger_gap),
            ("blocks_per_trace_entry", &self.blocks_per_trace_entry),
            ("guards_per_trace_entry", &self.guards_per_trace_entry),
        ] {
            if let Some(hist) = hist {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "\n    \"{name}\": ");
                hist.write_json(&mut out);
            }
        }
        out.push_str("\n  },\n  \"timings\": [");
        let mut first = true;
        for (label, secs) in self.timings() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    {\"label\": ");
            push_json_string(&mut out, label);
            let _ = write!(out, ", \"secs\": {secs:.6}}}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

/// A [`Recorder`] folding the event stream into a shared
/// [`TelemetrySummary`].
#[derive(Debug)]
pub struct SummaryRecorder {
    state: Rc<RefCell<TelemetrySummary>>,
}

/// Reads the summary back after the recorder is uninstalled.
#[derive(Clone, Debug)]
pub struct SummaryHandle {
    state: Rc<RefCell<TelemetrySummary>>,
}

impl SummaryRecorder {
    /// Creates a recorder and the handle that will read its summary.
    pub fn new() -> (Self, SummaryHandle) {
        let state = Rc::new(RefCell::new(TelemetrySummary::new()));
        (
            SummaryRecorder {
                state: state.clone(),
            },
            SummaryHandle { state },
        )
    }
}

impl Recorder for SummaryRecorder {
    fn record(&mut self, event: &Event<'_>) {
        self.state.borrow_mut().observe(event);
    }
}

impl SummaryHandle {
    /// A snapshot of the summary accumulated so far.
    pub fn snapshot(&self) -> TelemetrySummary {
        self.state.borrow().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_counts_and_buckets() {
        let mut s = TelemetrySummary::new();
        for (blocks, at_path) in [(4u32, 50u64), (6, 60), (6, 200)] {
            s.observe(&Event::PathCompleted {
                path: 0,
                head: 1,
                blocks,
                insts: blocks * 2,
                start: "backward",
                end: "backward",
            });
            s.observe(&Event::FragmentInstall {
                head: 1,
                blocks,
                insts: blocks * 2,
                installs: 1,
                at_path,
            });
        }
        assert_eq!(s.count("path_completed"), 3);
        assert_eq!(s.count("fragment_install"), 3);
        assert_eq!(s.count("cache_flush"), 0);
        let lengths = s.path_length().unwrap();
        assert_eq!(lengths.total(), 3);
        // Interarrivals: 60-50=10 and 200-60=140.
        let inter = s.trace_interarrival().unwrap();
        assert_eq!(inter.total(), 2);
        assert_eq!(inter.max(), 140);
    }

    #[test]
    fn tau_trigger_gaps_are_per_scheme() {
        let mut s = TelemetrySummary::new();
        for (scheme, observed) in [
            ("net", 50u64),
            ("path_profile", 80),
            ("net", 150),
            ("path_profile", 100),
        ] {
            s.observe(&Event::TauTrigger {
                scheme,
                head: 0,
                tau: 50,
                observed,
            });
        }
        let gaps = s.tau_trigger_gap().unwrap();
        // net: 150-50=100; path_profile: 100-80=20. No cross-scheme gap.
        assert_eq!(gaps.total(), 2);
        assert_eq!(gaps.max(), 100);
    }

    #[test]
    fn trace_exits_feed_blocks_per_entry() {
        let mut s = TelemetrySummary::new();
        s.observe(&Event::TraceExit {
            reason: "trace_end",
            target: 3,
            blocks: 640,
            entries: 80,
            links: 79,
            guards: 160,
            at_block: 1000,
        });
        let h = s.blocks_per_trace_entry().unwrap();
        assert_eq!(h.total(), 1);
        // 640 blocks over 80 traversals = 8 blocks per entry.
        assert_eq!(h.max(), 8);
        // 160 guard checks over 80 traversals = 2 guards per entry.
        let g = s.guards_per_trace_entry().unwrap();
        assert_eq!(g.total(), 1);
        assert_eq!(g.max(), 2);
        assert_eq!(s.count("trace_exit"), 1);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = TelemetrySummary::new();
        let mut b = TelemetrySummary::new();
        let halt = Event::VmHalt {
            blocks: 1,
            insts: 1,
        };
        a.observe(&halt);
        b.observe(&halt);
        b.observe(&Event::Timing {
            label: "x",
            secs: 1.0,
        });
        a.merge(&b);
        assert_eq!(a.count("vm_halt"), 2);
        assert_eq!(a.timings().count(), 1);
        assert_eq!(a.timings().next(), Some(("x", 1.0)));
    }

    #[test]
    fn timing_labels_intern_across_repeats_and_merges() {
        let mut a = TelemetrySummary::new();
        for secs in [1.0, 2.0] {
            a.observe(&Event::Timing { label: "x", secs });
        }
        let mut b = TelemetrySummary::new();
        b.observe(&Event::Timing {
            label: "y",
            secs: 3.0,
        });
        b.observe(&Event::Timing {
            label: "x",
            secs: 4.0,
        });
        a.merge(&b);
        let got: Vec<(String, f64)> = a.timings().map(|(l, s)| (l.to_string(), s)).collect();
        assert_eq!(
            got,
            vec![
                ("x".to_string(), 1.0),
                ("x".to_string(), 2.0),
                ("y".to_string(), 3.0),
                ("x".to_string(), 4.0),
            ]
        );
        // Two distinct labels, four samples — repeats share the interned
        // String rather than cloning per event.
        assert_eq!(a.timing_labels.len(), 2);
    }

    #[test]
    fn to_json_parses_back() {
        let mut s = TelemetrySummary::new();
        s.observe(&Event::PathCompleted {
            path: 0,
            head: 1,
            blocks: 4,
            insts: 8,
            start: "backward",
            end: "backward",
        });
        s.observe(&Event::Timing {
            label: "compress",
            secs: 0.25,
        });
        let text = s.to_json("unit");
        let v = crate::json::JsonValue::parse(&text).unwrap();
        assert_eq!(v.get("label").and_then(|l| l.as_str()), Some("unit"));
        assert_eq!(
            v.get("events")
                .and_then(|e| e.get("path_completed"))
                .and_then(|n| n.as_f64()),
            Some(1.0)
        );
        assert!(v
            .get("histograms")
            .and_then(|h| h.get("path_length_blocks"))
            .is_some());
        assert_eq!(
            v.get("timings").and_then(|t| t.as_arr()).map(|a| a.len()),
            Some(1)
        );
    }
}
