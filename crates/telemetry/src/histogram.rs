//! Fixed-bucket histograms.
//!
//! Buckets are fixed at construction (no HDR-style rescaling) so that two
//! runs of the same build always bucket identically — a moving bucket
//! layout would make `telemetry.json` diffs meaningless.

use std::fmt::Write as _;

/// Power-of-two upper bounds `1, 2, 4, …, 2^20`; values above the last
/// bound land in the overflow bucket. Wide enough for path lengths (capped
/// at 1024 blocks), trace-formation interarrivals, and exit-stub counts.
pub const POW2_BOUNDS: [u64; 21] = {
    let mut bounds = [0u64; 21];
    let mut i = 0;
    while i < 21 {
        bounds[i] = 1u64 << i;
        i += 1;
    }
    bounds
};

/// A histogram with fixed inclusive upper bounds plus an overflow bucket.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    /// `bounds.len() + 1` counts; the last is the overflow bucket.
    counts: Vec<u64>,
    total: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// A histogram over the given inclusive upper bounds, which must be
    /// strictly increasing and non-empty.
    pub fn new(bounds: &'static [u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must be strictly increasing"
        );
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
            max: 0,
        }
    }

    /// A histogram over [`POW2_BOUNDS`].
    pub fn pow2() -> Self {
        Self::new(&POW2_BOUNDS)
    }

    /// Rebuilds a histogram from previously exported parts: the bucket
    /// layout, one count per bucket (`bounds.len() + 1`, the last being
    /// the overflow bucket), and the recorded sum and max. `total` is
    /// recomputed from the counts. This is the inverse of reading
    /// [`bucket_counts`](Self::bucket_counts) / [`sum`](Self::sum) /
    /// [`max`](Self::max) back out — serialized histograms (the
    /// self-profiler report format) round-trip through it.
    ///
    /// # Errors
    ///
    /// Returns a message when the count vector does not match the bucket
    /// layout.
    pub fn from_parts(
        bounds: &'static [u64],
        counts: Vec<u64>,
        sum: u64,
        max: u64,
    ) -> Result<Self, String> {
        if counts.len() != bounds.len() + 1 {
            return Err(format!(
                "histogram counts length {} does not match {} bounds (+1 overflow)",
                counts.len(),
                bounds.len()
            ));
        }
        let mut h = Histogram::new(bounds);
        h.total = counts.iter().sum();
        h.counts = counts;
        h.sum = sum;
        h.max = max;
        Ok(h)
    }

    /// Records one value.
    pub fn add(&mut self, value: u64) {
        let idx = self
            .bounds
            .partition_point(|&b| b < value)
            .min(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value, zero if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Count in the bucket covering `value`.
    pub fn count_for(&self, value: u64) -> u64 {
        let idx = self
            .bounds
            .partition_point(|&b| b < value)
            .min(self.bounds.len());
        self.counts[idx]
    }

    /// Mean of recorded values, zero if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The inclusive upper bound covering at least fraction `q` of the
    /// recorded values (`q` clamped to `[0, 1]`) — the pX readout over
    /// fixed buckets, so the answer is the bucket's upper bound, not an
    /// interpolated value. Values that landed in the overflow bucket
    /// report the recorded [`max`](Self::max). Zero if empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return match self.bounds.get(i) {
                    Some(&le) => le,
                    None => self.max,
                };
            }
        }
        self.max
    }

    /// One count per bucket in layout order: `(Some(upper_bound), count)`
    /// for the bounded buckets, `(None, count)` for the overflow bucket.
    pub fn bucket_counts(&self) -> impl Iterator<Item = (Option<u64>, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &count)| (self.bounds.get(i).copied(), count))
    }

    /// Folds another histogram with identical bounds into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket layouts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.bounds, other.bounds, "bucket layouts must match");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Appends the histogram as a JSON object with stable field order.
    /// Empty buckets are skipped to keep `telemetry.json` readable.
    pub fn write_json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"total\":{},\"sum\":{},\"max\":{},\"mean\":{:.3},\"buckets\":[",
            self.total,
            self.sum,
            self.max,
            self.mean()
        );
        let mut first = true;
        for (i, &count) in self.counts.iter().enumerate() {
            if count == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            match self.bounds.get(i) {
                Some(le) => {
                    let _ = write!(out, "{{\"le\":{le},\"count\":{count}}}");
                }
                None => {
                    let _ = write!(out, "{{\"le\":\"inf\",\"count\":{count}}}");
                }
            }
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_inclusive_upper_bound_buckets() {
        let mut h = Histogram::new(&[1, 2, 4, 8]);
        for v in [0, 1, 2, 3, 4, 5, 8, 9, 1000] {
            h.add(v);
        }
        // Bucket le=1 gets {0, 1}; le=2 gets {2}; le=4 gets {3, 4};
        // le=8 gets {5, 8}; overflow gets {9, 1000}.
        assert_eq!(h.count_for(1), 2);
        assert_eq!(h.count_for(2), 1);
        assert_eq!(h.count_for(4), 2);
        assert_eq!(h.count_for(8), 2);
        assert_eq!(h.count_for(9), 2);
        assert_eq!(h.total(), 9);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn pow2_covers_the_cap_range() {
        let mut h = Histogram::pow2();
        h.add(1024);
        h.add(1 << 20);
        h.add((1 << 20) + 1);
        assert_eq!(h.count_for(1024), 1);
        assert_eq!(h.count_for(1 << 20), 1);
        assert_eq!(h.count_for(u64::MAX), 1);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = Histogram::pow2();
        let mut b = Histogram::pow2();
        a.add(3);
        b.add(3);
        b.add(100);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count_for(3), 2);
        assert_eq!(a.max(), 100);
    }

    #[test]
    fn json_skips_empty_buckets() {
        let mut h = Histogram::new(&[1, 2]);
        h.add(2);
        let mut out = String::new();
        h.write_json(&mut out);
        assert_eq!(
            out,
            "{\"total\":1,\"sum\":2,\"max\":2,\"mean\":2.000,\"buckets\":[{\"le\":2,\"count\":1}]}"
        );
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[2, 1]);
    }

    #[test]
    fn percentiles_read_bucket_upper_bounds() {
        let mut h = Histogram::new(&[1, 2, 4, 8]);
        for v in [1, 1, 2, 3, 4, 5, 6, 7, 8, 100] {
            h.add(v);
        }
        assert_eq!(h.percentile(0.5), 4); // 5th of 10 values sits in le=4
        assert_eq!(h.percentile(0.9), 8);
        // p99 lands in the overflow bucket, which reports the real max.
        assert_eq!(h.percentile(0.99), 100);
        assert_eq!(Histogram::pow2().percentile(0.5), 0, "empty reads zero");
    }

    #[test]
    fn from_parts_round_trips_bucket_counts() {
        let mut h = Histogram::pow2();
        for v in [1, 7, 300, (1 << 20) + 5] {
            h.add(v);
        }
        let counts: Vec<u64> = h.bucket_counts().map(|(_, c)| c).collect();
        let back = Histogram::from_parts(&POW2_BOUNDS, counts, h.sum(), h.max()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.total(), 4);
        assert!(Histogram::from_parts(&POW2_BOUNDS, vec![0; 3], 0, 0).is_err());
    }
}
