//! The [`Recorder`] trait, stock recorders, and the thread-local emit path.

use std::cell::{Cell, RefCell};
use std::io::Write as _;
use std::rc::Rc;

use crate::event::Event;

/// Consumes pipeline [`Event`]s.
///
/// Recorders are installed per thread with [`install`]; producers reach
/// them through the [`emit!`](crate::emit) macro. Implementations must not
/// emit events themselves — reentrant emissions are silently dropped.
pub trait Recorder {
    /// Called once per emitted event.
    fn record(&mut self, event: &Event<'_>);

    /// Called when the recorder is uninstalled (guard drop); flush
    /// buffered output here.
    fn finish(&mut self) {}
}

/// A recorder that discards every event.
///
/// Installing it must be observationally identical to installing nothing:
/// the pipeline's outputs ([`PredictionOutcome`], Dynamo outcomes, path
/// tables) stay bit-identical, which the workspace's telemetry tests
/// assert.
///
/// [`PredictionOutcome`]: https://docs.rs/hotpath-core
#[derive(Clone, Copy, Default, Debug)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn record(&mut self, _event: &Event<'_>) {}
}

/// Where a [`JsonlRecorder`] sends its lines.
enum JsonlTarget {
    Shared(Rc<RefCell<Vec<u8>>>),
    Writer(Box<dyn std::io::Write>),
}

impl std::fmt::Debug for JsonlTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JsonlTarget::Shared(_) => f.write_str("JsonlTarget::Shared"),
            JsonlTarget::Writer(_) => f.write_str("JsonlTarget::Writer"),
        }
    }
}

/// Writes one JSON object per event, newline-terminated.
///
/// The stream is deterministic: field order is fixed and events carry
/// logical clocks only (see [`Event`]), so two identical runs produce
/// byte-identical output.
///
/// A failing sink (disk full, closed pipe) must not abort or perturb the
/// run being observed: the first write error switches the recorder into a
/// **counted-drop mode** — subsequent events are counted, not written —
/// and the drop total is readable through the handle returned by
/// [`JsonlRecorder::to_writer_counting`].
#[derive(Debug)]
pub struct JsonlRecorder {
    target: JsonlTarget,
    line: String,
    dropped: Rc<Cell<u64>>,
    sink_failed: bool,
}

impl JsonlRecorder {
    fn with_target(target: JsonlTarget) -> (Self, Rc<Cell<u64>>) {
        let dropped = Rc::new(Cell::new(0));
        let recorder = JsonlRecorder {
            target,
            line: String::new(),
            dropped: dropped.clone(),
            sink_failed: false,
        };
        (recorder, dropped)
    }

    /// A recorder writing into a shared in-memory buffer; the returned
    /// handle reads the bytes back after the recorder is uninstalled.
    pub fn to_shared_buffer() -> (Self, Rc<RefCell<Vec<u8>>>) {
        let buffer = Rc::new(RefCell::new(Vec::new()));
        let (recorder, _) = Self::with_target(JsonlTarget::Shared(buffer.clone()));
        (recorder, buffer)
    }

    /// A recorder writing to an arbitrary sink (e.g. a file).
    pub fn to_writer(writer: Box<dyn std::io::Write>) -> Self {
        Self::with_target(JsonlTarget::Writer(writer)).0
    }

    /// Like [`to_writer`](Self::to_writer), additionally returning a
    /// shared handle that counts events dropped after the sink failed.
    pub fn to_writer_counting(writer: Box<dyn std::io::Write>) -> (Self, Rc<Cell<u64>>) {
        Self::with_target(JsonlTarget::Writer(writer))
    }

    /// Events dropped because the sink failed.
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }
}

impl Recorder for JsonlRecorder {
    fn record(&mut self, event: &Event<'_>) {
        if self.sink_failed {
            // Counted-drop mode: the sink already failed once; don't keep
            // hammering it (or formatting lines nobody will see).
            self.dropped.set(self.dropped.get() + 1);
            return;
        }
        self.line.clear();
        event.write_json(&mut self.line);
        self.line.push('\n');
        match &mut self.target {
            JsonlTarget::Shared(buffer) => {
                buffer.borrow_mut().extend_from_slice(self.line.as_bytes());
            }
            JsonlTarget::Writer(writer) => {
                // Event loss on a failing sink must not abort the run the
                // telemetry is observing: degrade to counting drops.
                if writer.write_all(self.line.as_bytes()).is_err() {
                    self.sink_failed = true;
                    self.dropped.set(self.dropped.get() + 1);
                }
            }
        }
    }

    fn finish(&mut self) {
        if self.sink_failed {
            return;
        }
        if let JsonlTarget::Writer(writer) = &mut self.target {
            let _ = writer.flush();
        }
    }
}

impl Drop for JsonlRecorder {
    /// A recorder used standalone (never installed, so no
    /// [`RecorderGuard`] ever calls [`Recorder::finish`]) must still flush
    /// a buffering sink on drop, or its tail of events is silently lost.
    /// Flushing is idempotent, so the guard path flushing first is fine.
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(feature = "enabled")]
thread_local! {
    static RECORDER: RefCell<Option<Box<dyn Recorder>>> = const { RefCell::new(None) };
    static ACTIVE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// True while a recorder is installed on the current thread. Constant
/// `false` when the `enabled` feature is off, so `if enabled() { … }`
/// compiles out entirely.
#[inline(always)]
pub fn enabled() -> bool {
    #[cfg(feature = "enabled")]
    {
        ACTIVE.with(|active| active.get())
    }
    #[cfg(not(feature = "enabled"))]
    {
        false
    }
}

/// Delivers an event to the installed recorder. Prefer the
/// [`emit!`](crate::emit) macro, which skips event construction while no
/// recorder is installed.
pub fn emit_event(event: &Event<'_>) {
    #[cfg(feature = "enabled")]
    RECORDER.with(|cell| {
        // `try_borrow_mut` drops reentrant emissions (a recorder emitting
        // while recording) instead of panicking.
        if let Ok(mut slot) = cell.try_borrow_mut() {
            if let Some(recorder) = slot.as_mut() {
                recorder.record(event);
            }
        }
    });
    #[cfg(not(feature = "enabled"))]
    {
        let _ = event;
    }
}

/// Uninstalls the current thread's recorder when dropped, restoring the
/// previously installed one (installs nest).
pub struct RecorderGuard {
    #[cfg(feature = "enabled")]
    previous: Option<Box<dyn Recorder>>,
}

impl std::fmt::Debug for RecorderGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RecorderGuard")
    }
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        {
            let mut current = RECORDER.with(|cell| cell.replace(self.previous.take()));
            ACTIVE.with(|active| {
                active.set(RECORDER.with(|cell| cell.borrow().is_some()));
            });
            if let Some(recorder) = current.as_mut() {
                recorder.finish();
            }
        }
    }
}

/// Installs a recorder on the current thread until the returned guard
/// drops. With the `enabled` feature off this is a no-op (the recorder is
/// dropped immediately and nothing is ever delivered).
#[must_use = "the recorder is uninstalled when the guard drops"]
pub fn install(recorder: Box<dyn Recorder>) -> RecorderGuard {
    #[cfg(feature = "enabled")]
    {
        let previous = RECORDER.with(|cell| cell.replace(Some(recorder)));
        ACTIVE.with(|active| active.set(true));
        RecorderGuard { previous }
    }
    #[cfg(not(feature = "enabled"))]
    {
        drop(recorder);
        RecorderGuard {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tau(head: u32) -> Event<'static> {
        Event::TauTrigger {
            scheme: "net",
            head,
            tau: 1,
            observed: 1,
        }
    }

    #[test]
    fn no_recorder_means_disabled() {
        assert!(!enabled());
        // Emitting without a recorder is a quiet no-op.
        crate::emit!(tau(1));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn jsonl_recorder_captures_emitted_events() {
        let (recorder, buffer) = JsonlRecorder::to_shared_buffer();
        let guard = install(Box::new(recorder));
        assert!(enabled());
        crate::emit!(tau(1));
        crate::emit!(tau(2));
        drop(guard);
        assert!(!enabled());
        let text = String::from_utf8(buffer.borrow().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"head\":1"));
        assert!(lines[1].contains("\"head\":2"));
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn installs_nest_and_restore() {
        let (outer, outer_buf) = JsonlRecorder::to_shared_buffer();
        let outer_guard = install(Box::new(outer));
        crate::emit!(tau(1));
        {
            let (inner, inner_buf) = JsonlRecorder::to_shared_buffer();
            let inner_guard = install(Box::new(inner));
            crate::emit!(tau(2));
            drop(inner_guard);
            assert_eq!(
                inner_buf.borrow().iter().filter(|&&b| b == b'\n').count(),
                1
            );
        }
        crate::emit!(tau(3));
        drop(outer_guard);
        let text = String::from_utf8(outer_buf.borrow().clone()).unwrap();
        assert_eq!(text.lines().count(), 2, "outer missed the inner event");
        assert!(text.contains("\"head\":1") && text.contains("\"head\":3"));
    }

    /// Succeeds for `ok` writes, then fails forever.
    struct DyingSink {
        ok: u32,
    }

    impl std::io::Write for DyingSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            if self.ok == 0 {
                return Err(std::io::Error::other("sink died"));
            }
            self.ok -= 1;
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn failing_sink_degrades_to_counted_drops() {
        let (mut recorder, dropped) =
            JsonlRecorder::to_writer_counting(Box::new(DyingSink { ok: 2 }));
        for head in 0..10 {
            recorder.record(&tau(head));
        }
        // Two lines landed; the third write failed and every event since
        // (including the failed one) is counted, not written.
        assert_eq!(recorder.dropped(), 8);
        assert_eq!(dropped.get(), 8);
        recorder.finish(); // must not touch the dead sink
    }

    /// Holds written bytes internally; publishes them to the shared
    /// buffer only when flushed — a stand-in for `BufWriter` + file.
    struct BufferingSink {
        pending: Vec<u8>,
        published: Rc<RefCell<Vec<u8>>>,
    }

    impl std::io::Write for BufferingSink {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.pending.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> std::io::Result<()> {
            self.published.borrow_mut().append(&mut self.pending);
            Ok(())
        }
    }

    #[test]
    fn dropping_an_uninstalled_recorder_flushes_its_sink() {
        let published = Rc::new(RefCell::new(Vec::new()));
        let mut recorder = JsonlRecorder::to_writer(Box::new(BufferingSink {
            pending: Vec::new(),
            published: published.clone(),
        }));
        recorder.record(&tau(1));
        recorder.record(&tau(2));
        assert!(
            published.borrow().is_empty(),
            "sink buffers until flushed; nothing published yet"
        );
        drop(recorder);
        let text = String::from_utf8(published.borrow().clone()).unwrap();
        assert_eq!(text.lines().count(), 2, "drop must flush buffered lines");
        assert!(text.contains("\"head\":1") && text.contains("\"head\":2"));
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_feature_never_records() {
        let (recorder, buffer) = JsonlRecorder::to_shared_buffer();
        let guard = install(Box::new(recorder));
        assert!(!enabled());
        crate::emit!(tau(1));
        drop(guard);
        assert!(buffer.borrow().is_empty());
    }
}
