//! The serving protocol: length-prefixed frames carrying a fixed binary
//! encoding of requests and responses.
//!
//! # Frame layout
//!
//! Every message — both directions — is one frame:
//!
//! ```text
//! length:  u32 LE    payload byte count (opcode included)
//! opcode:  u8        message discriminator (see below)
//! body:    ...       opcode-specific fields, little-endian
//! ```
//!
//! Requests use opcodes `0x01..=0x0C`, responses `0x80..=0x8B`; the high
//! bit tells the two apart on the wire. Variable-length fields (strings,
//! event batches, snapshot blobs) are `u32`-length-prefixed; batched
//! control-flow events use the VM's 14-byte
//! [`encode_events`](hotpath_vm::encode_events) wire form. Frames are
//! capped at [`MAX_FRAME_BYTES`] so a corrupt length prefix cannot make
//! the server allocate unboundedly.
//!
//! The same [`Request`]/[`Response`] enums are the in-process API: the
//! TCP front-end is a byte-faithful transport for them, nothing more.

use std::io::{self, Read, Write};

use hotpath_vm::{decode_events, encode_events, BlockEvent, RunStats};
use hotpath_workloads::Scale;

use crate::session::{SessionConfig, SessionStatus};
use crate::wire::{put_bytes, put_stats, put_str, put_u32, put_u64, ReadError, Reader};

/// Largest accepted frame payload (64 MiB) — far above any legitimate
/// message, small enough to bound a malicious length prefix.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// A client-to-server message.
#[derive(Clone, PartialEq, Debug)]
pub enum Request {
    /// Open a session (opcode `0x01`).
    Open {
        /// Session configuration.
        config: SessionConfig,
    },
    /// Advance an exec session by at most `fuel` blocks (`0x02`);
    /// `fuel: None` runs to completion.
    Run {
        /// Target session.
        session: u64,
        /// Block budget for this slice; `None` is unbounded.
        fuel: Option<u64>,
    },
    /// Stream a batch of control-flow events into an ingest session
    /// (`0x03`).
    Ingest {
        /// Target session.
        session: u64,
        /// The batched events.
        events: Vec<BlockEvent>,
    },
    /// Query a session's status (`0x04`).
    Query {
        /// Target session.
        session: u64,
    },
    /// Capture a session into a snapshot blob (`0x05`).
    Snapshot {
        /// Target session.
        session: u64,
    },
    /// Open a new session restored from a snapshot blob (`0x06`).
    Restore {
        /// A blob produced by a prior `Snapshot`.
        blob: Vec<u8>,
    },
    /// Close a session, releasing its shard slot (`0x07`).
    Close {
        /// Target session.
        session: u64,
    },
    /// Stop the server after replying (`0x08`). TCP only; the in-process
    /// API shuts down by dropping the manager.
    Shutdown,
    /// Flush a session's fragment cache (`0x09`).
    Flush {
        /// Target session.
        session: u64,
    },
    /// Query whole-server counters (`0x0A`) — live sessions, lifetime
    /// open/close totals, connection counts, and peak RSS. The scale
    /// sweep and the CI leak check read these to prove the session table
    /// drains to zero and memory stays bounded.
    Stats,
    /// Publish a session's warm state into the fleet profile store
    /// (`0x0B`). The store merges it into the per-key aggregate under the
    /// key's merge policy; later sessions opened with
    /// [`SessionConfig::prewarm`] import that aggregate at admission.
    PublishProfile {
        /// Session whose warm state is published.
        session: u64,
    },
    /// Fetch the store's aggregate profile for a configuration (`0x0C`)
    /// as a sealed blob — offline inspection and the `profile_sim`
    /// harness read these.
    FetchProfile {
        /// Configuration whose aggregate is wanted (only the profile-key
        /// fields — workload, scale, scheme, delay — select it).
        config: SessionConfig,
    },
    /// A request stamped with a client-chosen sequence number (`0x0D`),
    /// making a re-send after connection loss idempotent at the shard.
    ///
    /// For session-scoped mutations the number is a per-session sequence
    /// the shard deduplicates on (a replayed number returns the cached
    /// response instead of re-executing). For `Open`/`Restore` it is a
    /// client nonce: a replayed open returns the already-opened session
    /// instead of leaking a second one. `seq` must be nonzero and the
    /// inner request must not itself be `Sequenced`.
    Sequenced {
        /// Nonzero sequence number / open nonce.
        seq: u64,
        /// The wrapped request.
        inner: Box<Request>,
    },
}

impl Request {
    /// The session a sequenced mutation targets, if it is session-scoped
    /// (`None` for opens, restores, and non-mutating requests).
    pub(crate) fn sequenced_session(&self) -> Option<u64> {
        match *self {
            Request::Run { session, .. }
            | Request::Ingest { session, .. }
            | Request::Flush { session }
            | Request::Close { session }
            | Request::PublishProfile { session } => Some(session),
            _ => None,
        }
    }
}

/// What pre-warming did at admission, carried in [`Response::Opened`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub enum PrewarmOutcome {
    /// The session did not ask to be pre-warmed.
    #[default]
    NotRequested,
    /// The session imported the fleet aggregate before its first block.
    Warmed {
        /// Fragments imported into the session's cache.
        fragments: u64,
        /// Counter-table entries (exit + NET) imported.
        counters: u64,
    },
    /// Pre-warming was requested but refused; the session opened cold.
    /// Results are unaffected either way — this costs warm-up time only.
    Rejected {
        /// Why (no aggregate yet, warm state failed validation, …).
        reason: String,
    },
}

/// Whole-server counters carried by [`Response::ServerStats`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ServerStats {
    /// Sessions currently resident across every shard.
    pub live_sessions: u64,
    /// Sessions opened (including restores) over the server's lifetime.
    pub sessions_opened: u64,
    /// Sessions closed over the server's lifetime.
    pub sessions_closed: u64,
    /// Connections currently open on the reactor front-end (0 for the
    /// in-process or blocking front-ends).
    pub connections: u64,
    /// Connections accepted over the server's lifetime.
    pub conns_accepted: u64,
    /// Peak resident set size of the serving process in bytes (0 where
    /// the platform offers no cheap readout).
    pub rss_max_bytes: u64,
    /// Per-key aggregate profiles held by the fleet profile store.
    pub profiles_held: u64,
    /// Canonical encoded size of the profile store in bytes.
    pub profile_bytes: u64,
    /// How far behind the store the staleness-worst shard's read-mostly
    /// profile cache is, in store generations (0 = fully refreshed).
    pub profile_refresh_age: u64,
    /// Sessions pre-warmed from the store over the server's lifetime.
    pub sessions_prewarmed: u64,
    /// Shard workers restarted by their supervisor after a panic.
    pub shards_restarted: u64,
    /// Sessions re-admitted (from a sealed snapshot or cold) after their
    /// shard worker panicked.
    pub sessions_readmitted: u64,
    /// Profiles currently held in the store's quarantine bucket (pending
    /// re-promotion; never merged into the fleet aggregate).
    pub profiles_quarantined: u64,
}

/// A server-to-client message.
#[derive(Clone, PartialEq, Debug)]
pub enum Response {
    /// Session opened (`0x80`).
    Opened {
        /// Assigned session id.
        session: u64,
        /// Shard the session landed on.
        shard: u32,
        /// What pre-warming did (NotRequested for ordinary opens).
        prewarm: PrewarmOutcome,
    },
    /// A run slice finished (`0x81`).
    Ran {
        /// True once the program halted.
        done: bool,
        /// Statistics so far (final when `done`).
        stats: RunStats,
    },
    /// An event batch was ingested (`0x82`); totals after the batch.
    Ingested {
        /// Events ingested over the session's lifetime.
        events: u64,
        /// Completed profiled paths.
        paths: u64,
        /// Live fragments in the engine cache.
        fragments: u64,
    },
    /// Session status (`0x83`).
    Status(SessionStatus),
    /// A snapshot blob (`0x84`).
    SnapshotBlob {
        /// The sealed snapshot bytes.
        blob: Vec<u8>,
    },
    /// Session closed (`0x85`).
    Closed {
        /// Blocks the session executed over its lifetime.
        blocks: u64,
    },
    /// The shard's queue or session table is full; retry later (`0x86`).
    Busy,
    /// The request failed (`0x87`).
    Error {
        /// Human-readable cause.
        message: String,
    },
    /// The server acknowledged a shutdown request (`0x88`).
    ShuttingDown,
    /// Whole-server counters (`0x89`), answering [`Request::Stats`].
    ServerStats(ServerStats),
    /// A profile publish was merged into the store (`0x8A`).
    ProfilePublished {
        /// Workload label the profile aggregates under.
        workload: String,
        /// Publishers folded into the key's aggregate so far.
        publishers: u64,
        /// Store generation after the merge.
        generation: u64,
        /// Fragments in the rebuilt aggregate.
        fragments: u64,
        /// The publisher's logical epoch at capture.
        epoch: u64,
        /// True when the publish landed in the quarantine bucket (the
        /// session was degraded or poisoned) instead of the fleet
        /// aggregate.
        quarantined: bool,
    },
    /// The store's sealed aggregate profile blob (`0x8B`), answering
    /// [`Request::FetchProfile`].
    ProfileBlob {
        /// A sealed `HPFP` blob (see
        /// [`SessionProfile`](crate::SessionProfile)).
        blob: Vec<u8>,
    },
}

/// Why a payload failed to decode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProtocolError {
    /// The payload was empty or the opcode is not assigned.
    BadOpcode(u8),
    /// A field was truncated or failed validation; names the field.
    Malformed(&'static str),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtocolError::Malformed(field) => write!(f, "malformed field `{field}`"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<ReadError> for ProtocolError {
    fn from(e: ReadError) -> Self {
        ProtocolError::Malformed(e.0)
    }
}

/// `fuel: None` on the wire.
const NO_FUEL: u64 = u64::MAX;

fn put_config(out: &mut Vec<u8>, config: &SessionConfig) {
    out.push(config.workload.map_or(0xFF, |w| {
        hotpath_workloads::ALL_WORKLOADS
            .iter()
            .position(|&x| x == w)
            .unwrap() as u8
    }));
    out.push(match config.scale {
        Scale::Smoke => 0,
        Scale::Small => 1,
        Scale::Full => 2,
    });
    out.push(match config.scheme {
        hotpath_dynamo::Scheme::Net => 0,
        hotpath_dynamo::Scheme::PathProfile => 1,
    });
    put_u64(out, config.delay);
    put_u64(out, config.fuel_budget.unwrap_or(NO_FUEL));
    out.push(match config.opt_level {
        hotpath_vm::OptLevel::None => 0,
        hotpath_vm::OptLevel::Guards => 1,
        hotpath_vm::OptLevel::Full => 2,
    });
    out.push(u8::from(config.prewarm));
}

fn read_config(r: &mut Reader<'_>) -> Result<SessionConfig, ProtocolError> {
    let workload = match r.u8("workload")? {
        0xFF => None,
        idx => Some(
            hotpath_workloads::ALL_WORKLOADS
                .get(idx as usize)
                .copied()
                .ok_or(ProtocolError::Malformed("workload"))?,
        ),
    };
    let scale = match r.u8("scale")? {
        0 => Scale::Smoke,
        1 => Scale::Small,
        2 => Scale::Full,
        _ => return Err(ProtocolError::Malformed("scale")),
    };
    let scheme = match r.u8("scheme")? {
        0 => hotpath_dynamo::Scheme::Net,
        1 => hotpath_dynamo::Scheme::PathProfile,
        _ => return Err(ProtocolError::Malformed("scheme")),
    };
    let delay = r.u64("delay")?;
    if delay == 0 {
        return Err(ProtocolError::Malformed("delay"));
    }
    let fuel_budget = match r.u64("fuel_budget")? {
        NO_FUEL => None,
        budget => Some(budget),
    };
    let opt_level = match r.u8("opt_level")? {
        0 => hotpath_vm::OptLevel::None,
        1 => hotpath_vm::OptLevel::Guards,
        2 => hotpath_vm::OptLevel::Full,
        _ => return Err(ProtocolError::Malformed("opt_level")),
    };
    let prewarm = match r.u8("prewarm")? {
        0 => false,
        1 => true,
        _ => return Err(ProtocolError::Malformed("prewarm")),
    };
    Ok(SessionConfig {
        workload,
        scale,
        scheme,
        delay,
        fuel_budget,
        opt_level,
        prewarm,
    })
}

fn put_prewarm(out: &mut Vec<u8>, outcome: &PrewarmOutcome) {
    match outcome {
        PrewarmOutcome::NotRequested => out.push(0),
        PrewarmOutcome::Warmed {
            fragments,
            counters,
        } => {
            out.push(1);
            put_u64(out, *fragments);
            put_u64(out, *counters);
        }
        PrewarmOutcome::Rejected { reason } => {
            out.push(2);
            put_str(out, reason);
        }
    }
}

fn read_prewarm(r: &mut Reader<'_>) -> Result<PrewarmOutcome, ProtocolError> {
    Ok(match r.u8("prewarm outcome")? {
        0 => PrewarmOutcome::NotRequested,
        1 => PrewarmOutcome::Warmed {
            fragments: r.u64("prewarm fragments")?,
            counters: r.u64("prewarm counters")?,
        },
        2 => PrewarmOutcome::Rejected {
            reason: r.str("prewarm reason")?.to_string(),
        },
        _ => return Err(ProtocolError::Malformed("prewarm outcome")),
    })
}

impl Request {
    /// Encodes the request as a frame payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Open { config } => {
                out.push(0x01);
                put_config(&mut out, config);
            }
            Request::Run { session, fuel } => {
                out.push(0x02);
                put_u64(&mut out, *session);
                put_u64(&mut out, fuel.unwrap_or(NO_FUEL));
            }
            Request::Ingest { session, events } => {
                out.push(0x03);
                put_u64(&mut out, *session);
                let mut wire = Vec::new();
                encode_events(events, &mut wire);
                put_bytes(&mut out, &wire);
            }
            Request::Query { session } => {
                out.push(0x04);
                put_u64(&mut out, *session);
            }
            Request::Snapshot { session } => {
                out.push(0x05);
                put_u64(&mut out, *session);
            }
            Request::Restore { blob } => {
                out.push(0x06);
                put_bytes(&mut out, blob);
            }
            Request::Close { session } => {
                out.push(0x07);
                put_u64(&mut out, *session);
            }
            Request::Shutdown => out.push(0x08),
            Request::Flush { session } => {
                out.push(0x09);
                put_u64(&mut out, *session);
            }
            Request::Stats => out.push(0x0A),
            Request::PublishProfile { session } => {
                out.push(0x0B);
                put_u64(&mut out, *session);
            }
            Request::FetchProfile { config } => {
                out.push(0x0C);
                put_config(&mut out, config);
            }
            Request::Sequenced { seq, inner } => {
                out.push(0x0D);
                put_u64(&mut out, *seq);
                out.extend_from_slice(&inner.encode());
            }
        }
        out
    }

    /// Decodes a frame payload into a request.
    ///
    /// # Errors
    ///
    /// See [`ProtocolError`]; trailing bytes are rejected.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtocolError> {
        let (&opcode, body) = payload.split_first().ok_or(ProtocolError::BadOpcode(0))?;
        let mut r = Reader::new(body);
        let request = match opcode {
            0x01 => Request::Open {
                config: read_config(&mut r)?,
            },
            0x02 => Request::Run {
                session: r.u64("session")?,
                fuel: match r.u64("fuel")? {
                    NO_FUEL => None,
                    f => Some(f),
                },
            },
            0x03 => {
                let session = r.u64("session")?;
                let wire = r.bytes("events")?;
                let events = decode_events(wire).map_err(|_| ProtocolError::Malformed("events"))?;
                Request::Ingest { session, events }
            }
            0x04 => Request::Query {
                session: r.u64("session")?,
            },
            0x05 => Request::Snapshot {
                session: r.u64("session")?,
            },
            0x06 => Request::Restore {
                blob: r.bytes("blob")?.to_vec(),
            },
            0x07 => Request::Close {
                session: r.u64("session")?,
            },
            0x08 => Request::Shutdown,
            0x09 => Request::Flush {
                session: r.u64("session")?,
            },
            0x0A => Request::Stats,
            0x0B => Request::PublishProfile {
                session: r.u64("session")?,
            },
            0x0C => Request::FetchProfile {
                config: read_config(&mut r)?,
            },
            0x0D => {
                let seq = r.u64("seq")?;
                if seq == 0 {
                    return Err(ProtocolError::Malformed("seq"));
                }
                let rest = r.take(r.remaining(), "sequenced inner")?;
                let inner = Request::decode(rest)?;
                if matches!(inner, Request::Sequenced { .. }) {
                    return Err(ProtocolError::Malformed("nested sequenced"));
                }
                Request::Sequenced {
                    seq,
                    inner: Box::new(inner),
                }
            }
            op => return Err(ProtocolError::BadOpcode(op)),
        };
        if r.remaining() != 0 {
            return Err(ProtocolError::Malformed("trailing bytes"));
        }
        Ok(request)
    }
}

impl Response {
    /// Encodes the response as a frame payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Opened {
                session,
                shard,
                prewarm,
            } => {
                out.push(0x80);
                put_u64(&mut out, *session);
                put_u32(&mut out, *shard);
                put_prewarm(&mut out, prewarm);
            }
            Response::Ran { done, stats } => {
                out.push(0x81);
                out.push(u8::from(*done));
                put_stats(&mut out, stats);
            }
            Response::Ingested {
                events,
                paths,
                fragments,
            } => {
                out.push(0x82);
                put_u64(&mut out, *events);
                put_u64(&mut out, *paths);
                put_u64(&mut out, *fragments);
            }
            Response::Status(status) => {
                out.push(0x83);
                put_u64(&mut out, status.session);
                put_u32(&mut out, status.shard);
                put_str(&mut out, &status.workload);
                out.push(u8::from(status.done));
                put_stats(&mut out, &status.stats);
                put_u64(&mut out, status.fragments);
                put_u64(&mut out, status.installs);
                put_u64(&mut out, status.flushes);
                put_u64(&mut out, status.paths);
                put_str(&mut out, &status.mode);
            }
            Response::SnapshotBlob { blob } => {
                out.push(0x84);
                put_bytes(&mut out, blob);
            }
            Response::Closed { blocks } => {
                out.push(0x85);
                put_u64(&mut out, *blocks);
            }
            Response::Busy => out.push(0x86),
            Response::Error { message } => {
                out.push(0x87);
                put_str(&mut out, message);
            }
            Response::ShuttingDown => out.push(0x88),
            Response::ServerStats(stats) => {
                out.push(0x89);
                put_u64(&mut out, stats.live_sessions);
                put_u64(&mut out, stats.sessions_opened);
                put_u64(&mut out, stats.sessions_closed);
                put_u64(&mut out, stats.connections);
                put_u64(&mut out, stats.conns_accepted);
                put_u64(&mut out, stats.rss_max_bytes);
                put_u64(&mut out, stats.profiles_held);
                put_u64(&mut out, stats.profile_bytes);
                put_u64(&mut out, stats.profile_refresh_age);
                put_u64(&mut out, stats.sessions_prewarmed);
                put_u64(&mut out, stats.shards_restarted);
                put_u64(&mut out, stats.sessions_readmitted);
                put_u64(&mut out, stats.profiles_quarantined);
            }
            Response::ProfilePublished {
                workload,
                publishers,
                generation,
                fragments,
                epoch,
                quarantined,
            } => {
                out.push(0x8A);
                put_str(&mut out, workload);
                put_u64(&mut out, *publishers);
                put_u64(&mut out, *generation);
                put_u64(&mut out, *fragments);
                put_u64(&mut out, *epoch);
                out.push(u8::from(*quarantined));
            }
            Response::ProfileBlob { blob } => {
                out.push(0x8B);
                put_bytes(&mut out, blob);
            }
        }
        out
    }

    /// Decodes a frame payload into a response.
    ///
    /// # Errors
    ///
    /// See [`ProtocolError`]; trailing bytes are rejected.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtocolError> {
        let (&opcode, body) = payload.split_first().ok_or(ProtocolError::BadOpcode(0))?;
        let mut r = Reader::new(body);
        let flag = |r: &mut Reader<'_>, field| match r.u8(field)? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(ProtocolError::Malformed(field)),
        };
        let response = match opcode {
            0x80 => Response::Opened {
                session: r.u64("session")?,
                shard: r.u32("shard")?,
                prewarm: read_prewarm(&mut r)?,
            },
            0x81 => Response::Ran {
                done: flag(&mut r, "done")?,
                stats: r.stats("stats")?,
            },
            0x82 => Response::Ingested {
                events: r.u64("events")?,
                paths: r.u64("paths")?,
                fragments: r.u64("fragments")?,
            },
            0x83 => Response::Status(SessionStatus {
                session: r.u64("session")?,
                shard: r.u32("shard")?,
                workload: r.str("workload")?.to_string(),
                done: flag(&mut r, "done")?,
                stats: r.stats("stats")?,
                fragments: r.u64("fragments")?,
                installs: r.u64("installs")?,
                flushes: r.u64("flushes")?,
                paths: r.u64("paths")?,
                mode: r.str("mode")?.to_string(),
            }),
            0x84 => Response::SnapshotBlob {
                blob: r.bytes("blob")?.to_vec(),
            },
            0x85 => Response::Closed {
                blocks: r.u64("blocks")?,
            },
            0x86 => Response::Busy,
            0x87 => Response::Error {
                message: r.str("message")?.to_string(),
            },
            0x88 => Response::ShuttingDown,
            0x89 => Response::ServerStats(ServerStats {
                live_sessions: r.u64("live_sessions")?,
                sessions_opened: r.u64("sessions_opened")?,
                sessions_closed: r.u64("sessions_closed")?,
                connections: r.u64("connections")?,
                conns_accepted: r.u64("conns_accepted")?,
                rss_max_bytes: r.u64("rss_max_bytes")?,
                profiles_held: r.u64("profiles_held")?,
                profile_bytes: r.u64("profile_bytes")?,
                profile_refresh_age: r.u64("profile_refresh_age")?,
                sessions_prewarmed: r.u64("sessions_prewarmed")?,
                shards_restarted: r.u64("shards_restarted")?,
                sessions_readmitted: r.u64("sessions_readmitted")?,
                profiles_quarantined: r.u64("profiles_quarantined")?,
            }),
            0x8A => Response::ProfilePublished {
                workload: r.str("workload")?.to_string(),
                publishers: r.u64("publishers")?,
                generation: r.u64("generation")?,
                fragments: r.u64("fragments")?,
                epoch: r.u64("epoch")?,
                quarantined: flag(&mut r, "quarantined")?,
            },
            0x8B => Response::ProfileBlob {
                blob: r.bytes("blob")?.to_vec(),
            },
            op => return Err(ProtocolError::BadOpcode(op)),
        };
        if r.remaining() != 0 {
            return Err(ProtocolError::Malformed("trailing bytes"));
        }
        Ok(response)
    }
}

/// Writes one frame (length prefix + payload) to `w`.
///
/// # Errors
///
/// Propagates I/O failures; rejects payloads over [`MAX_FRAME_BYTES`].
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "frame of {} bytes exceeds the {MAX_FRAME_BYTES}-byte cap",
                payload.len()
            ),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame from `r`. Returns `None` on a clean end-of-stream
/// (the peer closed between frames).
///
/// # Errors
///
/// Propagates I/O failures; rejects length prefixes over
/// [`MAX_FRAME_BYTES`] and streams that end mid-frame.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended inside a frame length prefix",
                ))
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_BYTES}-byte cap"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_ir::BlockId;
    use hotpath_vm::TransferKind;
    use hotpath_workloads::WorkloadName;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Open {
                config: SessionConfig::exec(WorkloadName::Compress, Scale::Smoke),
            },
            Request::Open {
                config: SessionConfig {
                    fuel_budget: Some(123_456),
                    ..SessionConfig::ingest()
                },
            },
            Request::Run {
                session: 7,
                fuel: Some(10_000),
            },
            Request::Run {
                session: 7,
                fuel: None,
            },
            Request::Ingest {
                session: 9,
                events: vec![
                    BlockEvent {
                        from: None,
                        block: BlockId::new(0),
                        kind: TransferKind::Start,
                        backward: false,
                        block_size: 3,
                    },
                    BlockEvent {
                        from: Some(BlockId::new(0)),
                        block: BlockId::new(1),
                        kind: TransferKind::BranchTaken,
                        backward: true,
                        block_size: 5,
                    },
                ],
            },
            Request::Query { session: 1 },
            Request::Snapshot { session: 2 },
            Request::Restore {
                blob: vec![1, 2, 3, 4],
            },
            Request::Close { session: 3 },
            Request::Shutdown,
            Request::Flush { session: 4 },
            Request::Stats,
            Request::PublishProfile { session: 5 },
            Request::FetchProfile {
                config: SessionConfig::exec(WorkloadName::Li, Scale::Small).with_prewarm(true),
            },
            Request::Sequenced {
                seq: 17,
                inner: Box::new(Request::Run {
                    session: 7,
                    fuel: Some(4_096),
                }),
            },
            Request::Sequenced {
                seq: u64::MAX,
                inner: Box::new(Request::Open {
                    config: SessionConfig::exec(WorkloadName::Compress, Scale::Smoke),
                }),
            },
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Opened {
                session: 11,
                shard: 2,
                prewarm: PrewarmOutcome::NotRequested,
            },
            Response::Opened {
                session: 12,
                shard: 0,
                prewarm: PrewarmOutcome::Warmed {
                    fragments: 9,
                    counters: 40,
                },
            },
            Response::Opened {
                session: 13,
                shard: 1,
                prewarm: PrewarmOutcome::Rejected {
                    reason: "no aggregate profile for this key yet".to_string(),
                },
            },
            Response::Ran {
                done: true,
                stats: RunStats {
                    blocks_executed: 100,
                    insts_executed: 400,
                    cond_branches: 50,
                    indirect_branches: 2,
                    calls: 7,
                    backward_transfers: 49,
                    max_call_depth: 3,
                    halted: true,
                },
            },
            Response::Ingested {
                events: 280,
                paths: 40,
                fragments: 3,
            },
            Response::Status(SessionStatus {
                session: 11,
                shard: 2,
                workload: "compress".to_string(),
                done: false,
                stats: RunStats::default(),
                fragments: 4,
                installs: 6,
                flushes: 1,
                paths: 123,
                mode: "full_linking".to_string(),
            }),
            Response::SnapshotBlob {
                blob: vec![0xAB; 37],
            },
            Response::Closed { blocks: 999 },
            Response::Busy,
            Response::Error {
                message: "no such session".to_string(),
            },
            Response::ShuttingDown,
            Response::ServerStats(ServerStats {
                live_sessions: 10_000,
                sessions_opened: 20_000,
                sessions_closed: 10_000,
                connections: 64,
                conns_accepted: 128,
                rss_max_bytes: 1 << 30,
                profiles_held: 9,
                profile_bytes: 48_000,
                profile_refresh_age: 2,
                sessions_prewarmed: 5_000,
                shards_restarted: 3,
                sessions_readmitted: 17,
                profiles_quarantined: 2,
            }),
            Response::ProfilePublished {
                workload: "compress".to_string(),
                publishers: 4,
                generation: 7,
                fragments: 12,
                epoch: 250_000,
                quarantined: false,
            },
            Response::ProfilePublished {
                workload: "li".to_string(),
                publishers: 1,
                generation: 0,
                fragments: 3,
                epoch: 9_000,
                quarantined: true,
            },
            Response::ProfileBlob {
                blob: vec![0xCD; 21],
            },
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for request in sample_requests() {
            let payload = request.encode();
            assert_eq!(
                Request::decode(&payload),
                Ok(request.clone()),
                "{request:?}"
            );
        }
    }

    #[test]
    fn every_response_round_trips() {
        for response in sample_responses() {
            let payload = response.encode();
            assert_eq!(
                Response::decode(&payload),
                Ok(response.clone()),
                "{response:?}"
            );
        }
    }

    #[test]
    fn rejects_bad_opcodes_and_trailing_bytes() {
        assert_eq!(Request::decode(&[]), Err(ProtocolError::BadOpcode(0)));
        assert_eq!(
            Request::decode(&[0x7E]),
            Err(ProtocolError::BadOpcode(0x7E))
        );
        assert_eq!(
            Response::decode(&[0x01]),
            Err(ProtocolError::BadOpcode(0x01))
        );
        let mut payload = Request::Shutdown.encode();
        payload.push(0);
        assert_eq!(
            Request::decode(&payload),
            Err(ProtocolError::Malformed("trailing bytes"))
        );
    }

    #[test]
    fn sequenced_rejects_zero_seq_and_nesting() {
        let zero = Request::Sequenced {
            seq: 0,
            inner: Box::new(Request::Stats),
        };
        assert_eq!(
            Request::decode(&zero.encode()),
            Err(ProtocolError::Malformed("seq"))
        );
        let nested = Request::Sequenced {
            seq: 1,
            inner: Box::new(Request::Sequenced {
                seq: 2,
                inner: Box::new(Request::Stats),
            }),
        };
        assert_eq!(
            Request::decode(&nested.encode()),
            Err(ProtocolError::Malformed("nested sequenced"))
        );
    }

    #[test]
    fn frames_round_trip_over_a_byte_stream() {
        let mut stream = Vec::new();
        for request in sample_requests() {
            write_frame(&mut stream, &request.encode()).unwrap();
        }
        let mut cursor = io::Cursor::new(stream);
        for expected in sample_requests() {
            let payload = read_frame(&mut cursor).unwrap().expect("frame present");
            assert_eq!(Request::decode(&payload), Ok(expected));
        }
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn read_frame_rejects_oversized_and_truncated() {
        let huge = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes();
        let err = read_frame(&mut io::Cursor::new(huge.to_vec())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // A frame whose payload never arrives is an error, not a None.
        let mut truncated = 10u32.to_le_bytes().to_vec();
        truncated.extend_from_slice(&[1, 2, 3]);
        assert!(read_frame(&mut io::Cursor::new(truncated)).is_err());
    }
}
