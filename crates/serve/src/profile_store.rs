//! The cross-session profile store: fleet-level aggregation of engine
//! warm state, so a new session starts past the τ-warm-up phase its
//! siblings already paid for.
//!
//! Per-session profiling (the paper's thesis: a little profiling buys a
//! lot of prediction) leaves every session paying the same warm-up cost
//! for the same hot paths. The store closes that loop at the fleet
//! level: sessions **publish** their [`EngineWarmState`] (fragments,
//! exit-stub counters, armed targets, NET counters) keyed by workload
//! configuration; the store folds publishes into a per-key aggregate;
//! and new sessions opened with [`SessionConfig::prewarm`] import the
//! aggregate at admission. Warm state is policy only — pre-warming
//! changes *when* traces install, never *what* executes — so results
//! stay bit-identical to a cold session (pinned by
//! `tests/profile_store.rs`).
//!
//! # Order independence
//!
//! Raw per-key state is kept in commutative form — publisher counts,
//! counter sums, and epoch maxima in ordered maps — so merging the same
//! set of publishes in **any order or interleaving** produces
//! byte-identical store contents ([`ProfileStore::encode`]) and an
//! identical derived aggregate. The aggregate itself is a pure function
//! of the raw state and the key's [`MergePolicy`], rebuilt on the
//! publish path (rare, off the admission hot path); admission only
//! checks an atomic generation counter and swaps an `Arc` when a shard's
//! read-mostly cache is behind (see `shard.rs`).
//!
//! # Merge policies
//!
//! * **union** — every fragment any publisher installed; counters are
//!   summed. Maximum coverage, aggressive counter warm-up.
//! * **frequency-weighted** — keeps fragments and armed targets seen by
//!   at least `min_percent` of publishers; counters are per-publisher
//!   means. Filters one-session noise, calibrated counters.
//! * **exponential-decay** — weights each publish by its age in epoch
//!   buckets (publisher's logical clock, quantized by
//!   [`ProfileStoreConfig::epoch_quantum`]): weight halves every
//!   `half_life` buckets behind the newest publish, and entries decayed
//!   to zero drop out. Tracks phase shifts without a wall clock, so it
//!   stays deterministic.
//!
//! All three are deterministic and seeded: equal-weight fragments are
//! ordered by a seeded FNV tie-break so aggregate install order never
//! depends on map iteration or publish arrival. The offline
//! `profile_sim` harness (crates/bench) replays recorded suites against
//! all three to pick a per-workload policy before it touches serve.
//!
//! [`SessionConfig::prewarm`]: crate::SessionConfig::prewarm

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hotpath_dynamo::{EngineWarmState, FragmentRecord, Scheme};
use hotpath_workloads::{Scale, WorkloadName, ALL_WORKLOADS};

use crate::session::SessionConfig;
use crate::wire::{fnv1a64, put_u32, put_u64, put_warm, read_warm, ReadError, Reader};

/// Magic bytes opening every published profile blob ("Hot Path Fleet
/// Profile").
pub const PROFILE_MAGIC: [u8; 4] = *b"HPFP";

/// The profile-blob format version this build writes and the only one it
/// reads.
pub const PROFILE_VERSION: u16 = 1;

/// The configuration coordinates profiles aggregate under. Two sessions
/// share an aggregate iff their workload, scale, scheme, and delay all
/// match; fuel budgets and trace optimization levels are admission and
/// speed knobs that never change what the engine learns, so they are
/// deliberately excluded.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ProfileKey {
    /// Workload the sessions execute; `None` groups ingest sessions.
    pub workload: Option<WorkloadName>,
    /// Scale the workload is built at.
    pub scale: Scale,
    /// Prediction scheme.
    pub scheme: Scheme,
    /// Prediction delay τ.
    pub delay: u64,
}

impl ProfileKey {
    /// The key a session configuration aggregates under.
    pub fn of(config: &SessionConfig) -> ProfileKey {
        ProfileKey {
            workload: config.workload,
            scale: config.scale,
            scheme: config.scheme,
            delay: config.delay,
        }
    }

    /// The workload label (`"ingest"` for event-stream sessions).
    pub fn label(&self) -> &'static str {
        self.workload.map_or("ingest", WorkloadName::as_str)
    }

    /// Canonical ordering rank; also the key's wire form.
    fn rank(&self) -> (u8, u8, u8, u64) {
        let workload = self.workload.map_or(0xFF, |w| {
            ALL_WORKLOADS.iter().position(|&x| x == w).unwrap() as u8
        });
        let scale = match self.scale {
            Scale::Smoke => 0,
            Scale::Small => 1,
            Scale::Full => 2,
        };
        let scheme = match self.scheme {
            Scheme::Net => 0,
            Scheme::PathProfile => 1,
        };
        (workload, scale, scheme, self.delay)
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        let (workload, scale, scheme, delay) = self.rank();
        out.push(workload);
        out.push(scale);
        out.push(scheme);
        put_u64(out, delay);
    }

    fn read(r: &mut Reader<'_>) -> Result<ProfileKey, ProfileError> {
        let workload = match r.u8("workload")? {
            0xFF => None,
            idx => Some(
                ALL_WORKLOADS
                    .get(idx as usize)
                    .copied()
                    .ok_or(ProfileError::Malformed("workload"))?,
            ),
        };
        let scale = match r.u8("scale")? {
            0 => Scale::Smoke,
            1 => Scale::Small,
            2 => Scale::Full,
            _ => return Err(ProfileError::Malformed("scale")),
        };
        let scheme = match r.u8("scheme")? {
            0 => Scheme::Net,
            1 => Scheme::PathProfile,
            _ => return Err(ProfileError::Malformed("scheme")),
        };
        let delay = r.u64("delay")?;
        if delay == 0 {
            return Err(ProfileError::Malformed("delay"));
        }
        Ok(ProfileKey {
            workload,
            scale,
            scheme,
            delay,
        })
    }
}

impl PartialOrd for ProfileKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ProfileKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

/// How a per-key aggregate is derived from the raw publish history.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MergePolicy {
    /// Keep everything any publisher learned; sum the counters.
    #[default]
    Union,
    /// Keep fragments and armed targets carried by at least
    /// `min_percent` of publishers; counters become per-publisher means.
    FrequencyWeighted {
        /// Inclusion threshold as a percentage of publishers (0–100).
        min_percent: u8,
    },
    /// Weight each publish by its epoch-bucket age: weight halves every
    /// `half_life` buckets behind the newest publish, and entries whose
    /// decayed weight reaches zero drop out of the aggregate.
    ExponentialDecay {
        /// Half-life in epoch buckets (≥ 1; see
        /// [`ProfileStoreConfig::epoch_quantum`]).
        half_life: u64,
    },
}

impl MergePolicy {
    /// Stable snake_case tag (CLI flags, sim output, telemetry labels).
    pub fn as_str(&self) -> &'static str {
        match self {
            MergePolicy::Union => "union",
            MergePolicy::FrequencyWeighted { .. } => "frequency_weighted",
            MergePolicy::ExponentialDecay { .. } => "exponential_decay",
        }
    }

    /// Parses a CLI spelling: `union`, `freq` / `frequency_weighted`,
    /// `decay` / `exponential_decay` (with shipped parameters).
    pub fn parse(s: &str) -> Option<MergePolicy> {
        match s {
            "union" => Some(MergePolicy::Union),
            "freq" | "frequency_weighted" => {
                Some(MergePolicy::FrequencyWeighted { min_percent: 50 })
            }
            "decay" | "exponential_decay" => Some(MergePolicy::ExponentialDecay { half_life: 4 }),
            _ => None,
        }
    }
}

/// Store shape: policy selection and determinism parameters. Fixed at
/// store construction so every derived aggregate is a pure function of
/// the published profiles.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProfileStoreConfig {
    /// Policy for keys without an override.
    pub default_policy: MergePolicy,
    /// Per-workload policy overrides (picked offline by `profile_sim`).
    pub overrides: Vec<(WorkloadName, MergePolicy)>,
    /// Epoch quantization: publishes are bucketed by
    /// `epoch / epoch_quantum` before any decay arithmetic, so the raw
    /// state stays bounded by distinct buckets rather than distinct
    /// publish instants.
    pub epoch_quantum: u64,
    /// Salt for the deterministic fragment tie-break hash.
    pub seed: u64,
    /// Most fragments a derived aggregate may carry; the lowest-weight
    /// tail is dropped (deterministically) past this.
    pub max_fragments: usize,
}

impl Default for ProfileStoreConfig {
    fn default() -> Self {
        ProfileStoreConfig {
            default_policy: MergePolicy::Union,
            overrides: Vec::new(),
            epoch_quantum: 4096,
            seed: 0x9E37_79B9_7F4A_7C15,
            max_fragments: 4096,
        }
    }
}

/// One session's published profile: its key, the publisher's logical
/// epoch (blocks executed / events ingested at capture), and its warm
/// state. Sealed on the wire like a snapshot: magic + version + payload
/// + FNV-1a-64 checksum, verified before any field is parsed.
#[derive(Clone, PartialEq, Debug)]
pub struct SessionProfile {
    /// Configuration coordinates the profile aggregates under.
    pub key: ProfileKey,
    /// The publisher's logical clock at capture; drives decay bucketing.
    pub epoch: u64,
    /// The published warm state.
    pub warm: EngineWarmState,
}

impl SessionProfile {
    /// Encodes the profile into its sealed binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128);
        out.extend_from_slice(&PROFILE_MAGIC);
        out.extend_from_slice(&PROFILE_VERSION.to_le_bytes());
        self.key.encode_into(&mut out);
        put_u64(&mut out, self.epoch);
        put_warm(&mut out, &self.warm);
        let seal = fnv1a64(&out);
        put_u64(&mut out, seal);
        out
    }

    /// Decodes a sealed profile blob.
    ///
    /// # Errors
    ///
    /// See [`ProfileError`]; the checksum is verified before any field
    /// is interpreted, mirroring the snapshot seal rules.
    pub fn decode(blob: &[u8]) -> Result<SessionProfile, ProfileError> {
        if blob.len() < PROFILE_MAGIC.len() + 2 + 8 {
            return Err(ProfileError::TooShort);
        }
        let (content, seal_bytes) = blob.split_at(blob.len() - 8);
        let stored = u64::from_le_bytes(seal_bytes.try_into().unwrap());
        let computed = fnv1a64(content);
        if stored != computed {
            return Err(ProfileError::ChecksumMismatch { stored, computed });
        }
        let mut r = Reader::new(content);
        if r.take(4, "magic")? != PROFILE_MAGIC {
            return Err(ProfileError::BadMagic);
        }
        let version = u16::from_le_bytes(r.take(2, "version")?.try_into().unwrap());
        if version != PROFILE_VERSION {
            return Err(ProfileError::UnsupportedVersion(version));
        }
        let key = ProfileKey::read(&mut r)?;
        let epoch = r.u64("epoch")?;
        let warm = read_warm(&mut r)?;
        if r.remaining() != 0 {
            return Err(ProfileError::Malformed("trailing bytes"));
        }
        Ok(SessionProfile { key, epoch, warm })
    }
}

/// Why a profile blob failed to decode. Mirrors
/// [`SnapshotError`](crate::SnapshotError): seal first, then header,
/// then fields.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ProfileError {
    /// The blob is too short to hold even the header and seal.
    TooShort,
    /// The magic bytes are not `HPFP`.
    BadMagic,
    /// The version is not one this build understands (stale or future).
    UnsupportedVersion(u16),
    /// The FNV-1a seal does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the blob.
        stored: u64,
        /// Checksum computed over the blob's content.
        computed: u64,
    },
    /// A field was truncated or failed validation; names the field.
    Malformed(&'static str),
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProfileError::TooShort => write!(f, "profile too short for header and checksum"),
            ProfileError::BadMagic => write!(f, "not a session profile (bad magic)"),
            ProfileError::UnsupportedVersion(v) => write!(
                f,
                "unsupported profile version {v} (this build reads {PROFILE_VERSION})"
            ),
            ProfileError::ChecksumMismatch { stored, computed } => write!(
                f,
                "profile checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            ProfileError::Malformed(field) => write!(f, "malformed profile field `{field}`"),
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<ReadError> for ProfileError {
    fn from(e: ReadError) -> Self {
        ProfileError::Malformed(e.0)
    }
}

/// A derived, ready-to-import aggregate for one key: what admission
/// hands to [`Session::prewarm`](crate::Session::prewarm). Shards hold
/// these behind `Arc` in their read-mostly caches.
#[derive(Clone, PartialEq, Debug)]
pub struct PrewarmProfile {
    /// The key the aggregate covers.
    pub key: ProfileKey,
    /// Policy the aggregate was derived under.
    pub policy: MergePolicy,
    /// The merged warm state, in deterministic install order.
    pub warm: EngineWarmState,
    /// Publishers folded into the aggregate.
    pub publishers: u64,
    /// Newest publish epoch folded in.
    pub epoch: u64,
    /// Store generation when the aggregate was rebuilt.
    pub generation: u64,
}

/// What a publish did; carried back to the client and into telemetry.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PublishInfo {
    /// Publishers merged into the key's aggregate, this one included.
    pub publishers: u64,
    /// Store generation after the merge.
    pub generation: u64,
    /// Fragments in the rebuilt aggregate.
    pub fragments: u64,
}

/// Store-level counters surfaced through `Response::ServerStats`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ProfileStoreStats {
    /// Per-key aggregates currently held.
    pub profiles_held: u64,
    /// Canonical encoded size of the whole store in bytes.
    pub bytes: u64,
    /// Current store generation (bumped on every merge).
    pub generation: u64,
    /// Publishes held in the quarantine bucket (never merged into any
    /// fleet aggregate until re-promoted).
    pub quarantined: u64,
}

/// Raw commutative per-fragment state: every operation on it is a sum
/// or a max, so fold order cannot matter.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct FragAgg {
    /// Straight-line instruction count (identical across publishers of
    /// the same block sequence; max keeps the fold commutative anyway).
    insts: u32,
    /// Publishers carrying the fragment, per epoch bucket.
    by_bucket: BTreeMap<u64, u64>,
}

/// Raw commutative state for one key.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
struct KeyAggregate {
    publishers: u64,
    max_epoch: u64,
    max_bucket: u64,
    /// Fragment block sequence → per-bucket publisher counts.
    fragments: BTreeMap<Vec<u32>, FragAgg>,
    /// Exit-stub target → per-bucket summed arrivals.
    exits: BTreeMap<u32, BTreeMap<u64, u64>>,
    /// NET head → per-bucket summed counts.
    nets: BTreeMap<u32, BTreeMap<u64, u64>>,
    /// Armed target → per-bucket publisher counts.
    armed: BTreeMap<u32, BTreeMap<u64, u64>>,
}

impl KeyAggregate {
    fn fold(&mut self, profile: &SessionProfile, quantum: u64) {
        let bucket = profile.epoch / quantum;
        self.publishers += 1;
        self.max_epoch = self.max_epoch.max(profile.epoch);
        self.max_bucket = self.max_bucket.max(bucket);
        for fragment in &profile.warm.fragments {
            let entry = self.fragments.entry(fragment.blocks.clone()).or_default();
            entry.insts = entry.insts.max(fragment.insts);
            *entry.by_bucket.entry(bucket).or_insert(0) += 1;
        }
        for &(target, count) in &profile.warm.exit_counts {
            *self
                .exits
                .entry(target)
                .or_default()
                .entry(bucket)
                .or_insert(0) += count;
        }
        for &(head, count) in &profile.warm.net_counters {
            *self
                .nets
                .entry(head)
                .or_default()
                .entry(bucket)
                .or_insert(0) += count;
        }
        for &target in &profile.warm.armed {
            *self
                .armed
                .entry(target)
                .or_default()
                .entry(bucket)
                .or_insert(0) += 1;
        }
    }

    /// Folds another raw aggregate into this one — the re-promotion
    /// path, where a whole quarantine bucket rejoins the fleet
    /// aggregate. Every operation is a sum or a max, so merging a
    /// bucket is equivalent to having folded its publishes directly.
    fn merge(&mut self, other: &KeyAggregate) {
        self.publishers += other.publishers;
        self.max_epoch = self.max_epoch.max(other.max_epoch);
        self.max_bucket = self.max_bucket.max(other.max_bucket);
        for (blocks, frag) in &other.fragments {
            let entry = self.fragments.entry(blocks.clone()).or_default();
            entry.insts = entry.insts.max(frag.insts);
            for (&bucket, &v) in &frag.by_bucket {
                *entry.by_bucket.entry(bucket).or_insert(0) += v;
            }
        }
        for (ours, theirs) in [
            (&mut self.exits, &other.exits),
            (&mut self.nets, &other.nets),
            (&mut self.armed, &other.armed),
        ] {
            for (&id, buckets) in theirs {
                let entry = ours.entry(id).or_default();
                for (&bucket, &v) in buckets {
                    *entry.entry(bucket).or_insert(0) += v;
                }
            }
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    keys: BTreeMap<ProfileKey, KeyAggregate>,
    aggregates: BTreeMap<ProfileKey, Arc<PrewarmProfile>>,
    /// Publishes from unhealthy sessions (degraded ladder, bail-out,
    /// poisoned trace heads). Held apart from `keys`: nothing here
    /// reaches a derived aggregate or bumps the generation until the
    /// key is explicitly re-promoted.
    quarantine: BTreeMap<ProfileKey, KeyAggregate>,
    encoded_bytes: u64,
}

/// The store itself: one per [`SessionManager`](crate::SessionManager),
/// shared with every shard. Publishes (rare) take the mutex and rebuild
/// one key's aggregate; admission never touches the mutex unless the
/// lock-free generation check says a shard's cache is behind.
#[derive(Debug)]
pub struct ProfileStore {
    config: ProfileStoreConfig,
    generation: AtomicU64,
    inner: Mutex<Inner>,
}

impl ProfileStore {
    /// Creates an empty store.
    ///
    /// # Panics
    ///
    /// Panics on a zero epoch quantum (bucketing would divide by zero).
    pub fn new(config: ProfileStoreConfig) -> ProfileStore {
        assert!(config.epoch_quantum > 0, "epoch quantum must be positive");
        ProfileStore {
            config,
            generation: AtomicU64::new(0),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The store configuration.
    pub fn config(&self) -> &ProfileStoreConfig {
        &self.config
    }

    /// The merge policy in force for a key.
    pub fn policy_for(&self, key: &ProfileKey) -> MergePolicy {
        key.workload
            .and_then(|w| {
                self.config
                    .overrides
                    .iter()
                    .find(|&&(o, _)| o == w)
                    .map(|&(_, p)| p)
            })
            .unwrap_or(self.config.default_policy)
    }

    /// Current generation — bumped on every merge. Lock-free; shards
    /// compare it against their cached generation at admission and only
    /// refresh (briefly locking) when behind.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// Folds a published profile into its key's aggregate and rebuilds
    /// the derived pre-warm image.
    ///
    /// # Errors
    ///
    /// Rejects empty profiles and structurally invalid warm state (a
    /// fragment with no blocks) — the same class of state
    /// [`EngineWarmState::validate`] would refuse at import.
    pub fn publish(&self, profile: &SessionProfile) -> Result<PublishInfo, String> {
        validate_publish(profile)?;
        let mut inner = self.inner.lock().expect("profile store poisoned");
        let agg = inner.keys.entry(profile.key).or_default();
        agg.fold(profile, self.config.epoch_quantum);
        let publishers = agg.publishers;
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        let derived = Arc::new(self.derive(
            profile.key,
            inner.keys.get(&profile.key).unwrap(),
            generation,
        ));
        let fragments = derived.warm.fragments.len() as u64;
        inner.aggregates.insert(profile.key, derived);
        inner.encoded_bytes = self.encode_locked(&inner).len() as u64;
        Ok(PublishInfo {
            publishers,
            generation,
            fragments,
        })
    }

    /// Folds a profile into the key's **quarantine** bucket instead of
    /// the fleet aggregate. Quarantined state is structurally validated
    /// and retained (it may be perfectly good warm state from a session
    /// that merely tripped the degradation ladder), but it never reaches
    /// a derived aggregate — and never bumps the store generation — until
    /// [`ProfileStore::repromote`] clears the key.
    ///
    /// # Errors
    ///
    /// Same rejection rules as [`ProfileStore::publish`].
    pub fn publish_quarantined(&self, profile: &SessionProfile) -> Result<PublishInfo, String> {
        validate_publish(profile)?;
        let mut inner = self.inner.lock().expect("profile store poisoned");
        let agg = inner.quarantine.entry(profile.key).or_default();
        agg.fold(profile, self.config.epoch_quantum);
        let publishers = agg.publishers;
        let fragments = agg.fragments.len() as u64;
        inner.encoded_bytes = self.encode_locked(&inner).len() as u64;
        Ok(PublishInfo {
            publishers,
            generation: self.generation(),
            fragments,
        })
    }

    /// Re-admits a key's quarantine bucket into the fleet aggregate —
    /// the operator (or a health policy) has decided the quarantined
    /// publishes are trustworthy after all. The whole bucket merges as
    /// if its publishes had arrived directly, the generation bumps, and
    /// the derived aggregate rebuilds.
    ///
    /// # Errors
    ///
    /// Fails when the key has nothing in quarantine.
    pub fn repromote(&self, key: &ProfileKey) -> Result<PublishInfo, String> {
        let mut inner = self.inner.lock().expect("profile store poisoned");
        let quarantined = inner
            .quarantine
            .remove(key)
            .ok_or_else(|| format!("no quarantined profiles for {}", key.label()))?;
        inner.keys.entry(*key).or_default().merge(&quarantined);
        let agg = inner.keys.get(key).unwrap();
        let publishers = agg.publishers;
        let generation = self.generation.fetch_add(1, Ordering::AcqRel) + 1;
        let derived = Arc::new(self.derive(*key, agg, generation));
        let fragments = derived.warm.fragments.len() as u64;
        inner.aggregates.insert(*key, derived);
        inner.encoded_bytes = self.encode_locked(&inner).len() as u64;
        Ok(PublishInfo {
            publishers,
            generation,
            fragments,
        })
    }

    /// The derived aggregate for a key, if any publisher has fed it.
    pub fn fetch(&self, key: &ProfileKey) -> Option<Arc<PrewarmProfile>> {
        self.inner
            .lock()
            .expect("profile store poisoned")
            .aggregates
            .get(key)
            .cloned()
    }

    /// Store-level counters for `Response::ServerStats`.
    pub fn stats(&self) -> ProfileStoreStats {
        let inner = self.inner.lock().expect("profile store poisoned");
        ProfileStoreStats {
            profiles_held: inner.keys.len() as u64,
            bytes: inner.encoded_bytes,
            generation: self.generation(),
            quarantined: inner.quarantine.values().map(|a| a.publishers).sum(),
        }
    }

    /// Canonical serialization of the whole store: raw commutative state
    /// plus each key's derived aggregate, in key order, sealed like the
    /// snapshot format. Two stores fed the same publishes in any order
    /// encode byte-identically — the merge-determinism tests pin exactly
    /// this.
    pub fn encode(&self) -> Vec<u8> {
        let inner = self.inner.lock().expect("profile store poisoned");
        self.encode_locked(&inner)
    }

    fn encode_locked(&self, inner: &Inner) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(b"HPFS");
        out.extend_from_slice(&PROFILE_VERSION.to_le_bytes());
        put_u32(&mut out, inner.keys.len() as u32);
        for (key, agg) in &inner.keys {
            key.encode_into(&mut out);
            put_key_aggregate(&mut out, agg);
            match inner.aggregates.get(key) {
                Some(derived) => {
                    out.push(1);
                    put_warm(&mut out, &derived.warm);
                }
                None => out.push(0),
            }
        }
        // Quarantine rides along in raw form (no derived image — nothing
        // quarantined is ever importable), keeping the order-independence
        // guarantee over quarantined publishes too.
        put_u32(&mut out, inner.quarantine.len() as u32);
        for (key, agg) in &inner.quarantine {
            key.encode_into(&mut out);
            put_key_aggregate(&mut out, agg);
        }
        let seal = fnv1a64(&out);
        put_u64(&mut out, seal);
        out
    }

    /// Derives the pre-warm image for one key under its policy. Pure
    /// function of the raw aggregate + config; every ordering below is
    /// canonical (weight-descending with a seeded tie-break for
    /// fragments, id-ascending for counters), never map arrival order.
    fn derive(&self, key: ProfileKey, agg: &KeyAggregate, generation: u64) -> PrewarmProfile {
        let policy = self.policy_for(&key);
        let decayed = |by_bucket: &BTreeMap<u64, u64>, half_life: u64| -> u64 {
            by_bucket
                .iter()
                .map(|(&bucket, &v)| {
                    let age = (agg.max_bucket - bucket) / half_life.max(1);
                    if age >= 64 {
                        0
                    } else {
                        v >> age
                    }
                })
                .sum()
        };
        let total = |by_bucket: &BTreeMap<u64, u64>| -> u64 { by_bucket.values().sum() };
        // Keep-weight for set-valued entries (fragments, armed targets),
        // where per-bucket values are publisher counts.
        let keep_weight = |by_bucket: &BTreeMap<u64, u64>| -> u64 {
            match policy {
                MergePolicy::Union => total(by_bucket),
                MergePolicy::FrequencyWeighted { min_percent } => {
                    let seen = total(by_bucket);
                    if seen * 100 >= u64::from(min_percent) * agg.publishers {
                        seen
                    } else {
                        0
                    }
                }
                MergePolicy::ExponentialDecay { half_life } => decayed(by_bucket, half_life),
            }
        };
        // Counter value for sum-valued entries (exit/NET counters).
        let counter_value = |by_bucket: &BTreeMap<u64, u64>| -> u64 {
            match policy {
                MergePolicy::Union => total(by_bucket),
                MergePolicy::FrequencyWeighted { .. } => total(by_bucket) / agg.publishers.max(1),
                MergePolicy::ExponentialDecay { half_life } => decayed(by_bucket, half_life),
            }
        };

        let mut picked: Vec<(u64, u64, &Vec<u32>, u32)> = agg
            .fragments
            .iter()
            .filter_map(|(blocks, frag)| {
                let weight = keep_weight(&frag.by_bucket);
                (weight > 0).then(|| (weight, self.tiebreak(blocks), blocks, frag.insts))
            })
            .collect();
        picked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(b.2)));
        picked.truncate(self.config.max_fragments);
        let fragments = picked
            .into_iter()
            .map(|(_, _, blocks, insts)| FragmentRecord {
                blocks: blocks.clone(),
                insts,
            })
            .collect();

        let counters = |table: &BTreeMap<u32, BTreeMap<u64, u64>>| -> Vec<(u32, u64)> {
            table
                .iter()
                .filter_map(|(&id, buckets)| {
                    let v = counter_value(buckets);
                    (v > 0).then_some((id, v))
                })
                .collect()
        };
        let armed = agg
            .armed
            .iter()
            .filter_map(|(&target, buckets)| (keep_weight(buckets) > 0).then_some(target))
            .collect();

        PrewarmProfile {
            key,
            policy,
            warm: EngineWarmState {
                fragments,
                exit_counts: counters(&agg.exits),
                armed,
                net_counters: counters(&agg.nets),
            },
            publishers: agg.publishers,
            epoch: agg.max_epoch,
            generation,
        }
    }

    /// Seeded deterministic tie-break for equal-weight fragments.
    fn tiebreak(&self, blocks: &[u32]) -> u64 {
        let mut bytes = Vec::with_capacity(8 + blocks.len() * 4);
        bytes.extend_from_slice(&self.config.seed.to_le_bytes());
        for &b in blocks {
            bytes.extend_from_slice(&b.to_le_bytes());
        }
        fnv1a64(&bytes)
    }
}

fn put_bucket_map(out: &mut Vec<u8>, map: &BTreeMap<u64, u64>) {
    put_u32(out, map.len() as u32);
    for (&bucket, &v) in map {
        put_u64(out, bucket);
        put_u64(out, v);
    }
}

/// Canonical encoding of one raw aggregate (shared by the fleet and
/// quarantine sections).
fn put_key_aggregate(out: &mut Vec<u8>, agg: &KeyAggregate) {
    put_u64(out, agg.publishers);
    put_u64(out, agg.max_epoch);
    put_u32(out, agg.fragments.len() as u32);
    for (blocks, frag) in &agg.fragments {
        put_u32(out, blocks.len() as u32);
        for &b in blocks {
            put_u32(out, b);
        }
        put_u32(out, frag.insts);
        put_bucket_map(out, &frag.by_bucket);
    }
    for table in [&agg.exits, &agg.nets, &agg.armed] {
        put_u32(out, table.len() as u32);
        for (&id, buckets) in table {
            put_u32(out, id);
            put_bucket_map(out, buckets);
        }
    }
}

/// Shared admission checks for both publish paths: non-empty warm state
/// and structural validity (the per-program block-range check happens at
/// import, where the program is known).
fn validate_publish(profile: &SessionProfile) -> Result<(), String> {
    if profile.warm.is_empty() {
        return Err("profile carries no warm state; nothing to publish".into());
    }
    profile.warm.validate(u32::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warm(fragments: &[(&[u32], u32)], nets: &[(u32, u64)]) -> EngineWarmState {
        EngineWarmState {
            fragments: fragments
                .iter()
                .map(|&(blocks, insts)| FragmentRecord {
                    blocks: blocks.to_vec(),
                    insts,
                })
                .collect(),
            exit_counts: Vec::new(),
            armed: Vec::new(),
            net_counters: nets.to_vec(),
        }
    }

    fn key() -> ProfileKey {
        ProfileKey {
            workload: Some(hotpath_workloads::WorkloadName::Compress),
            scale: Scale::Smoke,
            scheme: Scheme::Net,
            delay: 50,
        }
    }

    fn profile(epoch: u64, w: EngineWarmState) -> SessionProfile {
        SessionProfile {
            key: key(),
            epoch,
            warm: w,
        }
    }

    fn store(policy: MergePolicy) -> ProfileStore {
        ProfileStore::new(ProfileStoreConfig {
            default_policy: policy,
            epoch_quantum: 100,
            ..ProfileStoreConfig::default()
        })
    }

    #[test]
    fn profile_blob_round_trips() {
        let p = profile(12_345, warm(&[(&[3, 4, 5], 17)], &[(3, 12)]));
        assert_eq!(SessionProfile::decode(&p.encode()).unwrap(), p);
    }

    #[test]
    fn profile_blob_rejection_mirrors_snapshot_seal_checks() {
        let blob = profile(1, warm(&[(&[1], 2)], &[])).encode();

        // Any flipped bit fails the seal before parsing.
        let mut corrupt = blob.clone();
        corrupt[9] ^= 0x10;
        assert!(matches!(
            SessionProfile::decode(&corrupt),
            Err(ProfileError::ChecksumMismatch { .. })
        ));
        assert!(SessionProfile::decode(&blob[..blob.len() - 2]).is_err());
        assert_eq!(SessionProfile::decode(&[]), Err(ProfileError::TooShort));

        let reseal = |mut b: Vec<u8>| {
            let len = b.len();
            let seal = fnv1a64(&b[..len - 8]);
            b[len - 8..].copy_from_slice(&seal.to_le_bytes());
            b
        };
        let mut bad_magic = blob.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            SessionProfile::decode(&reseal(bad_magic)),
            Err(ProfileError::BadMagic)
        );
        // A stale (or future) version is refused outright rather than
        // half-parsed.
        let mut stale = blob.clone();
        stale[4] = 0;
        assert_eq!(
            SessionProfile::decode(&reseal(stale)),
            Err(ProfileError::UnsupportedVersion(0))
        );
        let mut trailing = blob;
        trailing.truncate(trailing.len() - 8);
        trailing.push(0);
        let trailing = {
            let seal = fnv1a64(&trailing);
            let mut t = trailing;
            t.extend_from_slice(&seal.to_le_bytes());
            t
        };
        assert_eq!(
            SessionProfile::decode(&trailing),
            Err(ProfileError::Malformed("trailing bytes"))
        );
    }

    #[test]
    fn union_keeps_everything_and_sums_counters() {
        let s = store(MergePolicy::Union);
        s.publish(&profile(10, warm(&[(&[1, 2], 5)], &[(1, 40)])))
            .unwrap();
        s.publish(&profile(20, warm(&[(&[7], 2)], &[(1, 10), (7, 3)])))
            .unwrap();
        let agg = s.fetch(&key()).unwrap();
        assert_eq!(agg.warm.fragments.len(), 2);
        assert_eq!(agg.warm.net_counters, vec![(1, 50), (7, 3)]);
        assert_eq!(agg.publishers, 2);
    }

    #[test]
    fn frequency_weighted_drops_minority_fragments_and_averages() {
        let s = store(MergePolicy::FrequencyWeighted { min_percent: 50 });
        for epoch in [10, 20, 30] {
            s.publish(&profile(epoch, warm(&[(&[1, 2], 5)], &[(1, 30)])))
                .unwrap();
        }
        s.publish(&profile(40, warm(&[(&[9], 1)], &[(1, 10)])))
            .unwrap();
        let agg = s.fetch(&key()).unwrap();
        // [1,2] seen by 3/4 publishers (≥50%); [9] by 1/4 (<50%).
        assert_eq!(agg.warm.fragments.len(), 1);
        assert_eq!(agg.warm.fragments[0].blocks, vec![1, 2]);
        // Mean of (30+30+30+10)/4.
        assert_eq!(agg.warm.net_counters, vec![(1, 25)]);
    }

    #[test]
    fn exponential_decay_forgets_stale_publishes() {
        let s = store(MergePolicy::ExponentialDecay { half_life: 1 });
        // Bucket 0 (epoch 0) vs bucket 70 (epoch 7000, quantum 100):
        // 70 half-lives decay any single-publisher weight to zero.
        s.publish(&profile(0, warm(&[(&[1, 2], 5)], &[(1, 1000)])))
            .unwrap();
        s.publish(&profile(7000, warm(&[(&[7], 2)], &[(7, 8)])))
            .unwrap();
        let agg = s.fetch(&key()).unwrap();
        assert_eq!(agg.warm.fragments.len(), 1);
        assert_eq!(agg.warm.fragments[0].blocks, vec![7]);
        assert_eq!(agg.warm.net_counters, vec![(7, 8)]);
    }

    #[test]
    fn publish_rejects_empty_and_structurally_invalid_profiles() {
        let s = store(MergePolicy::Union);
        assert!(s
            .publish(&profile(1, warm(&[], &[])))
            .unwrap_err()
            .contains("nothing to publish"));
        let bad = profile(
            1,
            EngineWarmState {
                fragments: vec![FragmentRecord {
                    blocks: vec![],
                    insts: 1,
                }],
                ..EngineWarmState::default()
            },
        );
        assert!(s.publish(&bad).is_err());
        assert_eq!(s.generation(), 0, "rejected publishes do not merge");
    }

    #[test]
    fn merges_are_order_independent_for_every_policy() {
        let profiles = [
            profile(10, warm(&[(&[1, 2], 5), (&[3], 1)], &[(1, 40)])),
            profile(250, warm(&[(&[1, 2], 5)], &[(1, 7), (3, 2)])),
            profile(520, warm(&[(&[9, 10, 11], 9)], &[(9, 60)])),
        ];
        for policy in [
            MergePolicy::Union,
            MergePolicy::FrequencyWeighted { min_percent: 50 },
            MergePolicy::ExponentialDecay { half_life: 2 },
        ] {
            let forward = store(policy);
            let reverse = store(policy);
            for p in &profiles {
                forward.publish(p).unwrap();
            }
            for p in profiles.iter().rev() {
                reverse.publish(p).unwrap();
            }
            assert_eq!(
                forward.encode(),
                reverse.encode(),
                "store bytes diverge under {policy:?}"
            );
            assert_eq!(
                forward.fetch(&key()).unwrap().warm,
                reverse.fetch(&key()).unwrap().warm,
                "derived aggregate diverges under {policy:?}"
            );
        }
    }

    #[test]
    fn quarantine_never_merges_until_repromoted() {
        let s = store(MergePolicy::Union);
        s.publish(&profile(10, warm(&[(&[1, 2], 5)], &[(1, 40)])))
            .unwrap();
        let gen_before = s.generation();

        // Quarantined publishes are held apart: no generation bump, no
        // change to the derived aggregate, but counted in stats.
        s.publish_quarantined(&profile(20, warm(&[(&[7], 2)], &[(7, 9)])))
            .unwrap();
        s.publish_quarantined(&profile(30, warm(&[(&[7], 2)], &[(7, 1)])))
            .unwrap();
        assert_eq!(s.generation(), gen_before);
        assert_eq!(s.stats().quarantined, 2);
        let agg = s.fetch(&key()).unwrap();
        assert_eq!(agg.publishers, 1);
        assert!(agg.warm.fragments.iter().all(|f| f.blocks != vec![7]));

        // Re-promotion merges the bucket as if its publishes had
        // arrived directly, and empties the quarantine.
        let info = s.repromote(&key()).unwrap();
        assert_eq!(info.publishers, 3);
        assert!(s.generation() > gen_before);
        assert_eq!(s.stats().quarantined, 0);
        let agg = s.fetch(&key()).unwrap();
        assert!(agg.warm.fragments.iter().any(|f| f.blocks == vec![7]));
        assert!(agg.warm.net_counters.contains(&(7, 10)), "sums merged");
        assert!(s.repromote(&key()).is_err(), "bucket now empty");

        // Merged-via-quarantine equals published-directly, byte for byte.
        let direct = store(MergePolicy::Union);
        direct
            .publish(&profile(10, warm(&[(&[1, 2], 5)], &[(1, 40)])))
            .unwrap();
        direct
            .publish(&profile(20, warm(&[(&[7], 2)], &[(7, 9)])))
            .unwrap();
        direct
            .publish(&profile(30, warm(&[(&[7], 2)], &[(7, 1)])))
            .unwrap();
        assert_eq!(s.encode(), direct.encode());
    }

    #[test]
    fn per_workload_policy_overrides_take_precedence() {
        let s = ProfileStore::new(ProfileStoreConfig {
            default_policy: MergePolicy::Union,
            overrides: vec![(
                hotpath_workloads::WorkloadName::Compress,
                MergePolicy::ExponentialDecay { half_life: 3 },
            )],
            ..ProfileStoreConfig::default()
        });
        assert_eq!(
            s.policy_for(&key()),
            MergePolicy::ExponentialDecay { half_life: 3 }
        );
        let ingest = ProfileKey {
            workload: None,
            ..key()
        };
        assert_eq!(s.policy_for(&ingest), MergePolicy::Union);
    }
}
