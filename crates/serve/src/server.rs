//! The TCP front-end: an accept loop plus one thread per connection,
//! each speaking the framed protocol against a shared
//! [`SessionManager`].
//!
//! The transport adds nothing to the in-process API: every frame decodes
//! to a [`Request`], goes through [`SessionManager::request`], and the
//! [`Response`] is framed straight back. The only request the transport
//! itself interprets is [`Request::Shutdown`], which stops the accept
//! loop, joins every connection, and tears down the shard pool.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::manager::{ServeConfig, SessionManager};
use crate::protocol::{read_frame, write_frame, Request, Response};

/// A running server: the bound address, the shared manager, and the
/// accept thread. Dropping the handle stops the server and joins every
/// thread it spawned.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    manager: Arc<SessionManager>,
    stop: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

/// Binds `addr` (use port 0 for an OS-assigned port) and starts serving
/// a fresh session pool shaped by `config`.
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve<A: ToSocketAddrs>(addr: A, config: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let manager = Arc::new(SessionManager::new(config));
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let manager = Arc::clone(&manager);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("hotpath-accept".to_string())
            .spawn(move || accept_loop(&listener, addr, &manager, &stop))
            .expect("spawn accept thread")
    };
    Ok(ServerHandle {
        addr,
        manager,
        stop,
        accept: Some(accept),
    })
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared session pool, for in-process use alongside TCP clients.
    pub fn manager(&self) -> &SessionManager {
        &self.manager
    }

    /// Blocks until the server stops (a client sent
    /// [`Request::Shutdown`], or [`ServerHandle::stop`] was called from
    /// another thread via a clone of the handle's internals).
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Stops the server: no new connections, existing connections join,
    /// the shard pool shuts down. Idempotent.
    pub fn stop(&mut self) {
        request_stop(&self.stop, self.addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Flags the accept loop to exit and wakes it with a throwaway
/// connection (accept has no timeout; a self-connect is the portable way
/// to unblock it).
fn request_stop(stop: &AtomicBool, addr: SocketAddr) {
    if stop.swap(true, Ordering::AcqRel) {
        return;
    }
    let _ = TcpStream::connect(addr);
}

fn accept_loop(
    listener: &TcpListener,
    addr: SocketAddr,
    manager: &Arc<SessionManager>,
    stop: &Arc<AtomicBool>,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let manager = Arc::clone(manager);
        let stop = Arc::clone(stop);
        let handle = std::thread::Builder::new()
            .name("hotpath-conn".to_string())
            .spawn(move || {
                let _ = connection(stream, addr, &manager, &stop);
            })
            .expect("spawn connection thread");
        connections.push(handle);
    }
    for handle in connections {
        let _ = handle.join();
    }
    manager.shutdown();
}

/// Serves one connection until the peer disconnects or asks the whole
/// server to shut down.
fn connection(
    stream: TcpStream,
    addr: SocketAddr,
    manager: &SessionManager,
    stop: &AtomicBool,
) -> io::Result<()> {
    let mut reader = io::BufReader::new(stream.try_clone()?);
    let mut writer = io::BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        let response = match Request::decode(&payload) {
            Ok(Request::Shutdown) => {
                write_frame(&mut writer, &Response::ShuttingDown.encode())?;
                request_stop(stop, addr);
                return Ok(());
            }
            Ok(request) => manager.request(request),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        };
        write_frame(&mut writer, &response.encode())?;
    }
    Ok(())
}
