//! The TCP front-ends: a nonblocking reactor (default on unix) and the
//! original blocking thread-per-connection loop (fallback elsewhere,
//! and available everywhere as [`serve_blocking`] for parity testing).
//!
//! Both transports add nothing to the in-process API: every frame
//! decodes to a [`Request`], goes through the [`SessionManager`], and
//! the [`Response`] is framed straight back. The only requests the
//! transport itself interprets are [`Request::Shutdown`] (stop the
//! server) and, on the reactor, [`Request::Stats`] (overlay connection
//! counts on the manager's counters).
//!
//! The reactor front-end ([`crate::reactor`]) holds every connection in
//! one readiness loop per reactor thread — the shape that carries 10K
//! concurrent sessions — and supports graceful drain: stop accepting,
//! answer queued requests with `ShuttingDown`, finish in-flight shard
//! work, flush, close. [`ServerHandle::drain_trigger`] hands out a
//! [`DrainTrigger`] that a signal watcher can fire from any thread.

use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hotpath_faultinject::{FaultInjector, FaultPoint};
use hotpath_selfprof as selfprof;
use hotpath_telemetry as telemetry;

use crate::manager::{ServeConfig, SessionManager};
use crate::protocol::{read_frame, write_frame, Request, Response};

/// Salt domain for per-connection wire-fault streams ("WIRE" in the high
/// half), disjoint from the shard ids the shard workers salt with.
pub(crate) const WIRE_CONN_SALT: u64 = 0x5749_5245 << 32;

/// A running server: the bound address, the shared manager, and the
/// front-end threads. Dropping the handle stops the server and joins
/// every thread it spawned.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    manager: Arc<SessionManager>,
    front: Front,
}

#[derive(Debug)]
enum Front {
    Blocking {
        stop: Arc<AtomicBool>,
        accept: Option<JoinHandle<()>>,
    },
    #[cfg(unix)]
    Reactor {
        fanout: crate::reactor::DrainFanout,
        joins: Vec<JoinHandle<()>>,
    },
}

/// Fires a graceful drain of a running server from any thread: stop
/// accepting, flush in-flight replies, close connections, exit the
/// front-end threads. Cloneable and `Send`, so a signal watcher can own
/// one. Firing twice is harmless.
#[derive(Clone, Debug)]
pub struct DrainTrigger {
    inner: TriggerInner,
}

#[derive(Clone, Debug)]
enum TriggerInner {
    Blocking {
        stop: Arc<AtomicBool>,
        addr: SocketAddr,
    },
    #[cfg(unix)]
    Reactor(crate::reactor::DrainFanout),
}

impl DrainTrigger {
    /// Starts the drain. Idempotent.
    pub fn fire(&self) {
        match &self.inner {
            TriggerInner::Blocking { stop, addr } => request_stop(stop, *addr),
            #[cfg(unix)]
            TriggerInner::Reactor(fanout) => fanout.fire(),
        }
    }
}

/// Binds `addr` (use port 0 for an OS-assigned port) and starts serving
/// a fresh session pool shaped by `config`. On unix this is the
/// nonblocking reactor front-end with `config.reactors` event-loop
/// threads; elsewhere it falls back to [`serve_blocking`].
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve<A: ToSocketAddrs>(addr: A, config: ServeConfig) -> io::Result<ServerHandle> {
    #[cfg(unix)]
    {
        serve_reactor(addr, config)
    }
    #[cfg(not(unix))]
    {
        serve_blocking(addr, config)
    }
}

#[cfg(unix)]
fn serve_reactor<A: ToSocketAddrs>(addr: A, config: ServeConfig) -> io::Result<ServerHandle> {
    use crate::reactor::{spawn_reactor, ConnTotals, DrainFanout};
    use crate::ConnLimits;

    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let manager = Arc::new(SessionManager::new(config));
    let totals = Arc::new(ConnTotals::default());
    let fanout = DrainFanout::default();
    let limits = ConnLimits::with_write_soft(config.write_buf_limit);
    let reactors = config.reactors.max(1);
    let mut joins = Vec::with_capacity(reactors as usize);
    for index in 0..reactors {
        let handle = spawn_reactor(
            index,
            listener.try_clone()?,
            Arc::clone(&manager),
            Arc::clone(&totals),
            &fanout,
            limits,
        )?;
        joins.push(handle.join);
    }
    drop(listener);
    Ok(ServerHandle {
        addr,
        manager,
        front: Front::Reactor { fanout, joins },
    })
}

/// Binds `addr` and serves with the original blocking
/// thread-per-connection front-end. Kept for non-unix platforms and for
/// differential testing against the reactor.
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve_blocking<A: ToSocketAddrs>(addr: A, config: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let manager = Arc::new(SessionManager::new(config));
    let stop = Arc::new(AtomicBool::new(false));
    let accept = {
        let manager = Arc::clone(&manager);
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("hotpath-accept".to_string())
            .spawn(move || accept_loop(&listener, addr, &manager, &stop))
            .expect("spawn accept thread")
    };
    Ok(ServerHandle {
        addr,
        manager,
        front: Front::Blocking {
            stop,
            accept: Some(accept),
        },
    })
}

impl ServerHandle {
    /// The address the server actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared session pool, for in-process use alongside TCP clients.
    pub fn manager(&self) -> &SessionManager {
        &self.manager
    }

    /// A handle that starts a graceful drain from any thread.
    pub fn drain_trigger(&self) -> DrainTrigger {
        let inner = match &self.front {
            Front::Blocking { stop, .. } => TriggerInner::Blocking {
                stop: Arc::clone(stop),
                addr: self.addr,
            },
            #[cfg(unix)]
            Front::Reactor { fanout, .. } => TriggerInner::Reactor(fanout.clone()),
        };
        DrainTrigger { inner }
    }

    /// Starts a graceful drain without blocking (use
    /// [`join_front`](ServerHandle::join_front) or
    /// [`wait`](ServerHandle::wait) to observe completion).
    pub fn drain(&self) {
        self.drain_trigger().fire();
    }

    /// Joins the front-end threads once they exit (after a drain, a
    /// client `Shutdown`, or a stop). The shard pool stays up, so warm
    /// sessions can still be snapshotted via
    /// [`manager`](ServerHandle::manager) before teardown.
    pub fn join_front(&mut self) {
        match &mut self.front {
            Front::Blocking { accept, .. } => {
                if let Some(accept) = accept.take() {
                    let _ = accept.join();
                }
            }
            #[cfg(unix)]
            Front::Reactor { joins, .. } => {
                for join in joins.drain(..) {
                    let _ = join.join();
                }
            }
        }
    }

    /// Blocks until the server stops (a client sent
    /// [`Request::Shutdown`], a [`DrainTrigger`] fired, or
    /// [`ServerHandle::stop`] was called from another thread), then
    /// tears down the shard pool.
    pub fn wait(mut self) {
        self.join_front();
        self.manager.shutdown();
    }

    /// Stops the server: drain, join the front-end, shut the shard pool
    /// down. Idempotent.
    pub fn stop(&mut self) {
        self.drain();
        self.join_front();
        self.manager.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Flags the blocking accept loop to exit and wakes it with a throwaway
/// connection (accept has no timeout; a self-connect is the portable way
/// to unblock it).
fn request_stop(stop: &AtomicBool, addr: SocketAddr) {
    if stop.swap(true, Ordering::AcqRel) {
        return;
    }
    let _ = TcpStream::connect(addr);
}

fn accept_loop(
    listener: &TcpListener,
    addr: SocketAddr,
    manager: &Arc<SessionManager>,
    stop: &Arc<AtomicBool>,
) {
    let chaos = manager.config().chaos;
    let mut accepted: u64 = 0;
    for stream in listener.incoming() {
        if stop.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        accepted += 1;
        let conn = accepted;
        let injector = match chaos {
            Some(plan) => FaultInjector::new(plan.derive(WIRE_CONN_SALT | conn)),
            None => FaultInjector::disabled(),
        };
        let manager = Arc::clone(manager);
        let stop = Arc::clone(stop);
        // Connection threads are not joined: they serve until their
        // peer leaves or the stop flag turns their next request into a
        // ShuttingDown refusal. Joining here would hold the drain
        // hostage to every idle client. The shard pool stays up — warm
        // sessions remain snapshottable until the handle tears it down.
        let _ = std::thread::Builder::new()
            .name("hotpath-conn".to_string())
            .spawn(move || {
                let _ = connection(stream, addr, &manager, &stop, conn, injector);
            })
            .expect("spawn connection thread");
    }
}

/// Serves one connection until the peer disconnects, the server starts
/// draining, or the peer asks the whole server to shut down.
fn connection(
    stream: TcpStream,
    addr: SocketAddr,
    manager: &SessionManager,
    stop: &AtomicBool,
    conn: u64,
    mut injector: FaultInjector,
) -> io::Result<()> {
    // A blocking read would hold this thread hostage to an idle peer
    // across a drain; waking at the drain deadline bounds how long a
    // stalled or silent connection can outlive one.
    let drain_deadline = Duration::from_millis(manager.config().drain_deadline_ms.max(1));
    stream.set_read_timeout(Some(drain_deadline))?;
    let mut reader = io::BufReader::new(stream.try_clone()?);
    let mut writer = io::BufWriter::new(stream);
    loop {
        if injector.armed() && injector.fire(FaultPoint::WireDelayRead) {
            note_wire_fault(FaultPoint::WireDelayRead, conn);
            std::thread::sleep(Duration::from_millis(1));
        }
        let payload = match read_frame(&mut reader) {
            Ok(Some(payload)) => payload,
            Ok(None) => return Ok(()),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::Acquire) {
                    return Ok(());
                }
                continue;
            }
            Err(e) => return Err(e),
        };
        // Draining: refuse with ShuttingDown and close, mirroring the
        // reactor's treatment of frames queued behind a drain.
        if stop.load(Ordering::Acquire) {
            write_frame(&mut writer, &Response::ShuttingDown.encode())?;
            return Ok(());
        }
        let decoded = selfprof::stage!(selfprof::Stage::FrameDecode, Request::decode(&payload));
        let response = match decoded {
            Ok(Request::Shutdown) => {
                write_frame(&mut writer, &Response::ShuttingDown.encode())?;
                request_stop(stop, addr);
                return Ok(());
            }
            Ok(request) => manager.request(request),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        };
        if !send_response(&mut writer, &response.encode(), &mut injector, conn)? {
            return Ok(());
        }
    }
}

/// Writes one response frame, possibly mangled by the connection's
/// wire-fault plan. Returns `false` when the injected fault requires the
/// connection to drop (reset, or a corrupted length prefix that leaves
/// the stream desynced for good).
fn send_response<W: Write>(
    writer: &mut W,
    payload: &[u8],
    injector: &mut FaultInjector,
    conn: u64,
) -> io::Result<bool> {
    if !injector.armed() {
        write_frame(writer, payload)?;
        return Ok(true);
    }
    // Draw every outbound point in fixed order so the per-point fault
    // streams stay aligned no matter which fault wins precedence.
    let reset = injector.fire(FaultPoint::WireReset);
    let corrupt_len = injector.fire(FaultPoint::WireCorruptLen);
    let corrupt_payload = injector.fire(FaultPoint::WireCorruptPayload);
    let torn = injector.fire(FaultPoint::WireTornWrite);
    let stall = injector.fire(FaultPoint::WireStall);
    if stall {
        note_wire_fault(FaultPoint::WireStall, conn);
        std::thread::sleep(Duration::from_millis(5));
    }
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    if reset {
        note_wire_fault(FaultPoint::WireReset, conn);
        writer.write_all(&frame[..frame.len() / 2])?;
        writer.flush()?;
        return Ok(false);
    }
    if corrupt_len {
        note_wire_fault(FaultPoint::WireCorruptLen, conn);
        // Bit 30 pushes the length past MAX_FRAME_BYTES, so the client
        // rejects the frame instantly instead of waiting out a bogus
        // read for bytes that will never come.
        frame[3] ^= 0x40;
        writer.write_all(&frame)?;
        writer.flush()?;
        return Ok(false);
    }
    if corrupt_payload {
        note_wire_fault(FaultPoint::WireCorruptPayload, conn);
        // Flip a high bit of the opcode: every response opcode lands in
        // 0x80..=0x8B, so the result is always invalid and the client
        // sees a decode error — never silently wrong data.
        frame[4] ^= 0x40;
        writer.write_all(&frame)?;
        writer.flush()?;
        return Ok(true);
    }
    if torn {
        note_wire_fault(FaultPoint::WireTornWrite, conn);
        let mid = frame.len() / 2;
        writer.write_all(&frame[..mid])?;
        writer.flush()?;
        std::thread::sleep(Duration::from_micros(200));
        writer.write_all(&frame[mid..])?;
    } else {
        writer.write_all(&frame)?;
    }
    writer.flush()?;
    Ok(true)
}

pub(crate) fn note_wire_fault(point: FaultPoint, conn: u64) {
    telemetry::emit!(telemetry::Event::WireFaultInjected {
        point: point.as_str(),
        conn,
    });
}
