//! One shard: a worker thread owning a private session table, fed
//! through a bounded queue.
//!
//! Sessions are partitioned across shards by id, so a session's entire
//! lifetime runs on one thread — no locks around engine or VM state, and
//! isolation between sessions is structural (each [`Session`] owns its
//! state outright). Backpressure is the queue bound itself: the manager
//! uses `try_send`, and a full queue surfaces as an explicit
//! [`Response::Busy`] instead of unbounded buffering.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use hotpath_vm::BlockEvent;

use crate::profile_store::{PrewarmProfile, ProfileKey, ProfileStore, SessionProfile};
use crate::protocol::{PrewarmOutcome, Response};
use crate::session::{Session, SessionConfig};
use crate::snapshot::SessionSnapshot;

/// Where a shard delivers a finished response.
///
/// The in-process API parks the caller on a rendezvous channel; the
/// reactor front-end must never block, so its completions ride a plain
/// queue paired with a self-pipe wake of the owning event loop.
#[derive(Debug)]
pub(crate) enum ReplyTo {
    /// Blocking caller: one rendezvous slot, receiver waits.
    Sync(SyncSender<Response>),
    /// Reactor completion: enqueue and wake the event loop.
    #[cfg(unix)]
    Reactor {
        /// Connection token the response belongs to (generation-tagged;
        /// the reactor discards completions for recycled slots).
        token: u64,
        /// The owning reactor's completion queue.
        tx: std::sync::mpsc::Sender<crate::reactor::Completion>,
        /// Self-pipe that unparks the reactor's poller.
        wake: Arc<crate::sys::WakePipe>,
    },
}

impl ReplyTo {
    /// Delivers the response; a dead receiver means the requester gave
    /// up, which is never an error for the shard.
    pub(crate) fn send(self, response: Response) {
        match self {
            ReplyTo::Sync(reply) => {
                let _ = reply.send(response);
            }
            #[cfg(unix)]
            ReplyTo::Reactor { token, tx, wake } => {
                let _ = tx.send(crate::reactor::Completion { token, response });
                wake.wake();
            }
        }
    }
}

/// Lifetime counters a shard worker maintains; the manager sums them
/// across shards to answer [`Request::Stats`](crate::Request::Stats).
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    /// Sessions currently resident in the shard's table.
    pub live: AtomicU64,
    /// Sessions ever opened (including restores).
    pub opened: AtomicU64,
    /// Sessions ever closed.
    pub closed: AtomicU64,
    /// Sessions pre-warmed from the fleet profile store.
    pub prewarmed: AtomicU64,
    /// Store generation the shard's read-mostly profile cache last
    /// synced at; the manager reports the worst lag as refresh age.
    pub profile_gen: AtomicU64,
}

/// A request already routed to a shard (session ids resolved by the
/// manager).
#[derive(Debug)]
pub(crate) enum ShardRequest {
    Open {
        id: u64,
        config: SessionConfig,
    },
    Restore {
        id: u64,
        snapshot: Box<SessionSnapshot>,
    },
    Run {
        id: u64,
        fuel: Option<u64>,
    },
    Ingest {
        id: u64,
        events: Vec<BlockEvent>,
    },
    Query {
        id: u64,
    },
    Snapshot {
        id: u64,
    },
    Flush {
        id: u64,
    },
    Close {
        id: u64,
    },
    /// Publish the session's warm state into the fleet profile store.
    Publish {
        id: u64,
    },
}

/// One queued unit of work: a routed request plus the reply slot.
#[derive(Debug)]
pub(crate) enum Job {
    Request {
        request: ShardRequest,
        reply: ReplyTo,
    },
    /// Snapshot every resident session (used by the drain path to park
    /// warm state on disk before the process exits).
    SnapshotAll {
        reply: SyncSender<Vec<(u64, Vec<u8>)>>,
    },
    /// Drain and exit; sent once by the manager at shutdown.
    Shutdown,
}

/// Spawns a shard worker; returns its queue sender, lifetime counters,
/// and join handle.
pub(crate) fn spawn(
    shard_id: u32,
    queue_depth: usize,
    max_sessions: usize,
    store: Arc<ProfileStore>,
) -> (SyncSender<Job>, Arc<ShardCounters>, JoinHandle<()>) {
    let (sender, receiver) = sync_channel(queue_depth);
    let counters = Arc::new(ShardCounters::default());
    let thread = {
        let counters = Arc::clone(&counters);
        std::thread::Builder::new()
            .name(format!("hotpath-shard-{shard_id}"))
            .spawn(move || worker(shard_id, &receiver, max_sessions, &counters, &store))
            .expect("spawn shard thread")
    };
    (sender, counters, thread)
}

/// One slot of the shard's read-mostly profile cache: the aggregate (or
/// confirmed absence of one) as of a store generation.
struct CachedProfile {
    generation: u64,
    profile: Option<Arc<PrewarmProfile>>,
}

/// Shard-thread-local worker state beyond the session table.
struct Worker<'a> {
    shard_id: u32,
    max_sessions: usize,
    counters: &'a ShardCounters,
    store: &'a ProfileStore,
    /// Read-mostly cache of store aggregates. Admission consults this
    /// after one lock-free generation check; the store mutex is only
    /// touched when the cache is behind, so opening a session never
    /// contends with other shards in steady state.
    profiles: BTreeMap<ProfileKey, CachedProfile>,
}

impl Worker<'_> {
    /// The store aggregate for `key`, through the shard-local cache.
    fn cached_aggregate(&mut self, key: ProfileKey) -> Option<Arc<PrewarmProfile>> {
        let generation = self.store.generation();
        let hit = self
            .profiles
            .get(&key)
            .is_some_and(|c| c.generation == generation);
        if !hit {
            self.profiles.insert(
                key,
                CachedProfile {
                    generation,
                    profile: self.store.fetch(&key),
                },
            );
        }
        self.counters
            .profile_gen
            .store(generation, Ordering::Release);
        self.profiles.get(&key).unwrap().profile.clone()
    }

    /// A session snapshot with the fleet aggregate for its key attached,
    /// so restoring the snapshot can re-seed the store.
    fn snapshot_with_profile(&mut self, session: &Session) -> SessionSnapshot {
        let mut snapshot = session.snapshot();
        snapshot.profile = self
            .cached_aggregate(ProfileKey::of(session.config()))
            .map(|p| SessionProfile {
                key: p.key,
                epoch: p.epoch,
                warm: p.warm.clone(),
            });
        snapshot
    }
}

fn worker(
    shard_id: u32,
    receiver: &Receiver<Job>,
    max_sessions: usize,
    counters: &ShardCounters,
    store: &ProfileStore,
) {
    let mut sessions: HashMap<u64, Session> = HashMap::new();
    let mut worker = Worker {
        shard_id,
        max_sessions,
        counters,
        store,
        profiles: BTreeMap::new(),
    };
    while let Ok(job) = receiver.recv() {
        let (request, reply) = match job {
            Job::Request { request, reply } => (request, reply),
            Job::SnapshotAll { reply } => {
                let mut blobs: Vec<(u64, Vec<u8>)> = sessions
                    .iter()
                    .map(|(&id, session)| (id, worker.snapshot_with_profile(session).encode()))
                    .collect();
                blobs.sort_by_key(|&(id, _)| id);
                let _ = reply.send(blobs);
                continue;
            }
            Job::Shutdown => break,
        };
        let response = handle(&mut worker, &mut sessions, request);
        // A dead reply slot means the requester gave up; nothing to do.
        reply.send(response);
    }
}

fn handle(
    worker: &mut Worker<'_>,
    sessions: &mut HashMap<u64, Session>,
    request: ShardRequest,
) -> Response {
    let shard_id = worker.shard_id;
    let missing = |id: u64| Response::Error {
        message: format!("no session {id} on shard {shard_id}"),
    };
    match request {
        ShardRequest::Open { id, config } => {
            if sessions.len() >= worker.max_sessions {
                return Response::Busy;
            }
            let mut session = Session::open(id, shard_id, config.clone());
            let prewarm = if config.prewarm {
                match worker.cached_aggregate(ProfileKey::of(&config)) {
                    Some(aggregate) => match session.prewarm(&aggregate.warm) {
                        Ok((fragments, counters)) => {
                            worker.counters.prewarmed.fetch_add(1, Ordering::Relaxed);
                            PrewarmOutcome::Warmed {
                                fragments,
                                counters,
                            }
                        }
                        Err(reason) => PrewarmOutcome::Rejected { reason },
                    },
                    None => PrewarmOutcome::Rejected {
                        reason: "no aggregate profile for this key yet".to_string(),
                    },
                }
            } else {
                PrewarmOutcome::NotRequested
            };
            sessions.insert(id, session);
            worker.counters.live.fetch_add(1, Ordering::Relaxed);
            worker.counters.opened.fetch_add(1, Ordering::Relaxed);
            Response::Opened {
                session: id,
                shard: shard_id,
                prewarm,
            }
        }
        ShardRequest::Restore { id, snapshot } => {
            if sessions.len() >= worker.max_sessions {
                return Response::Busy;
            }
            match Session::restore(id, shard_id, &snapshot) {
                Ok(session) => {
                    // A snapshot saved with a fleet aggregate re-seeds
                    // the store (one publisher's worth); a fleet
                    // restarted from parked snapshots warms its store
                    // back up without waiting for live publishes.
                    if let Some(profile) = &snapshot.profile {
                        let _ = worker.store.publish(profile);
                    }
                    sessions.insert(id, session);
                    worker.counters.live.fetch_add(1, Ordering::Relaxed);
                    worker.counters.opened.fetch_add(1, Ordering::Relaxed);
                    Response::Opened {
                        session: id,
                        shard: shard_id,
                        prewarm: PrewarmOutcome::NotRequested,
                    }
                }
                Err(message) => Response::Error { message },
            }
        }
        ShardRequest::Run { id, fuel } => match sessions.get_mut(&id) {
            Some(session) => match session.run(fuel) {
                Ok((done, stats)) => Response::Ran { done, stats },
                Err(message) => Response::Error { message },
            },
            None => missing(id),
        },
        ShardRequest::Ingest { id, events } => match sessions.get_mut(&id) {
            Some(session) => match session.ingest(&events) {
                Ok((events, paths, fragments)) => Response::Ingested {
                    events,
                    paths,
                    fragments,
                },
                Err(message) => Response::Error { message },
            },
            None => missing(id),
        },
        ShardRequest::Query { id } => match sessions.get(&id) {
            Some(session) => Response::Status(session.status()),
            None => missing(id),
        },
        ShardRequest::Snapshot { id } => match sessions.get(&id) {
            Some(session) => Response::SnapshotBlob {
                blob: worker.snapshot_with_profile(session).encode(),
            },
            None => missing(id),
        },
        ShardRequest::Flush { id } => match sessions.get_mut(&id) {
            Some(session) => {
                session.force_flush();
                Response::Status(session.status())
            }
            None => missing(id),
        },
        ShardRequest::Close { id } => match sessions.remove(&id) {
            Some(session) => {
                worker.counters.live.fetch_sub(1, Ordering::Relaxed);
                worker.counters.closed.fetch_add(1, Ordering::Relaxed);
                Response::Closed {
                    blocks: session.stats().blocks_executed,
                }
            }
            None => missing(id),
        },
        ShardRequest::Publish { id } => match sessions.get(&id) {
            Some(session) => {
                let profile = SessionProfile {
                    key: ProfileKey::of(session.config()),
                    epoch: session.epoch(),
                    warm: session.engine().export_warm_state(),
                };
                match worker.store.publish(&profile) {
                    Ok(info) => Response::ProfilePublished {
                        workload: profile.key.label().to_string(),
                        publishers: info.publishers,
                        generation: info.generation,
                        fragments: info.fragments,
                        epoch: profile.epoch,
                    },
                    Err(message) => Response::Error { message },
                }
            }
            None => missing(id),
        },
    }
}
