//! One shard: a worker thread owning a private session table, fed
//! through a bounded queue.
//!
//! Sessions are partitioned across shards by id, so a session's entire
//! lifetime runs on one thread — no locks around engine or VM state, and
//! isolation between sessions is structural (each [`Session`] owns its
//! state outright). Backpressure is the queue bound itself: the manager
//! uses `try_send`, and a full queue surfaces as an explicit
//! [`Response::Busy`] instead of unbounded buffering.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use hotpath_vm::BlockEvent;

use crate::protocol::Response;
use crate::session::{Session, SessionConfig};
use crate::snapshot::SessionSnapshot;

/// Where a shard delivers a finished response.
///
/// The in-process API parks the caller on a rendezvous channel; the
/// reactor front-end must never block, so its completions ride a plain
/// queue paired with a self-pipe wake of the owning event loop.
#[derive(Debug)]
pub(crate) enum ReplyTo {
    /// Blocking caller: one rendezvous slot, receiver waits.
    Sync(SyncSender<Response>),
    /// Reactor completion: enqueue and wake the event loop.
    #[cfg(unix)]
    Reactor {
        /// Connection token the response belongs to (generation-tagged;
        /// the reactor discards completions for recycled slots).
        token: u64,
        /// The owning reactor's completion queue.
        tx: std::sync::mpsc::Sender<crate::reactor::Completion>,
        /// Self-pipe that unparks the reactor's poller.
        wake: Arc<crate::sys::WakePipe>,
    },
}

impl ReplyTo {
    /// Delivers the response; a dead receiver means the requester gave
    /// up, which is never an error for the shard.
    pub(crate) fn send(self, response: Response) {
        match self {
            ReplyTo::Sync(reply) => {
                let _ = reply.send(response);
            }
            #[cfg(unix)]
            ReplyTo::Reactor { token, tx, wake } => {
                let _ = tx.send(crate::reactor::Completion { token, response });
                wake.wake();
            }
        }
    }
}

/// Lifetime counters a shard worker maintains; the manager sums them
/// across shards to answer [`Request::Stats`](crate::Request::Stats).
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    /// Sessions currently resident in the shard's table.
    pub live: AtomicU64,
    /// Sessions ever opened (including restores).
    pub opened: AtomicU64,
    /// Sessions ever closed.
    pub closed: AtomicU64,
}

/// A request already routed to a shard (session ids resolved by the
/// manager).
#[derive(Debug)]
pub(crate) enum ShardRequest {
    Open {
        id: u64,
        config: SessionConfig,
    },
    Restore {
        id: u64,
        snapshot: Box<SessionSnapshot>,
    },
    Run {
        id: u64,
        fuel: Option<u64>,
    },
    Ingest {
        id: u64,
        events: Vec<BlockEvent>,
    },
    Query {
        id: u64,
    },
    Snapshot {
        id: u64,
    },
    Flush {
        id: u64,
    },
    Close {
        id: u64,
    },
}

/// One queued unit of work: a routed request plus the reply slot.
#[derive(Debug)]
pub(crate) enum Job {
    Request {
        request: ShardRequest,
        reply: ReplyTo,
    },
    /// Snapshot every resident session (used by the drain path to park
    /// warm state on disk before the process exits).
    SnapshotAll {
        reply: SyncSender<Vec<(u64, Vec<u8>)>>,
    },
    /// Drain and exit; sent once by the manager at shutdown.
    Shutdown,
}

/// Spawns a shard worker; returns its queue sender, lifetime counters,
/// and join handle.
pub(crate) fn spawn(
    shard_id: u32,
    queue_depth: usize,
    max_sessions: usize,
) -> (SyncSender<Job>, Arc<ShardCounters>, JoinHandle<()>) {
    let (sender, receiver) = sync_channel(queue_depth);
    let counters = Arc::new(ShardCounters::default());
    let thread = {
        let counters = Arc::clone(&counters);
        std::thread::Builder::new()
            .name(format!("hotpath-shard-{shard_id}"))
            .spawn(move || worker(shard_id, &receiver, max_sessions, &counters))
            .expect("spawn shard thread")
    };
    (sender, counters, thread)
}

fn worker(shard_id: u32, receiver: &Receiver<Job>, max_sessions: usize, counters: &ShardCounters) {
    let mut sessions: HashMap<u64, Session> = HashMap::new();
    while let Ok(job) = receiver.recv() {
        let (request, reply) = match job {
            Job::Request { request, reply } => (request, reply),
            Job::SnapshotAll { reply } => {
                let mut blobs: Vec<(u64, Vec<u8>)> = sessions
                    .iter()
                    .map(|(&id, session)| (id, session.snapshot().encode()))
                    .collect();
                blobs.sort_by_key(|&(id, _)| id);
                let _ = reply.send(blobs);
                continue;
            }
            Job::Shutdown => break,
        };
        let response = handle(shard_id, &mut sessions, max_sessions, counters, request);
        // A dead reply slot means the requester gave up; nothing to do.
        reply.send(response);
    }
}

fn handle(
    shard_id: u32,
    sessions: &mut HashMap<u64, Session>,
    max_sessions: usize,
    counters: &ShardCounters,
    request: ShardRequest,
) -> Response {
    let missing = |id: u64| Response::Error {
        message: format!("no session {id} on shard {shard_id}"),
    };
    match request {
        ShardRequest::Open { id, config } => {
            if sessions.len() >= max_sessions {
                return Response::Busy;
            }
            sessions.insert(id, Session::open(id, shard_id, config));
            counters.live.fetch_add(1, Ordering::Relaxed);
            counters.opened.fetch_add(1, Ordering::Relaxed);
            Response::Opened {
                session: id,
                shard: shard_id,
            }
        }
        ShardRequest::Restore { id, snapshot } => {
            if sessions.len() >= max_sessions {
                return Response::Busy;
            }
            match Session::restore(id, shard_id, &snapshot) {
                Ok(session) => {
                    sessions.insert(id, session);
                    counters.live.fetch_add(1, Ordering::Relaxed);
                    counters.opened.fetch_add(1, Ordering::Relaxed);
                    Response::Opened {
                        session: id,
                        shard: shard_id,
                    }
                }
                Err(message) => Response::Error { message },
            }
        }
        ShardRequest::Run { id, fuel } => match sessions.get_mut(&id) {
            Some(session) => match session.run(fuel) {
                Ok((done, stats)) => Response::Ran { done, stats },
                Err(message) => Response::Error { message },
            },
            None => missing(id),
        },
        ShardRequest::Ingest { id, events } => match sessions.get_mut(&id) {
            Some(session) => match session.ingest(&events) {
                Ok((events, paths, fragments)) => Response::Ingested {
                    events,
                    paths,
                    fragments,
                },
                Err(message) => Response::Error { message },
            },
            None => missing(id),
        },
        ShardRequest::Query { id } => match sessions.get(&id) {
            Some(session) => Response::Status(session.status()),
            None => missing(id),
        },
        ShardRequest::Snapshot { id } => match sessions.get(&id) {
            Some(session) => Response::SnapshotBlob {
                blob: session.snapshot().encode(),
            },
            None => missing(id),
        },
        ShardRequest::Flush { id } => match sessions.get_mut(&id) {
            Some(session) => {
                session.force_flush();
                Response::Status(session.status())
            }
            None => missing(id),
        },
        ShardRequest::Close { id } => match sessions.remove(&id) {
            Some(session) => {
                counters.live.fetch_sub(1, Ordering::Relaxed);
                counters.closed.fetch_add(1, Ordering::Relaxed);
                Response::Closed {
                    blocks: session.stats().blocks_executed,
                }
            }
            None => missing(id),
        },
    }
}
