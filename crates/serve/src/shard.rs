//! One shard: a worker thread owning a private session table, fed
//! through a bounded queue.
//!
//! Sessions are partitioned across shards by id, so a session's entire
//! lifetime runs on one thread — no locks around engine or VM state, and
//! isolation between sessions is structural (each [`Session`] owns its
//! state outright). Backpressure is the queue bound itself: the manager
//! uses `try_send`, and a full queue surfaces as an explicit
//! [`Response::Busy`] instead of unbounded buffering.

use std::collections::{BTreeMap, HashMap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use hotpath_faultinject::{FaultInjector, FaultPlan, FaultPoint};
use hotpath_selfprof as selfprof;
use hotpath_telemetry as telemetry;
use hotpath_vm::BlockEvent;

use crate::profile_store::{PrewarmProfile, ProfileKey, ProfileStore, SessionProfile};
use crate::protocol::{PrewarmOutcome, Response};
use crate::session::{Session, SessionConfig};
use crate::snapshot::SessionSnapshot;

/// Where a shard delivers a finished response.
///
/// The in-process API parks the caller on a rendezvous channel; the
/// reactor front-end must never block, so its completions ride a plain
/// queue paired with a self-pipe wake of the owning event loop.
#[derive(Debug)]
pub(crate) enum ReplyTo {
    /// Blocking caller: one rendezvous slot, receiver waits.
    Sync(SyncSender<Response>),
    /// Reactor completion: enqueue and wake the event loop.
    #[cfg(unix)]
    Reactor {
        /// Connection token the response belongs to (generation-tagged;
        /// the reactor discards completions for recycled slots).
        token: u64,
        /// The owning reactor's completion queue.
        tx: std::sync::mpsc::Sender<crate::reactor::Completion>,
        /// Self-pipe that unparks the reactor's poller.
        wake: Arc<crate::sys::WakePipe>,
    },
}

impl ReplyTo {
    /// Delivers the response; a dead receiver means the requester gave
    /// up, which is never an error for the shard.
    pub(crate) fn send(self, response: Response) {
        match self {
            ReplyTo::Sync(reply) => {
                let _ = reply.send(response);
            }
            #[cfg(unix)]
            ReplyTo::Reactor { token, tx, wake } => {
                let _ = tx.send(crate::reactor::Completion { token, response });
                wake.wake();
            }
        }
    }
}

/// Lifetime counters a shard worker maintains; the manager sums them
/// across shards to answer [`Request::Stats`](crate::Request::Stats).
#[derive(Debug, Default)]
pub(crate) struct ShardCounters {
    /// Sessions currently resident in the shard's table.
    pub live: AtomicU64,
    /// Sessions ever opened (including restores).
    pub opened: AtomicU64,
    /// Sessions ever closed.
    pub closed: AtomicU64,
    /// Sessions pre-warmed from the fleet profile store.
    pub prewarmed: AtomicU64,
    /// Store generation the shard's read-mostly profile cache last
    /// synced at; the manager reports the worst lag as refresh age.
    pub profile_gen: AtomicU64,
    /// Times the shard's worker recovered from a panic (its session
    /// table rebuilt from seeds).
    pub restarted: AtomicU64,
    /// Sessions re-admitted after worker panics, warm or cold.
    pub readmitted: AtomicU64,
}

/// A request already routed to a shard (session ids resolved by the
/// manager).
#[derive(Debug)]
pub(crate) enum ShardRequest {
    Open {
        id: u64,
        config: SessionConfig,
    },
    Restore {
        id: u64,
        snapshot: Box<SessionSnapshot>,
    },
    Run {
        id: u64,
        fuel: Option<u64>,
    },
    Ingest {
        id: u64,
        events: Vec<BlockEvent>,
    },
    Query {
        id: u64,
    },
    Snapshot {
        id: u64,
    },
    Flush {
        id: u64,
    },
    Close {
        id: u64,
    },
    /// Publish the session's warm state into the fleet profile store.
    Publish {
        id: u64,
    },
}

/// One queued unit of work: a routed request plus the reply slot.
#[derive(Debug)]
pub(crate) enum Job {
    Request {
        request: ShardRequest,
        reply: ReplyTo,
    },
    /// Snapshot every resident session (used by the drain path to park
    /// warm state on disk before the process exits).
    SnapshotAll {
        reply: SyncSender<Vec<(u64, Vec<u8>)>>,
    },
    /// Drain and exit; sent once by the manager at shutdown.
    Shutdown,
}

/// Spawns a shard worker; returns its queue sender, lifetime counters,
/// and join handle. `chaos` (already derived per shard by the manager)
/// arms the worker's fault injector; `None` leaves every probe one
/// untaken branch.
pub(crate) fn spawn(
    shard_id: u32,
    queue_depth: usize,
    max_sessions: usize,
    store: Arc<ProfileStore>,
    chaos: Option<FaultPlan>,
) -> (SyncSender<Job>, Arc<ShardCounters>, JoinHandle<()>) {
    let (sender, receiver) = sync_channel(queue_depth);
    let counters = Arc::new(ShardCounters::default());
    let thread = {
        let counters = Arc::clone(&counters);
        std::thread::Builder::new()
            .name(format!("hotpath-shard-{shard_id}"))
            .spawn(move || worker(shard_id, &receiver, max_sessions, &counters, &store, chaos))
            .expect("spawn shard thread")
    };
    (sender, counters, thread)
}

/// One slot of the shard's read-mostly profile cache: the aggregate (or
/// confirmed absence of one) as of a store generation.
struct CachedProfile {
    generation: u64,
    profile: Option<Arc<PrewarmProfile>>,
}

/// Shard-thread-local worker state beyond the session table.
struct Worker<'a> {
    shard_id: u32,
    max_sessions: usize,
    counters: &'a ShardCounters,
    store: &'a ProfileStore,
    /// Read-mostly cache of store aggregates. Admission consults this
    /// after one lock-free generation check; the store mutex is only
    /// touched when the cache is behind, so opening a session never
    /// contends with other shards in steady state.
    profiles: BTreeMap<ProfileKey, CachedProfile>,
    /// Seeded fault injector (shard-panic and publish-poison points).
    /// Disabled unless the pool was configured with a chaos plan.
    injector: FaultInjector,
}

/// Everything the supervisor needs to bring a session back after a
/// worker panic: its opening configuration always, plus — only while the
/// injector is armed — the last sealed snapshot. An unsealed seed
/// re-admits cold (prewarmed when the config asks for it), which is
/// slower but bit-identical for deterministic workloads.
struct SessionSeed {
    config: SessionConfig,
    sealed: Option<Vec<u8>>,
}

/// Seed-table maintenance derived from a request before it is handled
/// (the request itself is consumed — possibly by a panic — inside the
/// unwind boundary).
enum SeedUpdate {
    None,
    /// Open or restore: record the seed on success.
    Open {
        id: u64,
        config: SessionConfig,
    },
    /// Run/ingest/flush: re-seal the session's snapshot on success
    /// (armed injector only — unarmed shards skip the capture cost).
    Mutate {
        id: u64,
    },
    /// Snapshot: the response already carries a sealed blob; keep it.
    Seal {
        id: u64,
    },
    /// Close: drop the seed on success.
    Close {
        id: u64,
    },
}

/// Consecutive panics before the circuit breaker trips and the worker
/// exits for good (requests then surface `ShuttingDown`).
const PANIC_BREAKER: u32 = 8;
/// Base restart backoff; doubles per consecutive panic, capped at
/// [`PANIC_BACKOFF_CAP_MS`].
const PANIC_BACKOFF_BASE_MS: u64 = 1;
const PANIC_BACKOFF_CAP_MS: u64 = 100;

impl Worker<'_> {
    /// The store aggregate for `key`, through the shard-local cache.
    fn cached_aggregate(&mut self, key: ProfileKey) -> Option<Arc<PrewarmProfile>> {
        let generation = self.store.generation();
        let hit = self
            .profiles
            .get(&key)
            .is_some_and(|c| c.generation == generation);
        if !hit {
            self.profiles.insert(
                key,
                CachedProfile {
                    generation,
                    profile: self.store.fetch(&key),
                },
            );
        }
        self.counters
            .profile_gen
            .store(generation, Ordering::Release);
        self.profiles.get(&key).unwrap().profile.clone()
    }

    /// A session snapshot with the fleet aggregate for its key attached,
    /// so restoring the snapshot can re-seed the store.
    fn snapshot_with_profile(&mut self, session: &Session) -> SessionSnapshot {
        let mut snapshot = session.snapshot();
        snapshot.profile = self
            .cached_aggregate(ProfileKey::of(session.config()))
            .map(|p| SessionProfile {
                key: p.key,
                epoch: p.epoch,
                warm: p.warm.clone(),
            });
        snapshot
    }
}

fn worker(
    shard_id: u32,
    receiver: &Receiver<Job>,
    max_sessions: usize,
    counters: &ShardCounters,
    store: &ProfileStore,
    chaos: Option<FaultPlan>,
) {
    let mut sessions: HashMap<u64, Session> = HashMap::new();
    let mut seeds: HashMap<u64, SessionSeed> = HashMap::new();
    let mut worker = Worker {
        shard_id,
        max_sessions,
        counters,
        store,
        profiles: BTreeMap::new(),
        injector: chaos.map_or_else(FaultInjector::disabled, FaultInjector::new),
    };
    let mut consecutive_panics = 0u32;
    while let Ok(job) = receiver.recv() {
        let (request, reply) = match job {
            Job::Request { request, reply } => (request, reply),
            Job::SnapshotAll { reply } => {
                let mut blobs: Vec<(u64, Vec<u8>)> = sessions
                    .iter()
                    .map(|(&id, session)| (id, worker.snapshot_with_profile(session).encode()))
                    .collect();
                blobs.sort_by_key(|&(id, _)| id);
                let _ = reply.send(blobs);
                continue;
            }
            Job::Shutdown => break,
        };
        // Seed-table bookkeeping is decided before the request crosses
        // the unwind boundary (a panic consumes it).
        let update = seed_update(&request);
        // Supervision: the session table crosses the boundary (`handle`
        // mutates it), but the seed table and reply slot stay out here,
        // so a panicked request is always answered and recovery always
        // has clean state to rebuild from.
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            handle(&mut worker, &mut sessions, request)
        }));
        match outcome {
            Ok(response) => {
                consecutive_panics = 0;
                apply_seed_update(&mut worker, &sessions, &mut seeds, update, &response);
                // A dead reply slot means the requester gave up.
                reply.send(response);
            }
            Err(_) => {
                // The mutation may have half-applied; everything in the
                // table is now suspect. Answer `Busy` — the honest
                // "retry later" — then rebuild from seeds.
                reply.send(Response::Busy);
                consecutive_panics += 1;
                if consecutive_panics >= PANIC_BREAKER {
                    // Panic storm: stop flapping. The pool surfaces
                    // `ShuttingDown` for this shard from here on.
                    counters.live.store(0, Ordering::Relaxed);
                    return;
                }
                let backoff =
                    (PANIC_BACKOFF_BASE_MS << (consecutive_panics - 1)).min(PANIC_BACKOFF_CAP_MS);
                std::thread::sleep(Duration::from_millis(backoff));
                readmit(&mut worker, &mut sessions, &seeds);
                counters.restarted.fetch_add(1, Ordering::Relaxed);
                telemetry::emit!(telemetry::Event::ShardRestarted {
                    shard: shard_id,
                    consecutive: u64::from(consecutive_panics),
                    readmitted: sessions.len() as u64,
                });
            }
        }
    }
}

/// What the seed table should do once `request` completes successfully.
fn seed_update(request: &ShardRequest) -> SeedUpdate {
    match request {
        ShardRequest::Open { id, config } => SeedUpdate::Open {
            id: *id,
            config: config.clone(),
        },
        ShardRequest::Restore { id, snapshot } => SeedUpdate::Open {
            id: *id,
            config: snapshot.config.clone(),
        },
        ShardRequest::Run { id, .. }
        | ShardRequest::Ingest { id, .. }
        | ShardRequest::Flush { id } => SeedUpdate::Mutate { id: *id },
        ShardRequest::Snapshot { id } => SeedUpdate::Seal { id: *id },
        ShardRequest::Close { id } => SeedUpdate::Close { id: *id },
        ShardRequest::Query { .. } | ShardRequest::Publish { .. } => SeedUpdate::None,
    }
}

/// Applies a [`SeedUpdate`] after a successful (non-panicking) request.
/// Sealing is gated on an armed injector: unarmed shards keep only the
/// cheap config seed (cold-but-correct re-admission), never paying
/// snapshot-capture cost on the hot path.
fn apply_seed_update(
    worker: &mut Worker<'_>,
    sessions: &HashMap<u64, Session>,
    seeds: &mut HashMap<u64, SessionSeed>,
    update: SeedUpdate,
    response: &Response,
) {
    match update {
        SeedUpdate::None => {}
        SeedUpdate::Open { id, config } => {
            if matches!(response, Response::Opened { .. }) {
                let sealed = if worker.injector.armed() {
                    sessions
                        .get(&id)
                        .map(|s| worker.snapshot_with_profile(s).encode())
                } else {
                    None
                };
                seeds.insert(id, SessionSeed { config, sealed });
            }
        }
        SeedUpdate::Mutate { id } => {
            if worker.injector.armed() && !matches!(response, Response::Error { .. }) {
                if let Some(session) = sessions.get(&id) {
                    let sealed = worker.snapshot_with_profile(session).encode();
                    if let Some(seed) = seeds.get_mut(&id) {
                        seed.sealed = Some(sealed);
                    }
                }
            }
        }
        SeedUpdate::Seal { id } => {
            if let Response::SnapshotBlob { blob } = response {
                if worker.injector.armed() {
                    if let Some(seed) = seeds.get_mut(&id) {
                        seed.sealed = Some(blob.clone());
                    }
                }
            }
        }
        SeedUpdate::Close { id } => {
            if matches!(response, Response::Closed { .. }) {
                seeds.remove(&id);
            }
        }
    }
}

/// Rebuilds the session table from seeds after a panic: sealed seeds
/// restore to their exact snapshotted state; unsealed ones re-open cold
/// (prewarmed when the config asks), which costs warm-up time but — the
/// engine contract — never changes results.
fn readmit(
    worker: &mut Worker<'_>,
    sessions: &mut HashMap<u64, Session>,
    seeds: &HashMap<u64, SessionSeed>,
) {
    sessions.clear();
    let shard_id = worker.shard_id;
    // Deterministic rebuild order (telemetry and prewarm cache touches).
    let mut ids: Vec<u64> = seeds.keys().copied().collect();
    ids.sort_unstable();
    for id in ids {
        let seed = &seeds[&id];
        let restored = seed
            .sealed
            .as_deref()
            .and_then(|blob| SessionSnapshot::decode(blob).ok())
            .and_then(|snapshot| Session::restore(id, shard_id, &snapshot).ok());
        let warm = restored.is_some();
        let session = restored.unwrap_or_else(|| {
            let mut cold = Session::open(id, shard_id, seed.config.clone());
            if seed.config.prewarm {
                if let Some(aggregate) = worker.cached_aggregate(ProfileKey::of(&seed.config)) {
                    let _ = cold.prewarm(&aggregate.warm);
                }
            }
            cold
        });
        sessions.insert(id, session);
        worker.counters.readmitted.fetch_add(1, Ordering::Relaxed);
        telemetry::emit!(telemetry::Event::SessionReadmitted {
            session: id,
            shard: shard_id,
            warm,
        });
    }
    worker
        .counters
        .live
        .store(sessions.len() as u64, Ordering::Relaxed);
}

fn handle(
    worker: &mut Worker<'_>,
    sessions: &mut HashMap<u64, Session>,
    request: ShardRequest,
) -> Response {
    let _selfprof_dispatch = selfprof::StageGuard::enter(selfprof::Stage::ShardDispatch);
    let shard_id = worker.shard_id;
    let missing = |id: u64| Response::Error {
        message: format!("no session {id} on shard {shard_id}"),
    };
    match request {
        ShardRequest::Open { id, config } => {
            if sessions.len() >= worker.max_sessions {
                return Response::Busy;
            }
            let mut session = Session::open(id, shard_id, config.clone());
            let prewarm = if config.prewarm {
                let _selfprof_prewarm = selfprof::StageGuard::enter(selfprof::Stage::Prewarm);
                match worker.cached_aggregate(ProfileKey::of(&config)) {
                    Some(aggregate) => match session.prewarm(&aggregate.warm) {
                        Ok((fragments, counters)) => {
                            worker.counters.prewarmed.fetch_add(1, Ordering::Relaxed);
                            PrewarmOutcome::Warmed {
                                fragments,
                                counters,
                            }
                        }
                        Err(reason) => PrewarmOutcome::Rejected { reason },
                    },
                    None => PrewarmOutcome::Rejected {
                        reason: "no aggregate profile for this key yet".to_string(),
                    },
                }
            } else {
                PrewarmOutcome::NotRequested
            };
            sessions.insert(id, session);
            worker.counters.live.fetch_add(1, Ordering::Relaxed);
            worker.counters.opened.fetch_add(1, Ordering::Relaxed);
            Response::Opened {
                session: id,
                shard: shard_id,
                prewarm,
            }
        }
        ShardRequest::Restore { id, snapshot } => {
            if sessions.len() >= worker.max_sessions {
                return Response::Busy;
            }
            let restored = selfprof::stage!(
                selfprof::Stage::SnapshotRestore,
                Session::restore(id, shard_id, &snapshot)
            );
            match restored {
                Ok(session) => {
                    // A snapshot saved with a fleet aggregate re-seeds
                    // the store (one publisher's worth); a fleet
                    // restarted from parked snapshots warms its store
                    // back up without waiting for live publishes.
                    if let Some(profile) = &snapshot.profile {
                        let _ = selfprof::stage!(
                            selfprof::Stage::ProfilePublish,
                            worker.store.publish(profile)
                        );
                    }
                    sessions.insert(id, session);
                    worker.counters.live.fetch_add(1, Ordering::Relaxed);
                    worker.counters.opened.fetch_add(1, Ordering::Relaxed);
                    Response::Opened {
                        session: id,
                        shard: shard_id,
                        prewarm: PrewarmOutcome::NotRequested,
                    }
                }
                Err(message) => Response::Error { message },
            }
        }
        ShardRequest::Run { id, fuel } => match sessions.get_mut(&id) {
            Some(session) => {
                // Injected before the slice mutates anything, so the
                // re-admitted session replays from exactly this point.
                if worker.injector.armed() && worker.injector.fire(FaultPoint::ShardPanic) {
                    panic!("injected shard panic (run, session {id})");
                }
                match session.run(fuel) {
                    Ok((done, stats)) => Response::Ran { done, stats },
                    Err(message) => Response::Error { message },
                }
            }
            None => missing(id),
        },
        ShardRequest::Ingest { id, events } => match sessions.get_mut(&id) {
            Some(session) => {
                if worker.injector.armed() && worker.injector.fire(FaultPoint::ShardPanic) {
                    panic!("injected shard panic (ingest, session {id})");
                }
                match session.ingest(&events) {
                    Ok((events, paths, fragments)) => Response::Ingested {
                        events,
                        paths,
                        fragments,
                    },
                    Err(message) => Response::Error { message },
                }
            }
            None => missing(id),
        },
        ShardRequest::Query { id } => match sessions.get(&id) {
            Some(session) => Response::Status(session.status()),
            None => missing(id),
        },
        ShardRequest::Snapshot { id } => match sessions.get(&id) {
            Some(session) => Response::SnapshotBlob {
                blob: selfprof::stage!(
                    selfprof::Stage::SnapshotSave,
                    worker.snapshot_with_profile(session).encode()
                ),
            },
            None => missing(id),
        },
        ShardRequest::Flush { id } => match sessions.get_mut(&id) {
            Some(session) => {
                session.force_flush();
                Response::Status(session.status())
            }
            None => missing(id),
        },
        ShardRequest::Close { id } => match sessions.remove(&id) {
            Some(session) => {
                worker.counters.live.fetch_sub(1, Ordering::Relaxed);
                worker.counters.closed.fetch_add(1, Ordering::Relaxed);
                Response::Closed {
                    blocks: session.stats().blocks_executed,
                }
            }
            None => missing(id),
        },
        ShardRequest::Publish { id } => match sessions.get(&id) {
            Some(session) => {
                let profile = SessionProfile {
                    key: ProfileKey::of(session.config()),
                    epoch: session.epoch(),
                    warm: session.engine().export_warm_state(),
                };
                // Unhealthy sessions (degraded ladder, bail-out,
                // poisoned trace heads) — or an injected poison — must
                // not feed the fleet aggregate; their warm state goes
                // to quarantine until an operator re-promotes the key.
                let quarantined = !session.healthy()
                    || (worker.injector.armed() && worker.injector.fire(FaultPoint::PublishPoison));
                let published = selfprof::stage!(
                    selfprof::Stage::ProfilePublish,
                    if quarantined {
                        worker.store.publish_quarantined(&profile)
                    } else {
                        worker.store.publish(&profile)
                    }
                );
                match published {
                    Ok(info) => Response::ProfilePublished {
                        workload: profile.key.label().to_string(),
                        publishers: info.publishers,
                        generation: info.generation,
                        fragments: info.fragments,
                        epoch: profile.epoch,
                        quarantined,
                    },
                    Err(message) => Response::Error { message },
                }
            }
            None => missing(id),
        },
    }
}
