//! One shard: a worker thread owning a private session table, fed
//! through a bounded queue.
//!
//! Sessions are partitioned across shards by id, so a session's entire
//! lifetime runs on one thread — no locks around engine or VM state, and
//! isolation between sessions is structural (each [`Session`] owns its
//! state outright). Backpressure is the queue bound itself: the manager
//! uses `try_send`, and a full queue surfaces as an explicit
//! [`Response::Busy`] instead of unbounded buffering.

use std::collections::HashMap;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

use hotpath_vm::BlockEvent;

use crate::protocol::Response;
use crate::session::{Session, SessionConfig};
use crate::snapshot::SessionSnapshot;

/// A request already routed to a shard (session ids resolved by the
/// manager).
#[derive(Debug)]
pub(crate) enum ShardRequest {
    Open {
        id: u64,
        config: SessionConfig,
    },
    Restore {
        id: u64,
        snapshot: Box<SessionSnapshot>,
    },
    Run {
        id: u64,
        fuel: Option<u64>,
    },
    Ingest {
        id: u64,
        events: Vec<BlockEvent>,
    },
    Query {
        id: u64,
    },
    Snapshot {
        id: u64,
    },
    Flush {
        id: u64,
    },
    Close {
        id: u64,
    },
}

/// One queued unit of work: a routed request plus the reply slot.
#[derive(Debug)]
pub(crate) enum Job {
    Request {
        request: ShardRequest,
        reply: SyncSender<Response>,
    },
    /// Drain and exit; sent once by the manager at shutdown.
    Shutdown,
}

/// Spawns a shard worker; returns its queue sender and join handle.
pub(crate) fn spawn(
    shard_id: u32,
    queue_depth: usize,
    max_sessions: usize,
) -> (SyncSender<Job>, JoinHandle<()>) {
    let (sender, receiver) = sync_channel(queue_depth);
    let thread = std::thread::Builder::new()
        .name(format!("hotpath-shard-{shard_id}"))
        .spawn(move || worker(shard_id, &receiver, max_sessions))
        .expect("spawn shard thread");
    (sender, thread)
}

fn worker(shard_id: u32, receiver: &Receiver<Job>, max_sessions: usize) {
    let mut sessions: HashMap<u64, Session> = HashMap::new();
    while let Ok(job) = receiver.recv() {
        let Job::Request { request, reply } = job else {
            break;
        };
        let response = handle(shard_id, &mut sessions, max_sessions, request);
        // A dead reply slot means the requester gave up; nothing to do.
        let _ = reply.send(response);
    }
}

fn handle(
    shard_id: u32,
    sessions: &mut HashMap<u64, Session>,
    max_sessions: usize,
    request: ShardRequest,
) -> Response {
    let missing = |id: u64| Response::Error {
        message: format!("no session {id} on shard {shard_id}"),
    };
    match request {
        ShardRequest::Open { id, config } => {
            if sessions.len() >= max_sessions {
                return Response::Busy;
            }
            sessions.insert(id, Session::open(id, shard_id, config));
            Response::Opened {
                session: id,
                shard: shard_id,
            }
        }
        ShardRequest::Restore { id, snapshot } => {
            if sessions.len() >= max_sessions {
                return Response::Busy;
            }
            match Session::restore(id, shard_id, &snapshot) {
                Ok(session) => {
                    sessions.insert(id, session);
                    Response::Opened {
                        session: id,
                        shard: shard_id,
                    }
                }
                Err(message) => Response::Error { message },
            }
        }
        ShardRequest::Run { id, fuel } => match sessions.get_mut(&id) {
            Some(session) => match session.run(fuel) {
                Ok((done, stats)) => Response::Ran { done, stats },
                Err(message) => Response::Error { message },
            },
            None => missing(id),
        },
        ShardRequest::Ingest { id, events } => match sessions.get_mut(&id) {
            Some(session) => match session.ingest(&events) {
                Ok((events, paths, fragments)) => Response::Ingested {
                    events,
                    paths,
                    fragments,
                },
                Err(message) => Response::Error { message },
            },
            None => missing(id),
        },
        ShardRequest::Query { id } => match sessions.get(&id) {
            Some(session) => Response::Status(session.status()),
            None => missing(id),
        },
        ShardRequest::Snapshot { id } => match sessions.get(&id) {
            Some(session) => Response::SnapshotBlob {
                blob: session.snapshot().encode(),
            },
            None => missing(id),
        },
        ShardRequest::Flush { id } => match sessions.get_mut(&id) {
            Some(session) => {
                session.force_flush();
                Response::Status(session.status())
            }
            None => missing(id),
        },
        ShardRequest::Close { id } => match sessions.remove(&id) {
            Some(session) => Response::Closed {
                blocks: session.stats().blocks_executed,
            },
            None => missing(id),
        },
    }
}
