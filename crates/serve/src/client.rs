//! A blocking TCP client for the serving protocol: one connection, one
//! request/response in flight at a time — hardened for partial failure.
//!
//! [`Client::request`] is the raw call — it surfaces every response,
//! including [`Response::Busy`], and never retries. The typed wrappers
//! ([`Client::open`], [`Client::run`], …) run a [`RetryPolicy`]: capped
//! exponential backoff with seeded jitter on `Busy`, automatic reconnect
//! on connection loss, a per-request deadline, and an overall attempt
//! budget that surfaces as [`ClientError::Exhausted`] instead of looping
//! forever against a persistently saturated shard.
//!
//! Retries after connection loss are made safe by sequencing: every
//! mutating request is wrapped in [`Request::Sequenced`] with a
//! per-session sequence number (opens use a client-chosen nonce), so a
//! mutation whose response was lost is answered from the server's replay
//! cache instead of executing twice.

use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

use hotpath_ir::rng::Rng64;
use hotpath_vm::{BlockEvent, RunStats};

use crate::protocol::{read_frame, write_frame, PrewarmOutcome, Request, Response, ServerStats};
use crate::session::{SessionConfig, SessionStatus};

/// Retry behavior for the typed request wrappers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Total attempts per logical request (first try included) before
    /// giving up with [`ClientError::Exhausted`].
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry after that.
    pub base_backoff: Duration,
    /// Backoff growth cap.
    pub max_backoff: Duration,
    /// Wall-clock budget per logical request, spanning every attempt and
    /// backoff sleep; also bounds each socket read. `None` waits
    /// indefinitely.
    pub deadline: Option<Duration>,
    /// Seed for backoff jitter (and the open-nonce stream); two clients
    /// given distinct seeds never sleep nor nonce in lockstep.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
            deadline: Some(Duration::from_secs(30)),
            seed: 0x5EED,
        }
    }
}

impl RetryPolicy {
    /// Returns the policy with a different jitter/nonce seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Why a typed request failed for good (retries, if any, included).
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed and the policy would not (or could not)
    /// retry further.
    Io(io::Error),
    /// The server answered, but with something the protocol does not
    /// allow here (undecodable frame or wrong response variant).
    Protocol(String),
    /// The server rejected the request ([`Response::Error`]).
    Server(String),
    /// The attempt budget or deadline ran out before any attempt
    /// succeeded.
    Exhausted {
        /// Attempts actually made.
        attempts: u32,
        /// What the final attempt saw.
        last: String,
    },
    /// The server is shutting down.
    ShuttingDown,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol violation: {m}"),
            ClientError::Server(m) => write!(f, "server error: {m}"),
            ClientError::Exhausted { attempts, last } => {
                write!(
                    f,
                    "retries exhausted after {attempts} attempts (last: {last})"
                )
            }
            ClientError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A live connection (split for buffered reads and writes).
#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Conn {
    fn dial(addr: SocketAddr) -> io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }
}

/// A connected client.
#[derive(Debug)]
pub struct Client {
    addr: SocketAddr,
    conn: Option<Conn>,
    policy: RetryPolicy,
    jitter: Rng64,
    nonces: Rng64,
    /// Next sequence number per open session (mutations are stamped and
    /// the counter advances once per logical call, not per retry).
    seqs: HashMap<u64, u64>,
    retries: u64,
    reconnects: u64,
}

fn unexpected(what: &str, response: &Response) -> ClientError {
    ClientError::Protocol(format!("expected {what}, server sent {response:?}"))
}

impl Client {
    /// Connects to a server with the default retry policy.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        Client::connect_with(addr, RetryPolicy::default())
    }

    /// Connects to a server with an explicit retry policy.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, policy: RetryPolicy) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let addr = stream.peer_addr()?;
        let conn = Conn {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        };
        // Each client instance gets its own nonce/jitter streams even
        // under a shared policy seed: two clients drawing the same open
        // nonce would be deduplicated into ONE session by the server's
        // replay cache.
        static NEXT_INSTANCE: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let instance = NEXT_INSTANCE
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Ok(Client {
            addr,
            conn: Some(conn),
            policy,
            jitter: Rng64::seed_from_u64(policy.seed ^ instance ^ 0x4A49_5454),
            nonces: Rng64::seed_from_u64(policy.seed ^ instance ^ 0x4E4F_4E43),
            seqs: HashMap::new(),
            retries: 0,
            reconnects: 0,
        })
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Retries performed so far (backoff sleeps taken).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Reconnects performed after connection loss.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Sends one request and reads the response on the current
    /// connection. No retries, no sequencing: `Busy` comes back as-is
    /// and a dead connection is an error.
    ///
    /// # Errors
    ///
    /// I/O failures, or a malformed/truncated response stream. The
    /// connection is torn down on failure; the next typed call redials.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        self.request_once(request, None).map_err(|e| {
            self.conn = None;
            e
        })
    }

    fn request_once(
        &mut self,
        request: &Request,
        deadline: Option<Instant>,
    ) -> io::Result<Response> {
        if self.conn.is_none() {
            self.conn = Some(Conn::dial(self.addr)?);
            self.reconnects += 1;
        }
        let conn = self.conn.as_mut().expect("connection just established");
        // Bound the wait for the response by what is left of the
        // deadline, so a stalled peer cannot wedge the client.
        let timeout = match deadline {
            Some(at) => Some(
                at.checked_duration_since(Instant::now())
                    .filter(|d| !d.is_zero())
                    .ok_or_else(|| {
                        io::Error::new(io::ErrorKind::TimedOut, "request deadline exceeded")
                    })?,
            ),
            None => None,
        };
        conn.reader.get_ref().set_read_timeout(timeout)?;
        write_frame(&mut conn.writer, &request.encode())?;
        let payload = read_frame(&mut conn.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Response::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// The retry engine behind every typed wrapper. Every request sent
    /// here is safe to re-send: reads are idempotent by nature and
    /// mutations arrive pre-wrapped in [`Request::Sequenced`], so the
    /// server's replay cache absorbs duplicates.
    fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let deadline = self.policy.deadline.map(|d| Instant::now() + d);
        let mut last = String::new();
        let mut attempts = 0u32;
        while attempts < self.policy.max_attempts {
            attempts += 1;
            match self.request_once(request, deadline) {
                Ok(Response::Busy) => last = "Busy".to_string(),
                Ok(Response::ShuttingDown) => return Err(ClientError::ShuttingDown),
                Ok(response) => return Ok(response),
                Err(e) => {
                    // Anything that broke the transport — reset, torn or
                    // corrupt frame, timeout — leaves the stream state
                    // unknowable: drop the connection and redial on the
                    // next attempt.
                    last = e.to_string();
                    self.conn = None;
                    if e.kind() == io::ErrorKind::TimedOut && deadline.is_some() {
                        return Err(ClientError::Exhausted { attempts, last });
                    }
                    if e.kind() == io::ErrorKind::ConnectionRefused {
                        // The server is gone, not flaky; retrying cannot
                        // help and only delays the caller's error.
                        return Err(ClientError::Io(e));
                    }
                }
            }
            if attempts >= self.policy.max_attempts {
                break;
            }
            if let Some(at) = deadline {
                if Instant::now() >= at {
                    return Err(ClientError::Exhausted { attempts, last });
                }
            }
            self.retries += 1;
            std::thread::sleep(self.backoff(attempts));
        }
        Err(ClientError::Exhausted { attempts, last })
    }

    /// Capped exponential backoff with seeded jitter: half the nominal
    /// step is deterministic, the other half is drawn from the jitter
    /// stream, so retrying clients spread out instead of thundering.
    fn backoff(&mut self, retry: u32) -> Duration {
        let base = self.policy.base_backoff.max(Duration::from_micros(1));
        let nominal = base
            .saturating_mul(1u32 << retry.saturating_sub(1).min(16))
            .min(self.policy.max_backoff);
        let half = nominal / 2;
        let jitter_ns = if half.is_zero() {
            0
        } else {
            self.jitter.gen_range(0..=half.as_nanos() as u64)
        };
        half + Duration::from_nanos(jitter_ns)
    }

    /// A fresh nonzero open nonce from the seeded nonce stream.
    fn fresh_nonce(&mut self) -> u64 {
        loop {
            let nonce = self.nonces.next_u64();
            if nonce != 0 {
                return nonce;
            }
        }
    }

    /// Allocates the next sequence number for a session (stable across
    /// the retries of one logical call).
    fn next_seq(&mut self, session: u64) -> u64 {
        let seq = self.seqs.entry(session).or_insert(1);
        let allocated = *seq;
        *seq += 1;
        allocated
    }

    /// Wraps a session-scoped mutation in its sequence number and runs
    /// the retry engine.
    fn call_sequenced(&mut self, session: u64, inner: Request) -> Result<Response, ClientError> {
        let seq = self.next_seq(session);
        self.call(&Request::Sequenced {
            seq,
            inner: Box::new(inner),
        })
    }

    /// Runs a (nonce-)sequenced open-class request and decodes the
    /// `Opened` response.
    fn call_open(&mut self, inner: Request) -> Result<(u64, u32, PrewarmOutcome), ClientError> {
        let nonce = self.fresh_nonce();
        let request = Request::Sequenced {
            seq: nonce,
            inner: Box::new(inner),
        };
        match self.call(&request)? {
            Response::Opened {
                session,
                shard,
                prewarm,
            } => {
                self.seqs.insert(session, 1);
                Ok((session, shard, prewarm))
            }
            Response::Error { message } => Err(ClientError::Server(message)),
            response => Err(unexpected("Opened", &response)),
        }
    }

    /// Opens a session; returns `(session id, shard)`.
    ///
    /// # Errors
    ///
    /// Transport failures after retries, or a server-side error.
    pub fn open(&mut self, config: SessionConfig) -> Result<(u64, u32), ClientError> {
        let (session, shard, _) = self.open_detailed(config)?;
        Ok((session, shard))
    }

    /// Opens a session; returns `(session id, shard, prewarm outcome)`.
    /// The outcome is [`PrewarmOutcome::NotRequested`] unless the config
    /// set [`SessionConfig::prewarm`].
    ///
    /// # Errors
    ///
    /// Transport failures after retries, or a server-side error.
    pub fn open_detailed(
        &mut self,
        config: SessionConfig,
    ) -> Result<(u64, u32, PrewarmOutcome), ClientError> {
        self.call_open(Request::Open { config })
    }

    /// Opens a new session restored from a snapshot blob; returns
    /// `(session id, shard)`.
    ///
    /// # Errors
    ///
    /// Transport failures after retries, or a server-side error (bad
    /// checksum, version, …).
    pub fn restore(&mut self, blob: Vec<u8>) -> Result<(u64, u32), ClientError> {
        let (session, shard, _) = self.call_open(Request::Restore { blob })?;
        Ok((session, shard))
    }

    /// Advances an exec session by at most `fuel` blocks; returns
    /// `(done, stats so far)`.
    ///
    /// # Errors
    ///
    /// Transport failures after retries, or a server-side error (e.g. an
    /// exhausted budget).
    pub fn run(
        &mut self,
        session: u64,
        fuel: Option<u64>,
    ) -> Result<(bool, RunStats), ClientError> {
        match self.call_sequenced(session, Request::Run { session, fuel })? {
            Response::Ran { done, stats } => Ok((done, stats)),
            Response::Error { message } => Err(ClientError::Server(message)),
            response => Err(unexpected("Ran", &response)),
        }
    }

    /// Streams an event batch into an ingest session; returns lifetime
    /// totals `(events, paths, fragments)`.
    ///
    /// # Errors
    ///
    /// Transport failures after retries, or a server-side error.
    pub fn ingest(
        &mut self,
        session: u64,
        events: &[BlockEvent],
    ) -> Result<(u64, u64, u64), ClientError> {
        let request = Request::Ingest {
            session,
            events: events.to_vec(),
        };
        match self.call_sequenced(session, request)? {
            Response::Ingested {
                events,
                paths,
                fragments,
            } => Ok((events, paths, fragments)),
            Response::Error { message } => Err(ClientError::Server(message)),
            response => Err(unexpected("Ingested", &response)),
        }
    }

    /// Queries a session's status.
    ///
    /// # Errors
    ///
    /// Transport failures after retries, or a server-side error.
    pub fn query(&mut self, session: u64) -> Result<SessionStatus, ClientError> {
        match self.call(&Request::Query { session })? {
            Response::Status(status) => Ok(status),
            Response::Error { message } => Err(ClientError::Server(message)),
            response => Err(unexpected("Status", &response)),
        }
    }

    /// Captures a session into a sealed snapshot blob.
    ///
    /// # Errors
    ///
    /// Transport failures after retries, or a server-side error.
    pub fn snapshot(&mut self, session: u64) -> Result<Vec<u8>, ClientError> {
        match self.call(&Request::Snapshot { session })? {
            Response::SnapshotBlob { blob } => Ok(blob),
            Response::Error { message } => Err(ClientError::Server(message)),
            response => Err(unexpected("SnapshotBlob", &response)),
        }
    }

    /// Publishes a session's warm state into the fleet profile store;
    /// returns `(publishers, generation, aggregate fragments,
    /// quarantined)` after the merge.
    ///
    /// # Errors
    ///
    /// Transport failures after retries, or a server-side error (e.g.
    /// nothing learned yet).
    pub fn publish_profile(&mut self, session: u64) -> Result<(u64, u64, u64, bool), ClientError> {
        match self.call_sequenced(session, Request::PublishProfile { session })? {
            Response::ProfilePublished {
                publishers,
                generation,
                fragments,
                quarantined,
                ..
            } => Ok((publishers, generation, fragments, quarantined)),
            Response::Error { message } => Err(ClientError::Server(message)),
            response => Err(unexpected("ProfilePublished", &response)),
        }
    }

    /// Fetches the store's sealed aggregate profile blob for a
    /// configuration.
    ///
    /// # Errors
    ///
    /// Transport failures after retries, or a server-side error (no
    /// aggregate yet).
    pub fn fetch_profile(&mut self, config: SessionConfig) -> Result<Vec<u8>, ClientError> {
        match self.call(&Request::FetchProfile { config })? {
            Response::ProfileBlob { blob } => Ok(blob),
            Response::Error { message } => Err(ClientError::Server(message)),
            response => Err(unexpected("ProfileBlob", &response)),
        }
    }

    /// Flushes a session's fragment cache; returns the status after.
    ///
    /// # Errors
    ///
    /// Transport failures after retries, or a server-side error.
    pub fn flush(&mut self, session: u64) -> Result<SessionStatus, ClientError> {
        match self.call_sequenced(session, Request::Flush { session })? {
            Response::Status(status) => Ok(status),
            Response::Error { message } => Err(ClientError::Server(message)),
            response => Err(unexpected("Status", &response)),
        }
    }

    /// Closes a session; returns the blocks it executed.
    ///
    /// # Errors
    ///
    /// Transport failures after retries, or a server-side error.
    pub fn close(&mut self, session: u64) -> Result<u64, ClientError> {
        let result = match self.call_sequenced(session, Request::Close { session })? {
            Response::Closed { blocks } => Ok(blocks),
            Response::Error { message } => Err(ClientError::Server(message)),
            response => Err(unexpected("Closed", &response)),
        };
        self.seqs.remove(&session);
        result
    }

    /// Fetches whole-server counters (live sessions, lifetime totals,
    /// connection counts, restart/re-admission totals, peak RSS).
    ///
    /// # Errors
    ///
    /// Transport failures after retries, or a server-side error.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::ServerStats(stats) => Ok(stats),
            Response::Error { message } => Err(ClientError::Server(message)),
            response => Err(unexpected("ServerStats", &response)),
        }
    }

    /// Asks the server to shut down; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// I/O failures or an unexpected response.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            response => Err(unexpected("ShuttingDown", &response)),
        }
    }
}
