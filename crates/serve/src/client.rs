//! A blocking TCP client for the serving protocol: one connection, one
//! request/response in flight at a time.
//!
//! [`Client::request`] is the raw call — it surfaces every response,
//! including [`Response::Busy`]. The typed wrappers ([`Client::open`],
//! [`Client::run`], …) retry `Busy` with a short sleep, because for a
//! client the right reaction to backpressure is almost always "wait and
//! resubmit"; use `request` directly to observe backpressure instead.

use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use hotpath_vm::{BlockEvent, RunStats};

use crate::protocol::{read_frame, write_frame, PrewarmOutcome, Request, Response, ServerStats};
use crate::session::{SessionConfig, SessionStatus};

/// Pause between retries when the server answers `Busy`.
const BUSY_BACKOFF: Duration = Duration::from_millis(1);

/// A connected client.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn unexpected(what: &str, response: &Response) -> io::Error {
    io::Error::other(format!("expected {what}, server sent {response:?}"))
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Sends one request and reads the response. No retries: `Busy`
    /// comes back as-is.
    ///
    /// # Errors
    ///
    /// I/O failures, or a malformed/truncated response stream.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &request.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(|| {
            io::Error::new(io::ErrorKind::UnexpectedEof, "server closed the connection")
        })?;
        Response::decode(&payload)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Like [`Client::request`], but waits out `Busy` responses.
    fn request_patient(&mut self, request: &Request) -> io::Result<Response> {
        loop {
            match self.request(request)? {
                Response::Busy => std::thread::sleep(BUSY_BACKOFF),
                response => return Ok(response),
            }
        }
    }

    /// Opens a session; returns `(session id, shard)`.
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side error.
    pub fn open(&mut self, config: SessionConfig) -> io::Result<(u64, u32)> {
        let (session, shard, _) = self.open_detailed(config)?;
        Ok((session, shard))
    }

    /// Opens a session; returns `(session id, shard, prewarm outcome)`.
    /// The outcome is [`PrewarmOutcome::NotRequested`] unless the config
    /// set [`SessionConfig::prewarm`].
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side error.
    pub fn open_detailed(
        &mut self,
        config: SessionConfig,
    ) -> io::Result<(u64, u32, PrewarmOutcome)> {
        match self.request_patient(&Request::Open { config })? {
            Response::Opened {
                session,
                shard,
                prewarm,
            } => Ok((session, shard, prewarm)),
            response => Err(unexpected("Opened", &response)),
        }
    }

    /// Advances an exec session by at most `fuel` blocks; returns
    /// `(done, stats so far)`.
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side error (e.g. an exhausted budget).
    pub fn run(&mut self, session: u64, fuel: Option<u64>) -> io::Result<(bool, RunStats)> {
        match self.request_patient(&Request::Run { session, fuel })? {
            Response::Ran { done, stats } => Ok((done, stats)),
            response => Err(unexpected("Ran", &response)),
        }
    }

    /// Streams an event batch into an ingest session; returns lifetime
    /// totals `(events, paths, fragments)`.
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side error.
    pub fn ingest(&mut self, session: u64, events: &[BlockEvent]) -> io::Result<(u64, u64, u64)> {
        let request = Request::Ingest {
            session,
            events: events.to_vec(),
        };
        match self.request_patient(&request)? {
            Response::Ingested {
                events,
                paths,
                fragments,
            } => Ok((events, paths, fragments)),
            response => Err(unexpected("Ingested", &response)),
        }
    }

    /// Queries a session's status.
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side error.
    pub fn query(&mut self, session: u64) -> io::Result<SessionStatus> {
        match self.request_patient(&Request::Query { session })? {
            Response::Status(status) => Ok(status),
            response => Err(unexpected("Status", &response)),
        }
    }

    /// Captures a session into a sealed snapshot blob.
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side error.
    pub fn snapshot(&mut self, session: u64) -> io::Result<Vec<u8>> {
        match self.request_patient(&Request::Snapshot { session })? {
            Response::SnapshotBlob { blob } => Ok(blob),
            response => Err(unexpected("SnapshotBlob", &response)),
        }
    }

    /// Opens a new session restored from a snapshot blob; returns
    /// `(session id, shard)`.
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side error (bad checksum, version, …).
    pub fn restore(&mut self, blob: Vec<u8>) -> io::Result<(u64, u32)> {
        match self.request_patient(&Request::Restore { blob })? {
            Response::Opened { session, shard, .. } => Ok((session, shard)),
            response => Err(unexpected("Opened", &response)),
        }
    }

    /// Publishes a session's warm state into the fleet profile store;
    /// returns `(publishers, generation, aggregate fragments)` after the
    /// merge.
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side error (e.g. nothing learned yet).
    pub fn publish_profile(&mut self, session: u64) -> io::Result<(u64, u64, u64)> {
        match self.request_patient(&Request::PublishProfile { session })? {
            Response::ProfilePublished {
                publishers,
                generation,
                fragments,
                ..
            } => Ok((publishers, generation, fragments)),
            response => Err(unexpected("ProfilePublished", &response)),
        }
    }

    /// Fetches the store's sealed aggregate profile blob for a
    /// configuration.
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side error (no aggregate yet).
    pub fn fetch_profile(&mut self, config: SessionConfig) -> io::Result<Vec<u8>> {
        match self.request_patient(&Request::FetchProfile { config })? {
            Response::ProfileBlob { blob } => Ok(blob),
            response => Err(unexpected("ProfileBlob", &response)),
        }
    }

    /// Flushes a session's fragment cache; returns the status after.
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side error.
    pub fn flush(&mut self, session: u64) -> io::Result<SessionStatus> {
        match self.request_patient(&Request::Flush { session })? {
            Response::Status(status) => Ok(status),
            response => Err(unexpected("Status", &response)),
        }
    }

    /// Closes a session; returns the blocks it executed.
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side error.
    pub fn close(&mut self, session: u64) -> io::Result<u64> {
        match self.request_patient(&Request::Close { session })? {
            Response::Closed { blocks } => Ok(blocks),
            response => Err(unexpected("Closed", &response)),
        }
    }

    /// Fetches whole-server counters (live sessions, lifetime totals,
    /// connection counts, peak RSS).
    ///
    /// # Errors
    ///
    /// I/O failures or a server-side error.
    pub fn stats(&mut self) -> io::Result<ServerStats> {
        match self.request_patient(&Request::Stats)? {
            Response::ServerStats(stats) => Ok(stats),
            response => Err(unexpected("ServerStats", &response)),
        }
    }

    /// Asks the server to shut down; returns once acknowledged.
    ///
    /// # Errors
    ///
    /// I/O failures or an unexpected response.
    pub fn shutdown_server(&mut self) -> io::Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            response => Err(unexpected("ShuttingDown", &response)),
        }
    }
}
