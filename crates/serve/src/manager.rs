//! The [`SessionManager`]: routes requests to a sharded pool of worker
//! threads and is itself the in-process serving API.
//!
//! Sessions are assigned round-robin-by-id (`shard = id % shards`), so
//! routing is a pure function of the session id and every request for a
//! session lands on the thread that owns it. Admission control is
//! layered:
//!
//! * **queue bound** — each shard's queue holds at most
//!   [`ServeConfig::queue_depth`] jobs; a full queue returns
//!   [`Response::Busy`] immediately (`try_send`, never blocking the
//!   caller);
//! * **session table bound** — a shard at
//!   [`ServeConfig::max_sessions_per_shard`] refuses new opens with
//!   `Busy`;
//! * **fuel budgets** — per-session block budgets fail `run` requests
//!   once exhausted (see [`SessionConfig::fuel_budget`]).
//!
//! [`SessionConfig::fuel_budget`]: crate::SessionConfig::fuel_budget

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::Mutex;

use hotpath_telemetry as telemetry;

use crate::protocol::{Request, Response};
use crate::session::SessionConfig;
use crate::shard::{spawn, Job, ShardRequest};
use crate::snapshot::SessionSnapshot;

/// Pool shape and admission-control bounds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ServeConfig {
    /// Worker threads; sessions are partitioned across them by id.
    pub shards: u32,
    /// Jobs a shard queues before refusing with `Busy`.
    pub queue_depth: usize,
    /// Live sessions a shard holds before refusing opens with `Busy`.
    pub max_sessions_per_shard: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            queue_depth: 32,
            max_sessions_per_shard: 64,
        }
    }
}

/// The sharded session pool. Cheap to share (`Arc`) across connection
/// threads; every method takes `&self`.
#[derive(Debug)]
pub struct SessionManager {
    config: ServeConfig,
    shards: Vec<std::sync::mpsc::SyncSender<Job>>,
    next_id: AtomicU64,
    down: AtomicBool,
    /// Join handles drained at shutdown (kept apart from the senders so
    /// `request` never takes a lock).
    joins: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl SessionManager {
    /// Spawns the shard pool.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero or a queue depth of zero is
    /// requested (a rendezvous queue would make every request `Busy`).
    pub fn new(config: ServeConfig) -> SessionManager {
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.queue_depth > 0, "queue depth must be positive");
        let mut shards = Vec::with_capacity(config.shards as usize);
        let mut joins = Vec::with_capacity(config.shards as usize);
        for shard_id in 0..config.shards {
            let (sender, thread) =
                spawn(shard_id, config.queue_depth, config.max_sessions_per_shard);
            shards.push(sender);
            joins.push(thread);
        }
        SessionManager {
            config,
            shards,
            next_id: AtomicU64::new(1),
            down: AtomicBool::new(false),
            joins: Mutex::new(joins),
        }
    }

    /// Number of shards in the pool.
    pub fn shards(&self) -> u32 {
        self.config.shards
    }

    /// The pool configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Serves one request — the in-process API and the TCP front-end's
    /// single entry point. Never blocks on a full queue: backpressure
    /// surfaces as [`Response::Busy`].
    pub fn request(&self, request: Request) -> Response {
        if self.down.load(Ordering::Acquire) {
            return Response::ShuttingDown;
        }
        match request {
            Request::Open { config } => self.open(config),
            Request::Restore { blob } => match SessionSnapshot::decode(&blob) {
                Ok(snapshot) => {
                    let bytes = blob.len() as u64;
                    let fragments = snapshot.warm.fragments.len() as u64;
                    let label = snapshot.config.label();
                    let response = self.open_routed(|id| ShardRequest::Restore {
                        id,
                        snapshot: Box::new(snapshot.clone()),
                    });
                    if let Response::Opened { session, shard } = response {
                        telemetry::emit!(telemetry::Event::SessionOpened {
                            session,
                            shard,
                            workload: label,
                        });
                        telemetry::emit!(telemetry::Event::SnapshotRestored {
                            session,
                            bytes,
                            fragments,
                        });
                    }
                    response
                }
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
            Request::Run { session, fuel } => {
                self.routed(session, ShardRequest::Run { id: session, fuel })
            }
            Request::Ingest { session, events } => self.routed(
                session,
                ShardRequest::Ingest {
                    id: session,
                    events,
                },
            ),
            Request::Query { session } => self.routed(session, ShardRequest::Query { id: session }),
            Request::Snapshot { session } => {
                let response = self.routed(session, ShardRequest::Snapshot { id: session });
                if let Response::SnapshotBlob { blob } = &response {
                    if let Ok(snapshot) = SessionSnapshot::decode(blob) {
                        telemetry::emit!(telemetry::Event::SnapshotSaved {
                            session,
                            bytes: blob.len() as u64,
                            fragments: snapshot.warm.fragments.len() as u64,
                        });
                    }
                }
                response
            }
            Request::Flush { session } => self.routed(session, ShardRequest::Flush { id: session }),
            Request::Close { session } => {
                let response = self.routed(session, ShardRequest::Close { id: session });
                if let Response::Closed { blocks } = response {
                    telemetry::emit!(telemetry::Event::SessionClosed {
                        session,
                        shard: self.shard_of(session),
                        blocks,
                    });
                }
                response
            }
            // Process lifecycle belongs to the host (TCP server or the
            // owner of this manager), not to a shard.
            Request::Shutdown => Response::ShuttingDown,
        }
    }

    /// Opens a session with a fresh id.
    fn open(&self, config: SessionConfig) -> Response {
        let label = config.label();
        let response = self.open_routed(|id| ShardRequest::Open { id, config });
        if let Response::Opened { session, shard } = response {
            telemetry::emit!(telemetry::Event::SessionOpened {
                session,
                shard,
                workload: label,
            });
        }
        response
    }

    fn open_routed(&self, make: impl FnOnce(u64) -> ShardRequest) -> Response {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.routed(id, make(id))
    }

    fn shard_of(&self, session: u64) -> u32 {
        (session % u64::from(self.config.shards)) as u32
    }

    /// Sends a routed request to its shard and waits for the reply.
    fn routed(&self, session: u64, request: ShardRequest) -> Response {
        let shard = self.shard_of(session);
        let (reply_tx, reply_rx) = sync_channel(1);
        let job = Job::Request {
            request,
            reply: reply_tx,
        };
        match self.shards[shard as usize].try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                telemetry::emit!(telemetry::Event::ShardBusy { shard });
                return Response::Busy;
            }
            Err(TrySendError::Disconnected(_)) => return Response::ShuttingDown,
        }
        match reply_rx.recv() {
            Ok(response) => {
                if matches!(response, Response::Busy) {
                    telemetry::emit!(telemetry::Event::ShardBusy { shard });
                }
                response
            }
            Err(_) => Response::ShuttingDown,
        }
    }

    /// Stops every shard and joins its thread. Idempotent; requests
    /// arriving afterwards get [`Response::ShuttingDown`].
    pub fn shutdown(&self) {
        if self.down.swap(true, Ordering::AcqRel) {
            return;
        }
        for sender in &self.shards {
            // Blocking send: shutdown must not be droppable by a full
            // queue; the shard drains ahead of it and then exits.
            let _ = sender.send(Job::Shutdown);
        }
        let joins = std::mem::take(&mut *self.joins.lock().expect("join set poisoned"));
        for handle in joins {
            let _ = handle.join();
        }
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}
