//! The [`SessionManager`]: routes requests to a sharded pool of worker
//! threads and is itself the in-process serving API.
//!
//! Sessions are assigned round-robin-by-id (`shard = id % shards`), so
//! routing is a pure function of the session id and every request for a
//! session lands on the thread that owns it. Admission control is
//! layered:
//!
//! * **queue bound** — each shard's queue holds at most
//!   [`ServeConfig::queue_depth`] jobs; a full queue returns
//!   [`Response::Busy`] immediately (`try_send`, never blocking the
//!   caller);
//! * **session table bound** — a shard at
//!   [`ServeConfig::max_sessions_per_shard`] refuses new opens with
//!   `Busy`;
//! * **fuel budgets** — per-session block budgets fail `run` requests
//!   once exhausted (see [`SessionConfig::fuel_budget`]).
//!
//! Request handling is split into three phases so both front-ends share
//! one code path: [`prepare`](SessionManager::prepare) resolves routing
//! and pre-dispatch work on the caller's thread,
//! [`submit`](SessionManager::submit) enqueues without ever blocking,
//! and [`finish`](SessionManager::finish) emits the response-dependent
//! telemetry. The blocking in-process API ([`request`]) strings the
//! three together around a rendezvous channel; the reactor front-end
//! runs `prepare`/`submit` at dispatch and `finish` when the completion
//! comes back, never parking its event loop.
//!
//! [`request`]: SessionManager::request
//! [`SessionConfig::fuel_budget`]: crate::SessionConfig::fuel_budget

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};

use hotpath_faultinject::FaultPlan;
use hotpath_selfprof as selfprof;
use hotpath_telemetry as telemetry;

use crate::profile_store::{ProfileKey, ProfileStore, ProfileStoreConfig, SessionProfile};
use crate::protocol::{PrewarmOutcome, Request, Response, ServerStats};
use crate::shard::{spawn, Job, ReplyTo, ShardCounters, ShardRequest};
use crate::snapshot::SessionSnapshot;

/// Pool shape and admission-control bounds.
// `FaultPlan` holds per-point `f64` rates, so `chaos` rules out `Eq`.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct ServeConfig {
    /// Worker threads; sessions are partitioned across them by id.
    pub shards: u32,
    /// Jobs a shard queues before refusing with `Busy`.
    pub queue_depth: usize,
    /// Live sessions a shard holds before refusing opens with `Busy`.
    pub max_sessions_per_shard: usize,
    /// Reactor event-loop threads for the TCP front-end (ignored by the
    /// in-process API and the blocking fallback front-end).
    pub reactors: u32,
    /// Soft per-connection write-buffer bound: a connection holding more
    /// than this many unflushed response bytes answers new requests with
    /// [`Response::Busy`] until the peer drains it. The hard bound (4x)
    /// stops reading from the socket entirely.
    pub write_buf_limit: usize,
    /// How long a draining front-end waits for in-flight work before
    /// closing connections that still owe responses. Both fronts honor
    /// it: the reactor converts it to drain ticks, the blocking front
    /// bounds its per-connection read timeout with it.
    pub drain_deadline_ms: u64,
    /// Fault plan armed across the serve stack (wire seams on both
    /// fronts, shard panic injection, publish poisoning). `None` — the
    /// default — compiles the hooks in but leaves every probe one
    /// untaken branch.
    pub chaos: Option<FaultPlan>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            queue_depth: 32,
            max_sessions_per_shard: 64,
            reactors: 1,
            write_buf_limit: 256 << 10,
            drain_deadline_ms: 5_000,
            chaos: None,
        }
    }
}

/// Pre-dispatch outcome: either the response is already known, or the
/// request routes to a shard.
#[derive(Debug)]
pub(crate) enum Prepared {
    /// No shard involved — answer immediately.
    Immediate(Response),
    /// Routed: submit `shard_request` for `session`, then pass `note`
    /// to [`SessionManager::finish`] with the eventual response.
    Route {
        session: u64,
        shard_request: ShardRequest,
        note: RequestNote,
    },
}

/// What [`SessionManager::finish`] needs to emit response-dependent
/// telemetry once a routed request completes. Carried by the caller
/// (blocking API: on the stack; reactor: in the connection's in-flight
/// slot) so completion handling stays thread-agnostic.
#[derive(Debug)]
pub(crate) enum RequestNote {
    /// Nothing to emit beyond the generic busy accounting.
    Plain,
    /// A fresh open: emit `SessionOpened` on success.
    Open { workload: &'static str },
    /// A restore: emit `SessionOpened` + `SnapshotRestored` on success.
    Restore {
        workload: &'static str,
        bytes: u64,
        fragments: u64,
    },
    /// A snapshot capture: emit `SnapshotSaved` with the blob's size.
    Snapshot { session: u64 },
    /// A close: emit `SessionClosed` on success.
    Close { session: u64 },
    /// A profile publish: emit `ProfilePublished` + `ProfileMerged` on
    /// success.
    Publish { session: u64 },
    /// A sequenced (idempotent) mutation: run the wrapped note, then
    /// record the outcome in the replay cache under `key`.
    Sequenced {
        seq: u64,
        key: DedupKey,
        inner: Box<RequestNote>,
    },
}

/// Where a sequenced request's outcome is cached for replay.
#[derive(Clone, Copy, Debug)]
pub(crate) enum DedupKey {
    /// Sequenced `Open`/`Restore`: the sequence number doubles as a
    /// client-chosen nonce, so a re-sent open lands on the cached
    /// `Opened` instead of leaking a second session.
    Nonce(u64),
    /// Session-scoped mutation: dedup on the session's last sequence
    /// number.
    Session(u64),
}

/// Replay cache for sequenced requests. Only sequenced traffic touches
/// it — clients that never wrap requests never take the lock, keeping
/// the hot unsequenced path cost-free. Both maps are FIFO-bounded so a
/// long-lived server cannot grow without bound.
#[derive(Debug, Default)]
struct DedupState {
    /// Nonce → cached `Opened` (or deterministic failure) response.
    opens: HashMap<u64, Response>,
    open_order: VecDeque<u64>,
    /// Session → (last seq, cached response for that seq).
    sessions: HashMap<u64, (u64, Response)>,
    session_order: VecDeque<u64>,
}

/// Distinct open nonces remembered for replay.
const DEDUP_OPEN_CAP: usize = 1024;
/// Distinct sessions with a remembered last-seq outcome.
const DEDUP_SESSION_CAP: usize = 4096;

/// The sharded session pool. Cheap to share (`Arc`) across connection
/// threads; every method takes `&self`.
#[derive(Debug)]
pub struct SessionManager {
    config: ServeConfig,
    shards: Vec<SyncSender<Job>>,
    counters: Vec<Arc<ShardCounters>>,
    store: Arc<ProfileStore>,
    next_id: AtomicU64,
    down: AtomicBool,
    /// Replay cache for sequenced requests; untouched by unsequenced
    /// traffic.
    dedup: Mutex<DedupState>,
    /// Join handles drained at shutdown (kept apart from the senders so
    /// `request` never takes a lock).
    joins: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl SessionManager {
    /// Spawns the shard pool with the default profile-store shape.
    ///
    /// # Panics
    ///
    /// Panics if `config.shards` is zero or a queue depth of zero is
    /// requested (a rendezvous queue would make every request `Busy`).
    pub fn new(config: ServeConfig) -> SessionManager {
        SessionManager::with_profile_config(config, ProfileStoreConfig::default())
    }

    /// Spawns the shard pool with an explicit profile-store shape
    /// (merge policies, decay quantum, tie-break seed).
    ///
    /// # Panics
    ///
    /// As [`SessionManager::new`], plus a zero epoch quantum.
    pub fn with_profile_config(
        config: ServeConfig,
        profile_config: ProfileStoreConfig,
    ) -> SessionManager {
        assert!(config.shards > 0, "need at least one shard");
        assert!(config.queue_depth > 0, "queue depth must be positive");
        let store = Arc::new(ProfileStore::new(profile_config));
        let mut shards = Vec::with_capacity(config.shards as usize);
        let mut counters = Vec::with_capacity(config.shards as usize);
        let mut joins = Vec::with_capacity(config.shards as usize);
        for shard_id in 0..config.shards {
            let (sender, shard_counters, thread) = spawn(
                shard_id,
                config.queue_depth,
                config.max_sessions_per_shard,
                Arc::clone(&store),
                // Each shard gets its own deterministic sub-stream so
                // panic schedules differ per shard but replay per seed.
                config.chaos.map(|plan| plan.derive(u64::from(shard_id))),
            );
            shards.push(sender);
            counters.push(shard_counters);
            joins.push(thread);
        }
        SessionManager {
            config,
            shards,
            counters,
            store,
            next_id: AtomicU64::new(1),
            down: AtomicBool::new(false),
            dedup: Mutex::new(DedupState::default()),
            joins: Mutex::new(joins),
        }
    }

    /// The fleet profile store shared by every shard.
    pub fn profile_store(&self) -> &ProfileStore {
        &self.store
    }

    /// Number of shards in the pool.
    pub fn shards(&self) -> u32 {
        self.config.shards
    }

    /// The pool configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Serves one request — the in-process API and the blocking
    /// front-end's single entry point. Never blocks on a full queue:
    /// backpressure surfaces as [`Response::Busy`].
    pub fn request(&self, request: Request) -> Response {
        match self.prepare(request) {
            Prepared::Immediate(response) => response,
            Prepared::Route {
                session,
                shard_request,
                note,
            } => {
                let shard = self.shard_of(session);
                let (reply_tx, reply_rx) = sync_channel(1);
                let response = match self.submit(session, shard_request, ReplyTo::Sync(reply_tx)) {
                    Ok(()) => reply_rx.recv().unwrap_or(Response::ShuttingDown),
                    Err(refused) => refused,
                };
                self.finish(shard, &note, &response);
                response
            }
        }
    }

    /// Phase one: resolve routing and pre-dispatch work (id assignment,
    /// snapshot decoding) on the caller's thread.
    pub(crate) fn prepare(&self, request: Request) -> Prepared {
        if self.down.load(Ordering::Acquire) {
            return Prepared::Immediate(Response::ShuttingDown);
        }
        match request {
            Request::Open { config } => {
                let workload = config.label();
                self.route_open(
                    |id| ShardRequest::Open { id, config },
                    RequestNote::Open { workload },
                )
            }
            Request::Restore { blob } => match selfprof::stage!(
                selfprof::Stage::SnapshotRestore,
                SessionSnapshot::decode(&blob)
            ) {
                Ok(snapshot) => {
                    let note = RequestNote::Restore {
                        workload: snapshot.config.label(),
                        bytes: blob.len() as u64,
                        fragments: snapshot.warm.fragments.len() as u64,
                    };
                    self.route_open(
                        |id| ShardRequest::Restore {
                            id,
                            snapshot: Box::new(snapshot),
                        },
                        note,
                    )
                }
                Err(e) => Prepared::Immediate(Response::Error {
                    message: e.to_string(),
                }),
            },
            Request::Run { session, fuel } => Prepared::Route {
                session,
                shard_request: ShardRequest::Run { id: session, fuel },
                note: RequestNote::Plain,
            },
            Request::Ingest { session, events } => Prepared::Route {
                session,
                shard_request: ShardRequest::Ingest {
                    id: session,
                    events,
                },
                note: RequestNote::Plain,
            },
            Request::Query { session } => Prepared::Route {
                session,
                shard_request: ShardRequest::Query { id: session },
                note: RequestNote::Plain,
            },
            Request::Snapshot { session } => Prepared::Route {
                session,
                shard_request: ShardRequest::Snapshot { id: session },
                note: RequestNote::Snapshot { session },
            },
            Request::Flush { session } => Prepared::Route {
                session,
                shard_request: ShardRequest::Flush { id: session },
                note: RequestNote::Plain,
            },
            Request::Close { session } => Prepared::Route {
                session,
                shard_request: ShardRequest::Close { id: session },
                note: RequestNote::Close { session },
            },
            Request::Stats => Prepared::Immediate(Response::ServerStats(self.server_stats())),
            Request::PublishProfile { session } => Prepared::Route {
                session,
                shard_request: ShardRequest::Publish { id: session },
                note: RequestNote::Publish { session },
            },
            // Pure store read — answered on the caller's thread, no
            // shard involved.
            Request::FetchProfile { config } => {
                let key = ProfileKey::of(&config);
                Prepared::Immediate(match self.store.fetch(&key) {
                    Some(aggregate) => Response::ProfileBlob {
                        blob: SessionProfile {
                            key,
                            epoch: aggregate.epoch,
                            warm: aggregate.warm.clone(),
                        }
                        .encode(),
                    },
                    None => Response::Error {
                        message: format!("no aggregate profile for {}", key.label()),
                    },
                })
            }
            Request::Sequenced { seq, inner } => {
                let key = match inner.sequenced_session() {
                    Some(session) => Some(DedupKey::Session(session)),
                    None => match *inner {
                        Request::Open { .. } | Request::Restore { .. } => {
                            Some(DedupKey::Nonce(seq))
                        }
                        _ => None,
                    },
                };
                // Sequencing a read adds nothing — serve it as if
                // unwrapped.
                let Some(key) = key else {
                    return self.prepare(*inner);
                };
                if let Some(cached) = self.replay(key, seq) {
                    return Prepared::Immediate(cached);
                }
                match self.prepare(*inner) {
                    Prepared::Route {
                        session,
                        shard_request,
                        note,
                    } => Prepared::Route {
                        session,
                        shard_request,
                        note: RequestNote::Sequenced {
                            seq,
                            key,
                            inner: Box::new(note),
                        },
                    },
                    immediate => immediate,
                }
            }
            // Process lifecycle belongs to the host (TCP server or the
            // owner of this manager), not to a shard.
            Request::Shutdown => Prepared::Immediate(Response::ShuttingDown),
        }
    }

    /// Checks the replay cache for a sequenced request. A hit means the
    /// mutation already executed and the client merely lost the
    /// response; a stale sequence number (client went backwards) is
    /// answered with an error rather than re-executed.
    fn replay(&self, key: DedupKey, seq: u64) -> Option<Response> {
        let dedup = self.dedup.lock().expect("dedup cache poisoned");
        match key {
            DedupKey::Nonce(nonce) => dedup.opens.get(&nonce).cloned(),
            DedupKey::Session(session) => {
                let &(last, ref cached) = dedup.sessions.get(&session)?;
                if seq == last {
                    Some(cached.clone())
                } else if seq < last {
                    Some(Response::Error {
                        message: format!(
                            "stale sequence number {seq} for session {session} (last {last})"
                        ),
                    })
                } else {
                    None
                }
            }
        }
    }

    /// Records a sequenced request's outcome for replay. Refusals
    /// (`Busy`/`ShuttingDown`) and errors are not outcomes: the shard
    /// either never executed the mutation or rejected it without
    /// mutating, so a retried seq must re-execute.
    fn record(&self, key: DedupKey, seq: u64, response: &Response) {
        if matches!(
            response,
            Response::Busy | Response::ShuttingDown | Response::Error { .. }
        ) {
            return;
        }
        let mut dedup = self.dedup.lock().expect("dedup cache poisoned");
        match key {
            DedupKey::Nonce(nonce) => {
                if dedup.opens.insert(nonce, response.clone()).is_none() {
                    dedup.open_order.push_back(nonce);
                    if dedup.open_order.len() > DEDUP_OPEN_CAP {
                        if let Some(evicted) = dedup.open_order.pop_front() {
                            dedup.opens.remove(&evicted);
                        }
                    }
                }
            }
            DedupKey::Session(session) => {
                if dedup
                    .sessions
                    .insert(session, (seq, response.clone()))
                    .is_none()
                {
                    dedup.session_order.push_back(session);
                    if dedup.session_order.len() > DEDUP_SESSION_CAP {
                        if let Some(evicted) = dedup.session_order.pop_front() {
                            dedup.sessions.remove(&evicted);
                        }
                    }
                }
            }
        }
    }

    fn route_open(&self, make: impl FnOnce(u64) -> ShardRequest, note: RequestNote) -> Prepared {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        Prepared::Route {
            session: id,
            shard_request: make(id),
            note,
        }
    }

    pub(crate) fn shard_of(&self, session: u64) -> u32 {
        (session % u64::from(self.config.shards)) as u32
    }

    /// Phase two: enqueue a routed request without blocking. `Err` is
    /// the refusal to hand straight back (`Busy` on a full queue,
    /// `ShuttingDown` on a dead shard); `Ok` means `reply` will
    /// eventually receive the response.
    // The `Err` is a ready-to-send refusal `Response`; boxing it would
    // push an allocation onto the backpressure path, which must stay
    // allocation-free.
    #[allow(clippy::result_large_err)]
    pub(crate) fn submit(
        &self,
        session: u64,
        shard_request: ShardRequest,
        reply: ReplyTo,
    ) -> Result<(), Response> {
        let shard = self.shard_of(session);
        let job = Job::Request {
            request: shard_request,
            reply,
        };
        match self.shards[shard as usize].try_send(job) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(_)) => {
                telemetry::emit!(telemetry::Event::ShardBusy { shard });
                Err(Response::Busy)
            }
            Err(TrySendError::Disconnected(_)) => Err(Response::ShuttingDown),
        }
    }

    /// Phase three: response-dependent accounting, on whichever thread
    /// observed the completion.
    pub(crate) fn finish(&self, shard: u32, note: &RequestNote, response: &Response) {
        if matches!(response, Response::Busy) {
            telemetry::emit!(telemetry::Event::ShardBusy { shard });
        }
        match note {
            RequestNote::Plain => {}
            RequestNote::Open { workload } => {
                if let Response::Opened {
                    session,
                    shard,
                    prewarm,
                } = response
                {
                    telemetry::emit!(telemetry::Event::SessionOpened {
                        session: *session,
                        shard: *shard,
                        workload,
                    });
                    match prewarm {
                        PrewarmOutcome::NotRequested => {}
                        PrewarmOutcome::Warmed {
                            fragments,
                            counters,
                        } => {
                            telemetry::emit!(telemetry::Event::SessionPrewarmed {
                                session: *session,
                                fragments: *fragments,
                                counters: *counters,
                            });
                        }
                        PrewarmOutcome::Rejected { reason } => {
                            telemetry::emit!(telemetry::Event::PrewarmRejected {
                                session: *session,
                                reason,
                            });
                        }
                    }
                }
            }
            RequestNote::Restore {
                workload,
                bytes,
                fragments,
            } => {
                if let Response::Opened { session, shard, .. } = response {
                    telemetry::emit!(telemetry::Event::SessionOpened {
                        session: *session,
                        shard: *shard,
                        workload,
                    });
                    telemetry::emit!(telemetry::Event::SnapshotRestored {
                        session: *session,
                        bytes: *bytes,
                        fragments: *fragments,
                    });
                }
            }
            RequestNote::Snapshot { session } => {
                if let Response::SnapshotBlob { blob } = response {
                    if let Ok(snapshot) = SessionSnapshot::decode(blob) {
                        telemetry::emit!(telemetry::Event::SnapshotSaved {
                            session: *session,
                            bytes: blob.len() as u64,
                            fragments: snapshot.warm.fragments.len() as u64,
                        });
                    }
                }
            }
            RequestNote::Close { session } => {
                if let Response::Closed { blocks } = response {
                    telemetry::emit!(telemetry::Event::SessionClosed {
                        session: *session,
                        shard,
                        blocks: *blocks,
                    });
                }
            }
            RequestNote::Publish { session } => {
                if let Response::ProfilePublished {
                    workload,
                    publishers,
                    generation,
                    fragments,
                    epoch,
                    quarantined,
                } = response
                {
                    if *quarantined {
                        telemetry::emit!(telemetry::Event::ProfileQuarantined {
                            session: *session,
                            workload,
                            fragments: *fragments,
                        });
                    } else {
                        telemetry::emit!(telemetry::Event::ProfilePublished {
                            session: *session,
                            fragments: *fragments,
                            epoch: *epoch,
                        });
                        telemetry::emit!(telemetry::Event::ProfileMerged {
                            workload,
                            publishers: *publishers,
                            generation: *generation,
                        });
                    }
                }
            }
            RequestNote::Sequenced { seq, key, inner } => {
                self.finish(shard, inner, response);
                self.record(*key, *seq, response);
            }
        }
    }

    /// Whole-server counters, summed across shards. The connection
    /// fields are zero here; the reactor front-end overlays its own
    /// counts before answering [`Request::Stats`] over TCP.
    pub fn server_stats(&self) -> ServerStats {
        let store_stats = self.store.stats();
        let mut stats = ServerStats {
            rss_max_bytes: max_rss(),
            profiles_held: store_stats.profiles_held,
            profile_bytes: store_stats.bytes,
            profiles_quarantined: store_stats.quarantined,
            ..ServerStats::default()
        };
        for counters in &self.counters {
            stats.live_sessions += counters.live.load(Ordering::Relaxed);
            stats.sessions_opened += counters.opened.load(Ordering::Relaxed);
            stats.sessions_closed += counters.closed.load(Ordering::Relaxed);
            stats.sessions_prewarmed += counters.prewarmed.load(Ordering::Relaxed);
            stats.shards_restarted += counters.restarted.load(Ordering::Relaxed);
            stats.sessions_readmitted += counters.readmitted.load(Ordering::Relaxed);
            // Refresh age: how many merges behind the store the
            // staleness-worst shard cache is. Shards that have never
            // consulted the store report the full generation lag.
            let shard_gen = counters.profile_gen.load(Ordering::Acquire);
            stats.profile_refresh_age = stats
                .profile_refresh_age
                .max(store_stats.generation.saturating_sub(shard_gen));
        }
        stats
    }

    /// Snapshots every resident session across every shard, sorted by
    /// session id. Used by the drain path to park warm state on disk;
    /// returns empty once the pool is shut down.
    pub fn snapshot_all(&self) -> Vec<(u64, Vec<u8>)> {
        if self.down.load(Ordering::Acquire) {
            return Vec::new();
        }
        let mut replies = Vec::with_capacity(self.shards.len());
        for sender in &self.shards {
            let (reply_tx, reply_rx) = sync_channel(1);
            // Blocking send: drain must not be droppable by a full
            // queue; the shard processes queued work ahead of it.
            if sender.send(Job::SnapshotAll { reply: reply_tx }).is_ok() {
                replies.push(reply_rx);
            }
        }
        let mut blobs: Vec<(u64, Vec<u8>)> = replies
            .into_iter()
            .filter_map(|rx| rx.recv().ok())
            .flatten()
            .collect();
        blobs.sort_by_key(|&(id, _)| id);
        blobs
    }

    /// Stops every shard and joins its thread. Idempotent; requests
    /// arriving afterwards get [`Response::ShuttingDown`].
    pub fn shutdown(&self) {
        if self.down.swap(true, Ordering::AcqRel) {
            return;
        }
        for sender in &self.shards {
            // Blocking send: shutdown must not be droppable by a full
            // queue; the shard drains ahead of it and then exits.
            let _ = sender.send(Job::Shutdown);
        }
        let joins = std::mem::take(&mut *self.joins.lock().expect("join set poisoned"));
        for handle in joins {
            let _ = handle.join();
        }
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Peak RSS of this process; zero where the platform offers no cheap
/// readout. Goes through the self-profiler's cached high-water mark, so
/// with the selfprof feature on the aggregator keeps it fresh between
/// stats requests.
fn max_rss() -> u64 {
    selfprof::peak_rss_bytes()
}
