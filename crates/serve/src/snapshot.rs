//! Persistent session snapshots: a versioned, checksummed binary format
//! for warm-starting a restarted server past the τ-warm-up phase.
//!
//! A snapshot carries up to four sections:
//!
//! 1. the [`SessionConfig`] (so a restore rebuilds the same workload and
//!    engine policy),
//! 2. the engine's [`EngineWarmState`] — installed fragments (which imply
//!    the link graph: linking is re-derived from guard-exit adjacency as
//!    the traces re-install), exit-stub counters, armed targets, and NET
//!    head counters,
//! 3. optionally, the VM's exact paused machine state
//!    ([`SavedLinkedState`]) for exec sessions, so the restored run
//!    finishes with bit-identical `RunStats`, memory, and globals,
//! 4. optionally (v3), the fleet profile-store aggregate for the
//!    session's configuration ([`SessionProfile`]), so restoring a
//!    parked snapshot also re-seeds the cross-session profile store.
//!
//! # Format
//!
//! Little-endian throughout. The layout is:
//!
//! ```text
//! "HPSS"            magic, 4 bytes
//! version: u16      currently 3
//! flags:   u16      bit 0 = machine-state section present
//!                   bit 1 = profile-store section present
//! config  section   workload u8 (0xFF = ingest) · scale u8 · scheme u8 ·
//!                   delay u64 · fuel_budget u64 (u64::MAX = none) ·
//!                   opt_level u8 · prewarm u8
//! warm    section   counted arrays: fragments (insts u32, blocks [u32]),
//!                   exit counters (u32, u64), armed targets u32,
//!                   NET counters (u32, u64)
//! machine section   stats · regs [i64] · frames (ret u32, base u64,
//! (iff flag bit 0)  func u32) · frame_base u64 · pending event (14 B) ·
//!                   cur u32 · memory [i64] · globals [i64] · done u8
//! profile section   length-prefixed sealed "HPFP" profile blob (the
//! (iff flag bit 1)  aggregate the store held for this key at save time)
//! checksum: u64     FNV-1a 64 over every preceding byte
//! ```
//!
//! # Version & checksum rules
//!
//! * The version bumps on any layout change; decoders reject versions
//!   they don't know rather than guess (`UnsupportedVersion`).
//! * The checksum seals the whole image including the header; it is
//!   verified *before* any field is parsed, so a truncated or corrupted
//!   blob fails closed (`ChecksumMismatch`) instead of restoring a
//!   half-read session.
//! * Unknown flag bits are rejected: a future writer's extension must not
//!   be silently dropped by an old reader.

use hotpath_dynamo::EngineWarmState;
use hotpath_vm::{decode_events, encode_event, SavedFrame, SavedLinkedState, EVENT_WIRE_BYTES};
use hotpath_workloads::{Scale, ALL_WORKLOADS};

use crate::profile_store::SessionProfile;
use crate::session::SessionConfig;
use crate::wire::{
    fnv1a64, put_bytes, put_i64, put_stats, put_u32, put_u64, put_warm, read_warm, ReadError,
    Reader,
};

/// Magic bytes opening every snapshot ("Hot Path Session Snapshot").
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"HPSS";

/// The format version this build writes and the only one it reads.
/// Version 2 added the config's trace optimization level; version 3
/// added the config's prewarm bit and the profile-store section.
pub const SNAPSHOT_VERSION: u16 = 3;

/// Flag bit: the machine-state section is present.
const FLAG_MACHINE: u16 = 1;

/// Flag bit: the profile-store section is present.
const FLAG_PROFILE: u16 = 2;

/// Why a snapshot failed to decode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnapshotError {
    /// The blob is too short to hold even the header and seal.
    TooShort,
    /// The magic bytes are not `HPSS`.
    BadMagic,
    /// The version is not one this build understands.
    UnsupportedVersion(u16),
    /// The blob carries flag bits this build does not understand.
    UnknownFlags(u16),
    /// The FNV-1a seal does not match the content.
    ChecksumMismatch {
        /// Checksum stored in the blob.
        stored: u64,
        /// Checksum computed over the blob's content.
        computed: u64,
    },
    /// A field was truncated or failed validation; names the field.
    Malformed(&'static str),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::TooShort => write!(f, "snapshot too short for header and checksum"),
            SnapshotError::BadMagic => write!(f, "not a session snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (this build reads {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::UnknownFlags(flags) => {
                write!(f, "snapshot carries unknown flag bits {flags:#06x}")
            }
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            SnapshotError::Malformed(field) => write!(f, "malformed snapshot field `{field}`"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<ReadError> for SnapshotError {
    fn from(e: ReadError) -> Self {
        SnapshotError::Malformed(e.0)
    }
}

/// A decoded session snapshot. Produced by
/// [`Session::snapshot`](crate::Session::snapshot), consumed by
/// [`Session::restore`](crate::Session::restore).
#[derive(Clone, PartialEq, Debug)]
pub struct SessionSnapshot {
    /// The configuration the session was opened with.
    pub config: SessionConfig,
    /// Engine warm state: fragments, exit counters, armed targets, NET
    /// counters.
    pub warm: EngineWarmState,
    /// Exact paused machine state; `None` for ingest sessions.
    pub vm: Option<SavedLinkedState>,
    /// Fleet profile-store aggregate for the session's key at save time;
    /// restoring a snapshot that carries one re-publishes it, so a fleet
    /// restarted from parked snapshots warms its store back up too.
    pub profile: Option<SessionProfile>,
}

impl SessionSnapshot {
    /// Encodes the snapshot into its sealed binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(256);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        let mut flags: u16 = 0;
        if self.vm.is_some() {
            flags |= FLAG_MACHINE;
        }
        if self.profile.is_some() {
            flags |= FLAG_PROFILE;
        }
        out.extend_from_slice(&flags.to_le_bytes());

        // Config section.
        let workload = self.config.workload.map_or(0xFF, |w| {
            ALL_WORKLOADS.iter().position(|&x| x == w).unwrap() as u8
        });
        out.push(workload);
        out.push(match self.config.scale {
            Scale::Smoke => 0,
            Scale::Small => 1,
            Scale::Full => 2,
        });
        out.push(match self.config.scheme {
            hotpath_dynamo::Scheme::Net => 0,
            hotpath_dynamo::Scheme::PathProfile => 1,
        });
        put_u64(&mut out, self.config.delay);
        put_u64(&mut out, self.config.fuel_budget.unwrap_or(u64::MAX));
        out.push(match self.config.opt_level {
            hotpath_vm::OptLevel::None => 0,
            hotpath_vm::OptLevel::Guards => 1,
            hotpath_vm::OptLevel::Full => 2,
        });
        out.push(u8::from(self.config.prewarm));

        // Warm section.
        put_warm(&mut out, &self.warm);

        // Machine section.
        if let Some(vm) = &self.vm {
            put_stats(&mut out, &vm.stats);
            put_u32(&mut out, vm.regs.len() as u32);
            for &r in &vm.regs {
                put_i64(&mut out, r);
            }
            put_u32(&mut out, vm.frames.len() as u32);
            for frame in &vm.frames {
                put_u32(&mut out, frame.ret_global);
                put_u64(&mut out, frame.frame_base);
                put_u32(&mut out, frame.func);
            }
            put_u64(&mut out, vm.frame_base);
            encode_event(&vm.pending, &mut out);
            put_u32(&mut out, vm.cur);
            put_u32(&mut out, vm.memory.len() as u32);
            for &w in &vm.memory {
                put_i64(&mut out, w);
            }
            put_u32(&mut out, vm.globals.len() as u32);
            for &g in &vm.globals {
                put_i64(&mut out, g);
            }
            out.push(u8::from(vm.done));
        }

        // Profile section: the sealed blob verbatim, length-prefixed.
        if let Some(profile) = &self.profile {
            put_bytes(&mut out, &profile.encode());
        }

        let seal = fnv1a64(&out);
        put_u64(&mut out, seal);
        out
    }

    /// Decodes a sealed snapshot blob.
    ///
    /// # Errors
    ///
    /// See [`SnapshotError`]; the checksum is verified before any field
    /// is interpreted.
    pub fn decode(blob: &[u8]) -> Result<SessionSnapshot, SnapshotError> {
        if blob.len() < SNAPSHOT_MAGIC.len() + 2 + 2 + 8 {
            return Err(SnapshotError::TooShort);
        }
        let (content, seal_bytes) = blob.split_at(blob.len() - 8);
        let stored = u64::from_le_bytes(seal_bytes.try_into().unwrap());
        let computed = fnv1a64(content);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }
        let mut r = Reader::new(content);
        if r.take(4, "magic")? != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes(r.take(2, "version")?.try_into().unwrap());
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        let flags = u16::from_le_bytes(r.take(2, "flags")?.try_into().unwrap());
        if flags & !(FLAG_MACHINE | FLAG_PROFILE) != 0 {
            return Err(SnapshotError::UnknownFlags(flags));
        }

        let workload = match r.u8("workload")? {
            0xFF => None,
            idx => Some(
                ALL_WORKLOADS
                    .get(idx as usize)
                    .copied()
                    .ok_or(SnapshotError::Malformed("workload"))?,
            ),
        };
        let scale = match r.u8("scale")? {
            0 => Scale::Smoke,
            1 => Scale::Small,
            2 => Scale::Full,
            _ => return Err(SnapshotError::Malformed("scale")),
        };
        let scheme = match r.u8("scheme")? {
            0 => hotpath_dynamo::Scheme::Net,
            1 => hotpath_dynamo::Scheme::PathProfile,
            _ => return Err(SnapshotError::Malformed("scheme")),
        };
        let delay = r.u64("delay")?;
        let fuel_budget = match r.u64("fuel_budget")? {
            u64::MAX => None,
            budget => Some(budget),
        };
        let opt_level = match r.u8("opt_level")? {
            0 => hotpath_vm::OptLevel::None,
            1 => hotpath_vm::OptLevel::Guards,
            2 => hotpath_vm::OptLevel::Full,
            _ => return Err(SnapshotError::Malformed("opt_level")),
        };
        let prewarm = match r.u8("prewarm")? {
            0 => false,
            1 => true,
            _ => return Err(SnapshotError::Malformed("prewarm")),
        };
        let config = SessionConfig {
            workload,
            scale,
            scheme,
            delay,
            fuel_budget,
            opt_level,
            prewarm,
        };

        let warm = read_warm(&mut r)?;

        let vm = if flags & FLAG_MACHINE != 0 {
            let stats = r.stats("stats")?;
            let mut regs = Vec::new();
            for _ in 0..r.u32("reg count")? {
                regs.push(r.i64("reg")?);
            }
            let mut frames = Vec::new();
            for _ in 0..r.u32("frame count")? {
                frames.push(SavedFrame {
                    ret_global: r.u32("frame ret")?,
                    frame_base: r.u64("frame base")?,
                    func: r.u32("frame func")?,
                });
            }
            let frame_base = r.u64("frame_base")?;
            let pending = decode_events(r.take(EVENT_WIRE_BYTES, "pending event")?)
                .map_err(|_| SnapshotError::Malformed("pending event"))?
                .pop()
                .ok_or(SnapshotError::Malformed("pending event"))?;
            let cur = r.u32("cur")?;
            let mut memory = Vec::new();
            for _ in 0..r.u32("memory words")? {
                memory.push(r.i64("memory word")?);
            }
            let mut globals = Vec::new();
            for _ in 0..r.u32("global count")? {
                globals.push(r.i64("global")?);
            }
            let done = match r.u8("done")? {
                0 => false,
                1 => true,
                _ => return Err(SnapshotError::Malformed("done")),
            };
            Some(SavedLinkedState {
                stats,
                regs,
                frames,
                frame_base,
                pending,
                cur,
                memory,
                globals,
                done,
            })
        } else {
            None
        };

        let profile = if flags & FLAG_PROFILE != 0 {
            let blob = r.bytes("profile blob")?;
            Some(
                SessionProfile::decode(blob)
                    .map_err(|_| SnapshotError::Malformed("profile blob"))?,
            )
        } else {
            None
        };

        if r.remaining() != 0 {
            return Err(SnapshotError::Malformed("trailing bytes"));
        }
        Ok(SessionSnapshot {
            config,
            warm,
            vm,
            profile,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hotpath_dynamo::FragmentRecord;
    use hotpath_workloads::WorkloadName;

    fn sample() -> SessionSnapshot {
        SessionSnapshot {
            config: SessionConfig {
                workload: Some(WorkloadName::Compress),
                scale: Scale::Smoke,
                scheme: hotpath_dynamo::Scheme::Net,
                delay: 50,
                fuel_budget: Some(1_000_000),
                opt_level: hotpath_vm::OptLevel::Full,
                prewarm: false,
            },
            warm: EngineWarmState {
                fragments: vec![
                    FragmentRecord {
                        blocks: vec![3, 4, 5],
                        insts: 17,
                    },
                    FragmentRecord {
                        blocks: vec![9],
                        insts: 2,
                    },
                ],
                exit_counts: vec![(6, 41), (8, 3)],
                armed: vec![6],
                net_counters: vec![(3, 12)],
            },
            vm: None,
            profile: None,
        }
    }

    #[test]
    fn round_trips_without_machine_state() {
        let snap = sample();
        let blob = snap.encode();
        assert_eq!(SessionSnapshot::decode(&blob).unwrap(), snap);
    }

    #[test]
    fn rejects_corruption_truncation_and_bad_headers() {
        let blob = sample().encode();

        // Any flipped bit fails the seal.
        let mut corrupt = blob.clone();
        corrupt[10] ^= 0x40;
        assert!(matches!(
            SessionSnapshot::decode(&corrupt),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        // Truncation fails the seal too (the seal moves).
        assert!(SessionSnapshot::decode(&blob[..blob.len() - 3]).is_err());
        assert_eq!(SessionSnapshot::decode(&[]), Err(SnapshotError::TooShort));

        // Wrong magic and future version are rejected with their own
        // errors — re-sealed so the checksum passes and the header check
        // is actually reached.
        let reseal = |mut b: Vec<u8>| {
            let len = b.len();
            let seal = fnv1a64(&b[..len - 8]);
            b[len - 8..].copy_from_slice(&seal.to_le_bytes());
            b
        };
        let mut bad_magic = blob.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            SessionSnapshot::decode(&reseal(bad_magic)),
            Err(SnapshotError::BadMagic)
        );
        let mut future = blob.clone();
        future[4] = 9;
        assert_eq!(
            SessionSnapshot::decode(&reseal(future)),
            Err(SnapshotError::UnsupportedVersion(9))
        );
        let mut flags = blob;
        flags[6] |= 0x80;
        assert_eq!(
            SessionSnapshot::decode(&reseal(flags)),
            Err(SnapshotError::UnknownFlags(0x80))
        );
    }

    #[test]
    fn v3_profile_section_and_prewarm_bit_round_trip() {
        use crate::profile_store::ProfileKey;
        let mut snap = sample();
        snap.config.prewarm = true;
        snap.profile = Some(SessionProfile {
            key: ProfileKey::of(&snap.config),
            epoch: 9_000,
            warm: snap.warm.clone(),
        });
        let decoded = SessionSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);

        // A corrupted inner profile blob is caught even when the outer
        // seal is recomputed over it.
        let mut blob = snap.encode();
        let profile_at = blob.len() - 8 - 12;
        blob[profile_at] ^= 0x01;
        let len = blob.len();
        let seal = fnv1a64(&blob[..len - 8]);
        blob[len - 8..].copy_from_slice(&seal.to_le_bytes());
        assert_eq!(
            SessionSnapshot::decode(&blob),
            Err(SnapshotError::Malformed("profile blob"))
        );
    }

    #[test]
    fn stale_v2_snapshots_are_refused() {
        let mut blob = sample().encode();
        blob[4] = 2;
        let len = blob.len();
        let seal = fnv1a64(&blob[..len - 8]);
        blob[len - 8..].copy_from_slice(&seal.to_le_bytes());
        assert_eq!(
            SessionSnapshot::decode(&blob),
            Err(SnapshotError::UnsupportedVersion(2))
        );
    }

    #[test]
    fn ingest_config_and_no_budget_encode_distinctly() {
        let mut snap = sample();
        snap.config.workload = None;
        snap.config.fuel_budget = None;
        let decoded = SessionSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded.config.workload, None);
        assert_eq!(decoded.config.fuel_budget, None);
    }
}
