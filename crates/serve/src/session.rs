//! One serving session: a [`LinkedEngine`] plus, for workload-executing
//! sessions, the [`Vm`] and resumable [`LinkedState`] it drives.
//!
//! A session comes in two modes, chosen at open time by
//! [`SessionConfig::workload`]:
//!
//! * **exec** — the server owns the workload program and advances it in
//!   bounded fuel slices ([`Session::run`]); results are bit-identical to
//!   a plain interpreted run regardless of slicing, flushes, or
//!   snapshot/restore (the trace backend's contract);
//! * **ingest** — no server-side program: the client streams batched
//!   [`BlockEvent`]s from its own runtime ([`Session::ingest`]) and the
//!   engine profiles them, predicts hot paths, and accumulates fragments
//!   exactly as it would for a local run.
//!
//! Sessions never share state: each owns its engine, cache mirror, and
//! (in exec mode) machine state outright, so anything one session does —
//! including a forced flush — cannot perturb another's results.

use hotpath_dynamo::{DynamoConfig, LinkedEngine, Scheme};
use hotpath_vm::{BlockEvent, ExecutionObserver, RunStats, StepOutcome, TraceController, Vm};
use hotpath_workloads::{build, Scale, WorkloadName};

use crate::snapshot::SessionSnapshot;

/// Everything needed to (re)create a session.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SessionConfig {
    /// Workload the server executes; `None` opens an ingest session fed
    /// by client-streamed event batches instead.
    pub workload: Option<WorkloadName>,
    /// Scale the workload is built at (ignored for ingest sessions).
    pub scale: Scale,
    /// Prediction scheme the session's engine runs.
    pub scheme: Scheme,
    /// Prediction delay τ.
    pub delay: u64,
    /// Total blocks this session may execute across all [`Session::run`]
    /// calls; `None` is unlimited. Exhausting the budget fails further
    /// `run` requests — the per-session half of admission control.
    pub fuel_budget: Option<u64>,
    /// Trace optimization level for exec sessions (ignored for ingest,
    /// which executes nothing). Affects speed only, never results.
    pub opt_level: hotpath_vm::OptLevel,
    /// Ask admission to pre-warm the session from the fleet profile
    /// store's aggregate for this configuration. Warm state is policy
    /// only, so pre-warming affects warm-up speed, never results.
    pub prewarm: bool,
}

impl SessionConfig {
    /// A workload-executing session at Dynamo's shipped τ=50.
    pub fn exec(workload: WorkloadName, scale: Scale) -> Self {
        SessionConfig {
            workload: Some(workload),
            scale,
            scheme: Scheme::Net,
            delay: 50,
            fuel_budget: None,
            opt_level: hotpath_vm::OptLevel::None,
            prewarm: false,
        }
    }

    /// An event-ingest session at Dynamo's shipped τ=50.
    pub fn ingest() -> Self {
        SessionConfig {
            workload: None,
            scale: Scale::Smoke,
            scheme: Scheme::Net,
            delay: 50,
            fuel_budget: None,
            opt_level: hotpath_vm::OptLevel::None,
            prewarm: false,
        }
    }

    /// Returns the configuration with the trace optimization level set.
    pub fn with_opt_level(mut self, level: hotpath_vm::OptLevel) -> Self {
        self.opt_level = level;
        self
    }

    /// Returns the configuration with pre-warm-at-admission set.
    pub fn with_prewarm(mut self, prewarm: bool) -> Self {
        self.prewarm = prewarm;
        self
    }

    /// The label used for telemetry and status reports: the workload name,
    /// or `"ingest"` for event-stream sessions.
    pub fn label(&self) -> &'static str {
        self.workload.map_or("ingest", WorkloadName::as_str)
    }

    fn dynamo(&self) -> DynamoConfig {
        DynamoConfig::new(self.scheme, self.delay).with_opt_level(self.opt_level)
    }
}

/// Point-in-time view of a session, served by query requests.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SessionStatus {
    /// Session id.
    pub session: u64,
    /// Shard the session lives on.
    pub shard: u32,
    /// Workload name, or `"ingest"`.
    pub workload: String,
    /// True once an exec session halted (always false for ingest).
    pub done: bool,
    /// Execution statistics so far (zeros for ingest sessions).
    pub stats: RunStats,
    /// Live fragments in the engine's cache mirror.
    pub fragments: u64,
    /// Cumulative fragment installs.
    pub installs: u64,
    /// Cache flushes so far.
    pub flushes: u64,
    /// Completed profiled paths.
    pub paths: u64,
    /// Degradation-ladder rung (`full_linking` when the ladder is off).
    pub mode: String,
}

/// Exec-mode machine state: the VM and its resumable linked run.
#[derive(Debug)]
struct Exec {
    vm: Vm,
    state: hotpath_vm::LinkedState,
}

/// One live session. See the module docs for the two modes.
#[derive(Debug)]
pub struct Session {
    id: u64,
    shard: u32,
    config: SessionConfig,
    engine: LinkedEngine,
    exec: Option<Exec>,
    /// Blocks executed against the fuel budget.
    spent: u64,
    /// Events accepted by [`Session::ingest`].
    ingested: u64,
}

impl Session {
    /// Opens a fresh session.
    pub fn open(id: u64, shard: u32, config: SessionConfig) -> Session {
        let engine = LinkedEngine::new(config.dynamo());
        let exec = config.workload.map(|name| {
            let program = build(name, config.scale).program;
            let vm = Vm::new(&program).with_opt_level(config.opt_level);
            let state = vm.start_linked();
            Exec { vm, state }
        });
        Session {
            id,
            shard,
            config,
            engine,
            exec,
            spent: 0,
            ingested: 0,
        }
    }

    /// Rebuilds a session from a decoded snapshot: the engine re-warms
    /// from the persisted fragment/counter state and, for exec sessions,
    /// the VM resumes from the exact saved machine state.
    ///
    /// # Errors
    ///
    /// Rejects snapshots whose machine image does not fit the rebuilt
    /// program (wrong memory size, dangling block ids, …).
    pub fn restore(id: u64, shard: u32, snapshot: &SessionSnapshot) -> Result<Session, String> {
        let mut session = Session::open(id, shard, snapshot.config.clone());
        snapshot.warm.validate(session.block_limit())?;
        session.engine.import_warm_state(&snapshot.warm);
        if let Some(saved) = &snapshot.vm {
            let exec = session
                .exec
                .as_mut()
                .ok_or("snapshot carries machine state but no workload")?;
            exec.state = exec.vm.import_linked(saved)?;
        }
        Ok(session)
    }

    /// Session id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The configuration the session was opened with.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// True once an exec session's program halted.
    pub fn done(&self) -> bool {
        self.exec.as_ref().is_some_and(|e| e.state.done())
    }

    /// Execution statistics so far (final once [`Session::done`]).
    pub fn stats(&self) -> RunStats {
        self.exec
            .as_ref()
            .map_or_else(RunStats::default, |e| e.state.stats())
    }

    /// Final data memory (exec sessions; empty for ingest).
    pub fn memory(&self) -> &[i64] {
        self.exec.as_ref().map_or(&[], |e| e.vm.memory())
    }

    /// Machine-global registers (exec sessions; empty for ingest).
    pub fn globals(&self) -> &[i64] {
        self.exec.as_ref().map_or(&[], |e| e.vm.globals())
    }

    /// The session's engine (inspection).
    pub fn engine(&self) -> &LinkedEngine {
        &self.engine
    }

    /// True while the session's optimization machinery is unblemished:
    /// the degradation ladder still at full linking, no bail-out, and no
    /// trace heads poisoned by panics. Unhealthy sessions publish into
    /// the profile store's quarantine bucket instead of the fleet
    /// aggregate — their warm state is suspect until re-promoted.
    pub fn healthy(&self) -> bool {
        self.engine.mode() == hotpath_dynamo::LadderMode::FullLinking
            && !self.engine.bailed_out()
            && self
                .exec
                .as_ref()
                .map_or(true, |e| e.state.poisoned_heads() == 0)
    }

    /// The session's logical clock: blocks executed for exec sessions,
    /// events accepted for ingest sessions. Profile publishes are
    /// stamped with this, which drives exponential-decay bucketing.
    pub fn epoch(&self) -> u64 {
        if self.exec.is_some() {
            self.stats().blocks_executed
        } else {
            self.ingested
        }
    }

    /// Largest valid block id bound for warm-state validation: the
    /// program's block count for exec sessions, unbounded for ingest
    /// (the client's block ids are its own).
    fn block_limit(&self) -> u32 {
        self.exec
            .as_ref()
            .map_or(u32::MAX, |e| e.vm.layout().block_count() as u32)
    }

    /// Imports fleet warm state into the session's engine at admission.
    /// Returns `(fragments, counters)` imported. Policy state only:
    /// RunStats, memory, and globals stay bit-identical to a cold run —
    /// only *when* traces install changes.
    ///
    /// # Errors
    ///
    /// Rejects empty warm state and warm state referencing block ids the
    /// session's program does not have (same checks as restore).
    pub fn prewarm(
        &mut self,
        warm: &hotpath_dynamo::EngineWarmState,
    ) -> Result<(u64, u64), String> {
        if warm.is_empty() {
            return Err("aggregate profile carries no warm state".into());
        }
        warm.validate(self.block_limit())?;
        self.engine.import_warm_state(warm);
        let counters = (warm.exit_counts.len() + warm.net_counters.len()) as u64;
        Ok((warm.fragments.len() as u64, counters))
    }

    /// Advances an exec session by at most `fuel` blocks (`None` runs to
    /// completion, still bounded by the session's fuel budget). Returns
    /// whether the program has halted plus the statistics so far.
    ///
    /// # Errors
    ///
    /// Fails for ingest sessions, on budget exhaustion, and on VM errors.
    pub fn run(&mut self, fuel: Option<u64>) -> Result<(bool, RunStats), String> {
        let exec = self
            .exec
            .as_mut()
            .ok_or("ingest sessions execute nothing; stream events instead")?;
        if exec.state.done() {
            return Ok((true, exec.state.stats()));
        }
        let slice = match self.config.fuel_budget {
            Some(budget) => {
                let remaining = budget.saturating_sub(self.spent);
                if remaining == 0 {
                    return Err(format!("session fuel budget of {budget} blocks exhausted"));
                }
                Some(fuel.map_or(remaining, |f| f.min(remaining)))
            }
            None => fuel,
        };
        let before = exec.state.stats().blocks_executed;
        let outcome = exec
            .vm
            .step_linked(&mut exec.state, &mut self.engine, slice)
            .map_err(|e| e.to_string())?;
        self.spent += exec.state.stats().blocks_executed - before;
        match outcome {
            StepOutcome::Yielded => Ok((false, exec.state.stats())),
            StepOutcome::Halted(stats) => Ok((true, stats)),
        }
    }

    /// Feeds a batch of client-streamed control-flow events through the
    /// engine's profiling path. Returns the totals after the batch:
    /// events ingested, paths completed, live fragments.
    ///
    /// # Errors
    ///
    /// Fails for exec sessions — their event stream comes from the
    /// server-side VM.
    pub fn ingest(&mut self, events: &[BlockEvent]) -> Result<(u64, u64, u64), String> {
        if self.exec.is_some() {
            return Err("exec sessions generate their own events; use run".into());
        }
        for event in events {
            self.engine.on_block(event);
        }
        // No VM polls this engine, so drain the command queue here; the
        // mirror cache already reflects every install.
        while self.engine.poll_command().is_some() {}
        self.ingested += events.len() as u64;
        Ok((
            self.ingested,
            self.engine.paths_completed(),
            self.engine.cache().len() as u64,
        ))
    }

    /// Flushes the session's fragment cache (engine mirror now, the VM's
    /// trace cache at the next run slice). Affects warm-up only — results
    /// stay bit-identical, which the isolation tests assert.
    pub fn force_flush(&mut self) {
        self.engine.request_flush();
        if self.exec.is_none() {
            while self.engine.poll_command().is_some() {}
        }
    }

    /// The session's current status.
    pub fn status(&self) -> SessionStatus {
        let cache = self.engine.cache();
        SessionStatus {
            session: self.id,
            shard: self.shard,
            workload: self.config.label().to_string(),
            done: self.done(),
            stats: self.stats(),
            fragments: cache.len() as u64,
            installs: cache.installs(),
            flushes: cache.flushes(),
            paths: self.engine.paths_completed(),
            mode: self.engine.mode().as_str().to_string(),
        }
    }

    /// Captures the session into a persistable snapshot: config, engine
    /// warm state, and (exec sessions) the exact machine state.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            config: self.config.clone(),
            warm: self.engine.export_warm_state(),
            vm: self.exec.as_ref().map(|e| e.vm.export_linked(&e.state)),
            // The shard attaches the fleet aggregate; the session itself
            // only knows its own warm state.
            profile: None,
        }
    }
}
