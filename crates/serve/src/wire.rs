//! Little-endian byte codec helpers shared by the protocol and snapshot
//! formats, plus the FNV-1a checksum the snapshot format seals itself
//! with. Everything is explicit-width and little-endian; there is no
//! varint cleverness to get wrong.

use hotpath_dynamo::{EngineWarmState, FragmentRecord};
use hotpath_vm::RunStats;

/// Appends a `u32` (little-endian).
pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` (little-endian).
pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i64` (little-endian).
pub(crate) fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed (`u32`) byte string.
pub(crate) fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Appends a length-prefixed UTF-8 string.
pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Appends a [`RunStats`] in fixed field order.
pub(crate) fn put_stats(out: &mut Vec<u8>, stats: &RunStats) {
    put_u64(out, stats.blocks_executed);
    put_u64(out, stats.insts_executed);
    put_u64(out, stats.cond_branches);
    put_u64(out, stats.indirect_branches);
    put_u64(out, stats.calls);
    put_u64(out, stats.backward_transfers);
    put_u64(out, stats.max_call_depth as u64);
    out.push(u8::from(stats.halted));
}

/// Appends an [`EngineWarmState`] as the counted arrays shared by the
/// snapshot and profile formats: fragments (insts, blocks), exit-stub
/// counters, armed targets, NET counters.
pub(crate) fn put_warm(out: &mut Vec<u8>, warm: &EngineWarmState) {
    put_u32(out, warm.fragments.len() as u32);
    for fragment in &warm.fragments {
        put_u32(out, fragment.insts);
        put_u32(out, fragment.blocks.len() as u32);
        for &b in &fragment.blocks {
            put_u32(out, b);
        }
    }
    put_u32(out, warm.exit_counts.len() as u32);
    for &(target, count) in &warm.exit_counts {
        put_u32(out, target);
        put_u64(out, count);
    }
    put_u32(out, warm.armed.len() as u32);
    for &target in &warm.armed {
        put_u32(out, target);
    }
    put_u32(out, warm.net_counters.len() as u32);
    for &(head, count) in &warm.net_counters {
        put_u32(out, head);
        put_u64(out, count);
    }
}

/// Reads an [`EngineWarmState`] written by [`put_warm`].
pub(crate) fn read_warm(r: &mut Reader<'_>) -> Result<EngineWarmState, ReadError> {
    let mut fragments = Vec::new();
    for _ in 0..r.u32("fragment count")? {
        let insts = r.u32("fragment insts")?;
        let n = r.u32("fragment block count")?;
        let mut blocks = Vec::with_capacity(n as usize);
        for _ in 0..n {
            blocks.push(r.u32("fragment block")?);
        }
        fragments.push(FragmentRecord { blocks, insts });
    }
    let mut exit_counts = Vec::new();
    for _ in 0..r.u32("exit counter count")? {
        exit_counts.push((r.u32("exit target")?, r.u64("exit count")?));
    }
    let mut armed = Vec::new();
    for _ in 0..r.u32("armed count")? {
        armed.push(r.u32("armed target")?);
    }
    let mut net_counters = Vec::new();
    for _ in 0..r.u32("net counter count")? {
        net_counters.push((r.u32("net head")?, r.u64("net count")?));
    }
    Ok(EngineWarmState {
        fragments,
        exit_counts,
        armed,
        net_counters,
    })
}

/// A bounds-checked little-endian reader over a byte slice. Every read
/// names the field it was after, so a malformed buffer produces a
/// diagnosable error instead of a panic or a silent misparse.
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// A read ran off the end of the buffer (or a field failed validation);
/// carries the field name being read.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct ReadError(pub &'static str);

impl<'a> Reader<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], ReadError> {
        if self.remaining() < n {
            return Err(ReadError(field));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, field: &'static str) -> Result<u8, ReadError> {
        Ok(self.take(1, field)?[0])
    }

    pub(crate) fn u32(&mut self, field: &'static str) -> Result<u32, ReadError> {
        Ok(u32::from_le_bytes(self.take(4, field)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self, field: &'static str) -> Result<u64, ReadError> {
        Ok(u64::from_le_bytes(self.take(8, field)?.try_into().unwrap()))
    }

    pub(crate) fn i64(&mut self, field: &'static str) -> Result<i64, ReadError> {
        Ok(i64::from_le_bytes(self.take(8, field)?.try_into().unwrap()))
    }

    /// A length-prefixed byte string written by [`put_bytes`].
    pub(crate) fn bytes(&mut self, field: &'static str) -> Result<&'a [u8], ReadError> {
        let len = self.u32(field)? as usize;
        self.take(len, field)
    }

    /// A length-prefixed UTF-8 string written by [`put_str`].
    pub(crate) fn str(&mut self, field: &'static str) -> Result<&'a str, ReadError> {
        std::str::from_utf8(self.bytes(field)?).map_err(|_| ReadError(field))
    }

    /// A [`RunStats`] written by [`put_stats`].
    pub(crate) fn stats(&mut self, field: &'static str) -> Result<RunStats, ReadError> {
        Ok(RunStats {
            blocks_executed: self.u64(field)?,
            insts_executed: self.u64(field)?,
            cond_branches: self.u64(field)?,
            indirect_branches: self.u64(field)?,
            calls: self.u64(field)?,
            backward_transfers: self.u64(field)?,
            max_call_depth: self.u64(field)? as usize,
            halted: match self.u8(field)? {
                0 => false,
                1 => true,
                _ => return Err(ReadError(field)),
            },
        })
    }
}

/// FNV-1a 64-bit — the snapshot format's integrity seal, shared with the
/// self-profiler report format via `hotpath-ir`.
pub(crate) use hotpath_ir::fasthash::fnv1a64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reader_round_trips_primitives() {
        let mut out = Vec::new();
        put_u32(&mut out, 7);
        put_u64(&mut out, u64::MAX - 1);
        put_i64(&mut out, -42);
        put_str(&mut out, "compress");
        let mut r = Reader::new(&out);
        assert_eq!(r.u32("a").unwrap(), 7);
        assert_eq!(r.u64("b").unwrap(), u64::MAX - 1);
        assert_eq!(r.i64("c").unwrap(), -42);
        assert_eq!(r.str("d").unwrap(), "compress");
        assert_eq!(r.remaining(), 0);
        assert_eq!(r.u8("past-end"), Err(ReadError("past-end")));
    }

    #[test]
    fn stats_round_trip() {
        let stats = RunStats {
            blocks_executed: 1,
            insts_executed: 2,
            cond_branches: 3,
            indirect_branches: 4,
            calls: 5,
            backward_transfers: 6,
            max_call_depth: 7,
            halted: true,
        };
        let mut out = Vec::new();
        put_stats(&mut out, &stats);
        assert_eq!(Reader::new(&out).stats("s").unwrap(), stats);
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }
}
