//! The `serve` binary: bind a TCP address and serve sessions until a
//! client sends Shutdown or the process receives SIGINT/SIGTERM.
//!
//! ```text
//! serve [--addr HOST:PORT] [--shards N] [--queue-depth N] [--max-sessions N]
//!       [--reactors N] [--write-buf BYTES] [--snapshot-dir DIR] [--blocking]
//!       [--drain-deadline-ms MS] [--chaos-seed SEED] [--chaos-rate RATE]
//!       [--selfprof-port PORT]
//! ```
//!
//! Prints `listening on HOST:PORT` on stdout once bound (port 0 resolves
//! to the OS-assigned port), so scripts can scrape the address.
//!
//! On SIGINT/SIGTERM the server drains instead of dying: it stops
//! accepting, answers queued requests with `ShuttingDown`, finishes
//! in-flight work, flushes replies, closes connections — and, when
//! `--snapshot-dir` is set, writes every still-open session's warm state
//! to `DIR/session-<id>.hpss` before exiting 0.

use hotpath_serve::{serve, serve_blocking, FaultPlan, ServeConfig, ServerHandle};

fn usage() -> ! {
    eprintln!(
        "usage: serve [--addr HOST:PORT] [--shards N] [--queue-depth N] [--max-sessions N]\n\
         \x20            [--reactors N] [--write-buf BYTES] [--snapshot-dir DIR] [--blocking]\n\
         \x20            [--drain-deadline-ms MS] [--chaos-seed SEED] [--chaos-rate RATE]\n\
         \x20            [--selfprof-port PORT]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("bad value for {flag}: {value}");
            usage();
        }
    }
}

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut config = ServeConfig::default();
    let mut snapshot_dir: Option<String> = None;
    let mut blocking = false;
    let mut chaos_seed: Option<u64> = None;
    let mut chaos_rate: f64 = 0.02;
    let mut selfprof_port: Option<u16> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse(&arg, args.next()),
            "--shards" => config.shards = parse(&arg, args.next()),
            "--queue-depth" => config.queue_depth = parse(&arg, args.next()),
            "--max-sessions" => config.max_sessions_per_shard = parse(&arg, args.next()),
            "--reactors" => config.reactors = parse(&arg, args.next()),
            "--write-buf" => config.write_buf_limit = parse(&arg, args.next()),
            "--snapshot-dir" => snapshot_dir = Some(parse(&arg, args.next())),
            "--blocking" => blocking = true,
            "--drain-deadline-ms" => config.drain_deadline_ms = parse(&arg, args.next()),
            "--chaos-seed" => chaos_seed = Some(parse(&arg, args.next())),
            "--chaos-rate" => chaos_rate = parse(&arg, args.next()),
            "--selfprof-port" => selfprof_port = Some(parse(&arg, args.next())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    if config.shards == 0 || config.queue_depth == 0 || config.reactors == 0 {
        eprintln!("--shards, --queue-depth, and --reactors must be positive");
        usage();
    }
    if !(0.0..=1.0).contains(&chaos_rate) {
        eprintln!("--chaos-rate must be in [0, 1]");
        usage();
    }
    if let Some(seed) = chaos_seed {
        config.chaos = Some(FaultPlan::chaos(seed, chaos_rate));
        eprintln!("chaos armed: seed {seed}, rate {chaos_rate}");
    }
    let bound = if blocking {
        serve_blocking(&addr, config)
    } else {
        serve(&addr, config)
    };
    let mut handle = match bound {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", handle.addr());
    if let Some(port) = selfprof_port {
        // Mounted next to the serve front-end; with the selfprof feature
        // off it still answers, with an empty report.
        match hotpath_selfprof::serve_http(&format!("127.0.0.1:{port}")) {
            Ok(bound) => println!("selfprof on http://{bound}/selfprof"),
            Err(e) => eprintln!("selfprof bind port {port}: {e}"),
        }
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    spawn_signal_watcher(&handle);

    // Block until the front-end exits (client Shutdown, signal drain, or
    // a stop); the shard pool stays up so warm sessions can be saved.
    handle.join_front();
    if let Some(dir) = snapshot_dir {
        save_snapshots(&handle, &dir);
    }
    drop(handle); // shuts the shard pool down
}

/// Installs SIGINT/SIGTERM handlers and a watcher thread that fires a
/// graceful drain when either arrives. No-op where the platform has no
/// signals to watch.
#[cfg(unix)]
fn spawn_signal_watcher(handle: &ServerHandle) {
    let trigger = handle.drain_trigger();
    match hotpath_serve::install_drain_signals() {
        Ok(fd) => {
            std::thread::Builder::new()
                .name("hotpath-signals".to_string())
                .spawn(move || {
                    hotpath_serve::block_until_signal(fd);
                    eprintln!("drain signal received, draining");
                    trigger.fire();
                })
                .expect("spawn signal watcher");
        }
        Err(e) => eprintln!("signal handlers unavailable ({e}); drain via Shutdown only"),
    }
}

#[cfg(not(unix))]
fn spawn_signal_watcher(_handle: &ServerHandle) {}

/// Writes every still-open session to `dir/session-<id>.hpss`.
fn save_snapshots(handle: &ServerHandle, dir: &str) {
    let blobs = handle.manager().snapshot_all();
    if blobs.is_empty() {
        return;
    }
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("snapshot dir {dir}: {e}");
        return;
    }
    let mut saved = 0usize;
    for (id, blob) in &blobs {
        let path = format!("{dir}/session-{id}.hpss");
        match std::fs::write(&path, blob) {
            Ok(()) => saved += 1,
            Err(e) => eprintln!("write {path}: {e}"),
        }
    }
    eprintln!("saved {saved} warm session snapshot(s) to {dir}");
}
