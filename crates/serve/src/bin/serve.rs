//! The `serve` binary: bind a TCP address and serve sessions until a
//! client sends Shutdown.
//!
//! ```text
//! serve [--addr HOST:PORT] [--shards N] [--queue-depth N] [--max-sessions N]
//! ```
//!
//! Prints `listening on HOST:PORT` on stdout once bound (port 0 resolves
//! to the OS-assigned port), so scripts can scrape the address.

use hotpath_serve::{serve, ServeConfig};

fn usage() -> ! {
    eprintln!("usage: serve [--addr HOST:PORT] [--shards N] [--queue-depth N] [--max-sessions N]");
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(value) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    match value.parse() {
        Ok(v) => v,
        Err(_) => {
            eprintln!("bad value for {flag}: {value}");
            usage();
        }
    }
}

fn main() {
    let mut addr = "127.0.0.1:0".to_string();
    let mut config = ServeConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse(&arg, args.next()),
            "--shards" => config.shards = parse(&arg, args.next()),
            "--queue-depth" => config.queue_depth = parse(&arg, args.next()),
            "--max-sessions" => config.max_sessions_per_shard = parse(&arg, args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage();
            }
        }
    }
    if config.shards == 0 || config.queue_depth == 0 {
        eprintln!("--shards and --queue-depth must be positive");
        usage();
    }
    let handle = match serve(&addr, config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    handle.wait();
}
