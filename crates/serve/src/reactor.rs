//! The nonblocking reactor front-end: one epoll-style event loop per
//! reactor thread, multiplexing every connection it owns over a single
//! [`Poller`].
//!
//! Each connection is a pure state machine ([`ConnState`]): partial
//! reads accumulate until a whole u32-LE length-prefixed frame is
//! present, parsed frames queue in arrival order, and exactly one
//! request per connection is in flight on a shard at a time (preserving
//! the blocking front-end's reply ordering). Backpressure is explicit at
//! every layer:
//!
//! * a frame arriving while [`ConnLimits::max_queued`] frames already
//!   wait — or while the write buffer is past its soft bound — is
//!   answered [`Response::Busy`] in order, without dispatching;
//! * a write buffer past its hard bound (4x soft) stops socket reads
//!   entirely until the peer drains it;
//! * shard-queue refusals surface as the same `Busy` the blocking
//!   front-end returns.
//!
//! Shard workers never block the loop: completions ride an mpsc queue
//! and a self-pipe ([`WakePipe`]) wake, tagged with a generation token
//! so a completion for a closed-and-recycled connection slot is
//! discarded instead of misdelivered.
//!
//! Drain (SIGINT/SIGTERM or the `Shutdown` opcode) stops accepting,
//! answers queued-but-undispatched requests with `ShuttingDown`, lets
//! in-flight shard work finish, flushes every write buffer, and closes —
//! with a deadline so a stalled peer cannot wedge process exit.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};

use hotpath_faultinject::{FaultInjector, FaultPoint};
use hotpath_selfprof as selfprof;
use hotpath_telemetry as telemetry;

use crate::manager::{Prepared, RequestNote, SessionManager};
use crate::protocol::{Request, Response, MAX_FRAME_BYTES};
use crate::server::{note_wire_fault, WIRE_CONN_SALT};
use crate::shard::ReplyTo;
use crate::sys::{Interest, PollEvent, Poller, WakePipe};

/// Token reserved for the listening socket.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Token reserved for the wake pipe.
const WAKE_TOKEN: u64 = u64::MAX - 1;
/// Read chunk size; frames larger than this reassemble across reads.
const READ_CHUNK: usize = 16 << 10;
/// Drain poll period (ms); the deadline in periods comes from
/// [`ServeConfig::drain_deadline_ms`](crate::ServeConfig::drain_deadline_ms)
/// — past it, connections still unflushed are force-closed.
const DRAIN_TICK_MS: i32 = 50;

/// A finished shard response on its way back to a reactor.
#[derive(Debug)]
pub(crate) struct Completion {
    pub(crate) token: u64,
    pub(crate) response: Response,
}

/// Control messages for a reactor thread.
#[derive(Debug)]
pub(crate) enum ReactorCtl {
    /// Stop accepting, finish in-flight work, flush, close, exit.
    Drain,
}

/// Connection counters shared across every reactor of one server.
#[derive(Debug, Default)]
pub(crate) struct ConnTotals {
    pub(crate) live: AtomicU64,
    pub(crate) accepted: AtomicU64,
}

/// Fan-out used to start a drain on every reactor at once: the
/// `Shutdown` opcode (from any reactor) and the signal watcher both fire
/// it. Firing is idempotent, and a reactor registered after the fact is
/// drained immediately, so there is no startup race.
#[derive(Clone, Debug, Default)]
pub(crate) struct DrainFanout {
    inner: Arc<FanoutInner>,
}

#[derive(Debug, Default)]
struct FanoutInner {
    fired: AtomicBool,
    targets: Mutex<Vec<(Sender<ReactorCtl>, Arc<WakePipe>)>>,
}

impl DrainFanout {
    /// Adds a reactor; if the fan-out already fired, drains it now.
    pub(crate) fn register(&self, ctl: Sender<ReactorCtl>, wake: Arc<WakePipe>) {
        let mut targets = self.inner.targets.lock().expect("fanout lock");
        if self.inner.fired.load(Ordering::Acquire) {
            let _ = ctl.send(ReactorCtl::Drain);
            wake.wake();
        }
        targets.push((ctl, wake));
    }

    /// Starts the drain everywhere. Idempotent.
    pub(crate) fn fire(&self) {
        let targets = self.inner.targets.lock().expect("fanout lock");
        if self.inner.fired.swap(true, Ordering::AcqRel) {
            return;
        }
        for (ctl, wake) in targets.iter() {
            let _ = ctl.send(ReactorCtl::Drain);
            wake.wake();
        }
    }
}

/// Bounds for one connection's state machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConnLimits {
    /// Largest accepted frame payload; larger length prefixes kill the
    /// connection (mirrors [`read_frame`](crate::read_frame)).
    pub max_frame: usize,
    /// Parsed frames allowed to wait for dispatch before new ones are
    /// answered [`Response::Busy`].
    pub max_queued: usize,
    /// Soft write-buffer bound: above it, new requests answer `Busy`.
    pub write_soft: usize,
    /// Hard write-buffer bound: above it, socket reads stop entirely.
    pub write_hard: usize,
    /// Total pending entries (queued frames plus pending `Busy`
    /// refusals) before socket reads stop; bounds memory against a
    /// flood of tiny pipelined frames.
    pub max_pending: usize,
}

impl ConnLimits {
    /// Limits derived from a soft write-buffer bound (the server's
    /// [`ServeConfig::write_buf_limit`](crate::ServeConfig::write_buf_limit)).
    pub fn with_write_soft(write_soft: usize) -> ConnLimits {
        let write_soft = write_soft.max(1);
        ConnLimits {
            max_frame: MAX_FRAME_BYTES,
            max_queued: 8,
            write_soft,
            write_hard: write_soft.saturating_mul(4),
            max_pending: 64,
        }
    }
}

impl Default for ConnLimits {
    fn default() -> Self {
        ConnLimits::with_write_soft(256 << 10)
    }
}

/// Why a connection must be closed by its owner.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConnError {
    /// A frame length prefix exceeded [`ConnLimits::max_frame`].
    Oversize {
        /// The advertised payload length.
        len: usize,
    },
    /// A response payload exceeded [`ConnLimits::max_frame`] (mirrors
    /// [`write_frame`](crate::write_frame)'s refusal).
    ResponseOversize {
        /// The response payload length.
        len: usize,
    },
}

impl std::fmt::Display for ConnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConnError::Oversize { len } => {
                write!(f, "frame length {len} exceeds the cap")
            }
            ConnError::ResponseOversize { len } => {
                write!(f, "response of {len} bytes exceeds the cap")
            }
        }
    }
}

impl std::error::Error for ConnError {}

#[derive(Debug)]
enum Pending {
    /// A parsed frame payload awaiting dispatch.
    Frame(Vec<u8>),
    /// A refusal decided at ingest time; answers `Busy` in order.
    Reject,
}

/// One connection's pure state machine: frame reassembly, ordered
/// dispatch, write buffering, and the backpressure/drain policy. No I/O
/// — the owner feeds bytes in, takes dispatchable payloads out, and
/// moves [`writable`](ConnState::writable) bytes to the socket — so the
/// whole policy is testable without a socket.
#[derive(Debug)]
pub struct ConnState {
    limits: ConnLimits,
    read_buf: Vec<u8>,
    pending: VecDeque<Pending>,
    frames_queued: usize,
    in_flight: bool,
    write_buf: Vec<u8>,
    write_pos: usize,
    draining: bool,
    peer_closed: bool,
}

impl ConnState {
    /// A fresh connection with the given bounds.
    pub fn new(limits: ConnLimits) -> ConnState {
        ConnState {
            limits,
            read_buf: Vec::new(),
            pending: VecDeque::new(),
            frames_queued: 0,
            in_flight: false,
            write_buf: Vec::new(),
            write_pos: 0,
            draining: false,
            peer_closed: false,
        }
    }

    /// Feeds bytes read from the socket. Complete frames move to the
    /// pending queue (or become ordered `Busy` refusals when over the
    /// queue or soft-write bound); a partial frame waits for more bytes.
    ///
    /// # Errors
    ///
    /// [`ConnError::Oversize`] when a length prefix exceeds the cap —
    /// the connection must be closed, mirroring the blocking path.
    pub fn ingest(&mut self, bytes: &[u8]) -> Result<(), ConnError> {
        self.read_buf.extend_from_slice(bytes);
        let mut consumed = 0;
        loop {
            let buf = &self.read_buf[consumed..];
            if buf.len() < 4 {
                break;
            }
            let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
            if len > self.limits.max_frame {
                return Err(ConnError::Oversize { len });
            }
            if buf.len() < 4 + len {
                break;
            }
            let payload = buf[4..4 + len].to_vec();
            consumed += 4 + len;
            if self.frames_queued >= self.limits.max_queued
                || self.buffered_write_bytes() >= self.limits.write_soft
            {
                self.pending.push_back(Pending::Reject);
            } else {
                self.pending.push_back(Pending::Frame(payload));
                self.frames_queued += 1;
            }
        }
        self.read_buf.drain(..consumed);
        Ok(())
    }

    /// Takes the next frame to dispatch, marking the connection
    /// in-flight. Pending `Busy` refusals ahead of it are answered (in
    /// order) as a side effect; while draining, queued frames are
    /// answered `ShuttingDown` instead of dispatched. Returns `None`
    /// while a dispatch is already in flight or nothing is queued.
    pub fn next_dispatch(&mut self) -> Option<Vec<u8>> {
        while !self.in_flight {
            match self.pending.pop_front() {
                Some(Pending::Reject) => self.push_response_frame(&Response::Busy.encode()),
                Some(Pending::Frame(payload)) => {
                    self.frames_queued -= 1;
                    if self.draining {
                        self.push_response_frame(&Response::ShuttingDown.encode());
                    } else {
                        self.in_flight = true;
                        return Some(payload);
                    }
                }
                None => break,
            }
        }
        None
    }

    /// Completes the in-flight dispatch: frames the response into the
    /// write buffer and clears the in-flight mark.
    ///
    /// # Errors
    ///
    /// [`ConnError::ResponseOversize`] when the payload exceeds the cap
    /// — the connection must be closed (the blocking path's
    /// `write_frame` refuses identically).
    pub fn respond(&mut self, payload: &[u8]) -> Result<(), ConnError> {
        debug_assert!(self.in_flight, "respond without a dispatch in flight");
        if payload.len() > self.limits.max_frame {
            return Err(ConnError::ResponseOversize { len: payload.len() });
        }
        self.in_flight = false;
        self.push_response_frame(payload);
        Ok(())
    }

    fn push_response_frame(&mut self, payload: &[u8]) {
        self.write_buf
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.write_buf.extend_from_slice(payload);
    }

    /// Enters drain mode: stop reading, answer queued frames with
    /// `ShuttingDown` (in order, after any in-flight reply), flush,
    /// close.
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// Whether drain mode is active.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Marks the peer's read side closed (EOF observed).
    pub fn set_peer_closed(&mut self) {
        self.peer_closed = true;
    }

    /// Bytes ready to write to the socket.
    pub fn writable(&self) -> &[u8] {
        &self.write_buf[self.write_pos..]
    }

    /// Records `n` bytes as written.
    pub fn advance_write(&mut self, n: usize) {
        self.write_pos += n;
        debug_assert!(self.write_pos <= self.write_buf.len());
        if self.write_pos == self.write_buf.len() {
            self.write_buf.clear();
            self.write_pos = 0;
        }
    }

    /// Unflushed response bytes.
    pub fn buffered_write_bytes(&self) -> usize {
        self.write_buf.len() - self.write_pos
    }

    /// Whether the owner should keep reading from the socket.
    pub fn wants_read(&self) -> bool {
        !self.draining
            && !self.peer_closed
            && self.pending.len() < self.limits.max_pending
            && self.buffered_write_bytes() < self.limits.write_hard
    }

    /// Whether unflushed response bytes remain.
    pub fn wants_write(&self) -> bool {
        self.buffered_write_bytes() > 0
    }

    /// Whether a dispatch is in flight on a shard.
    pub fn in_flight(&self) -> bool {
        self.in_flight
    }

    /// Frames (and pending refusals) awaiting dispatch.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// True once the connection has nothing left to do and should be
    /// closed: every reply flushed, nothing queued or in flight, and
    /// either the peer hung up or a drain is in progress.
    pub fn finished(&self) -> bool {
        (self.draining || self.peer_closed)
            && !self.in_flight
            && self.pending.is_empty()
            && self.buffered_write_bytes() == 0
    }
}

struct Conn {
    stream: TcpStream,
    state: ConnState,
    token: u64,
    /// Shard + telemetry note for the in-flight dispatch.
    in_flight_meta: Option<(u32, RequestNote)>,
    /// Interest currently registered with the poller.
    registered: Interest,
    requests: u64,
    /// This connection's wire-fault stream (disabled outside chaos).
    injector: FaultInjector,
    /// One-shot cap on the next flush pass (an injected torn write).
    torn_cap: Option<usize>,
}

/// Everything one reactor thread owns.
pub(crate) struct Reactor {
    index: u32,
    poller: Poller,
    listener: Option<TcpListener>,
    manager: Arc<SessionManager>,
    totals: Arc<ConnTotals>,
    fanout: DrainFanout,
    wake: Arc<WakePipe>,
    comp_tx: Sender<Completion>,
    comp_rx: Receiver<Completion>,
    ctl_rx: Receiver<ReactorCtl>,
    limits: ConnLimits,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    next_gen: u32,
    accepted_here: u64,
    draining: bool,
    drain_ticks: u32,
    drain_deadline_ticks: u32,
}

/// A spawned reactor thread (reachable through the [`DrainFanout`] it
/// registered with).
pub(crate) struct ReactorHandle {
    pub(crate) join: std::thread::JoinHandle<()>,
}

/// Spawns one reactor thread over its own clone of the listener.
pub(crate) fn spawn_reactor(
    index: u32,
    listener: TcpListener,
    manager: Arc<SessionManager>,
    totals: Arc<ConnTotals>,
    fanout: &DrainFanout,
    limits: ConnLimits,
) -> std::io::Result<ReactorHandle> {
    listener.set_nonblocking(true)?;
    let poller = Poller::new()?;
    let wake = Arc::new(WakePipe::new()?);
    let (comp_tx, comp_rx) = channel();
    let (ctl_tx, ctl_rx) = channel();
    fanout.register(ctl_tx.clone(), Arc::clone(&wake));
    let drain_deadline_ticks =
        (manager.config().drain_deadline_ms / DRAIN_TICK_MS as u64).max(1) as u32;
    let mut reactor = Reactor {
        index,
        poller,
        listener: Some(listener),
        manager,
        totals,
        fanout: fanout.clone(),
        wake: Arc::clone(&wake),
        comp_tx,
        comp_rx,
        ctl_rx,
        limits,
        conns: Vec::new(),
        free: Vec::new(),
        next_gen: 0,
        accepted_here: 0,
        draining: false,
        drain_ticks: 0,
        drain_deadline_ticks,
    };
    let join = std::thread::Builder::new()
        .name(format!("hotpath-reactor-{index}"))
        .spawn(move || reactor.run())
        .expect("spawn reactor thread");
    Ok(ReactorHandle { join })
}

impl Reactor {
    fn run(&mut self) {
        if let Some(listener) = &self.listener {
            if self
                .poller
                .add(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
                .is_err()
            {
                return;
            }
        }
        if self
            .poller
            .add(self.wake.read_fd(), WAKE_TOKEN, Interest::READ)
            .is_err()
        {
            return;
        }
        let mut events: Vec<PollEvent> = Vec::new();
        loop {
            events.clear();
            let timeout = if self.draining { DRAIN_TICK_MS } else { -1 };
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            telemetry::emit!(telemetry::Event::ReactorWakeup {
                reactor: self.index,
                events: events.len() as u64,
            });
            for &event in &events {
                match event.token {
                    LISTENER_TOKEN => self.accept_all(),
                    WAKE_TOKEN => self.wake.drain(),
                    token => self.conn_event(token, event.readable, event.writable),
                }
            }
            // Completions and control arrive via the wake pipe, but are
            // drained unconditionally: a wake edge can coalesce with any
            // other readiness.
            while let Ok(completion) = self.comp_rx.try_recv() {
                self.complete(completion);
            }
            while let Ok(ReactorCtl::Drain) = self.ctl_rx.try_recv() {
                self.begin_drain();
            }
            if self.draining {
                self.drain_ticks += 1;
                let force = self.drain_ticks > self.drain_deadline_ticks;
                if force {
                    let open: Vec<usize> = self.open_slots();
                    for idx in open {
                        self.close_conn(idx);
                    }
                }
                if self.conns.iter().all(Option::is_none) {
                    break;
                }
            }
        }
    }

    fn open_slots(&self) -> Vec<usize> {
        self.conns
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| slot.as_ref().map(|_| idx))
            .collect()
    }

    fn accept_all(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => self.install_conn(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    fn install_conn(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let idx = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let gen = self.next_gen;
        self.next_gen = self.next_gen.wrapping_add(1);
        let token = (u64::from(gen) << 32) | idx as u64;
        if self
            .poller
            .add(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            self.free.push(idx);
            return;
        }
        // Salt mixes the reactor index and a per-reactor accept counter
        // into the wire domain, so every connection in the process draws
        // from its own fault stream.
        let injector = match self.manager.config().chaos {
            Some(plan) => FaultInjector::new(plan.derive(
                WIRE_CONN_SALT
                    ^ u64::from(self.index).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ self.accepted_here,
            )),
            None => FaultInjector::disabled(),
        };
        self.accepted_here += 1;
        self.conns[idx] = Some(Conn {
            stream,
            state: ConnState::new(self.limits),
            token,
            in_flight_meta: None,
            registered: Interest::READ,
            requests: 0,
            injector,
            torn_cap: None,
        });
        self.totals.live.fetch_add(1, Ordering::Relaxed);
        self.totals.accepted.fetch_add(1, Ordering::Relaxed);
        telemetry::emit!(telemetry::Event::ConnAccepted {
            reactor: self.index,
            conn: token,
        });
        // A drain that began before this connection registered must
        // still cover it.
        if self.draining {
            if let Some(conn) = self.conns[idx].as_mut() {
                conn.state.begin_drain();
            }
        }
    }

    fn conn_event(&mut self, token: u64, readable: bool, writable: bool) {
        let idx = (token & 0xFFFF_FFFF) as usize;
        match self.conns.get(idx) {
            Some(Some(conn)) if conn.token == token => {}
            _ => return, // stale event for a recycled slot
        }
        if readable && !self.read_ready(idx) {
            return; // connection closed during the read
        }
        if writable {
            self.flush_writes(idx);
        }
        self.settle(idx);
    }

    /// Reads until `WouldBlock`, EOF, or the state machine stops wanting
    /// bytes. Returns false when the connection was closed.
    fn read_ready(&mut self, idx: usize) -> bool {
        let mut buf = [0u8; READ_CHUNK];
        loop {
            let Some(conn) = self.conns[idx].as_mut() else {
                return false;
            };
            if !conn.state.wants_read() {
                break;
            }
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.state.set_peer_closed();
                    break;
                }
                Ok(n) => {
                    if conn.state.ingest(&buf[..n]).is_err() {
                        // Oversize frame: kill the connection, exactly
                        // like the blocking path's read_frame error.
                        self.close_conn(idx);
                        return false;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx);
                    return false;
                }
            }
        }
        self.pump(idx)
    }

    /// Dispatches queued frames until one is in flight on a shard (or
    /// the queue empties). Immediate responses — decode errors, `Busy`
    /// refusals, `Stats`, `Shutdown` — are answered inline. Returns
    /// false when the connection was closed.
    fn pump(&mut self, idx: usize) -> bool {
        loop {
            let Some(conn) = self.conns[idx].as_mut() else {
                return false;
            };
            let Some(payload) = conn.state.next_dispatch() else {
                return true;
            };
            let token = conn.token;
            let decoded = selfprof::stage!(selfprof::Stage::FrameDecode, Request::decode(&payload));
            let immediate = match decoded {
                Err(e) => Some(Response::Error {
                    message: e.to_string(),
                }),
                Ok(Request::Shutdown) => {
                    // Reply first, then drain every reactor: the client
                    // sees the acknowledgement before its socket closes.
                    self.fanout.fire();
                    Some(Response::ShuttingDown)
                }
                Ok(Request::Stats) => {
                    let mut stats = self.manager.server_stats();
                    stats.connections = self.totals.live.load(Ordering::Relaxed);
                    stats.conns_accepted = self.totals.accepted.load(Ordering::Relaxed);
                    Some(Response::ServerStats(stats))
                }
                Ok(request) => match self.manager.prepare(request) {
                    Prepared::Immediate(response) => Some(response),
                    Prepared::Route {
                        session,
                        shard_request,
                        note,
                    } => {
                        let shard = self.manager.shard_of(session);
                        let reply = ReplyTo::Reactor {
                            token,
                            tx: self.comp_tx.clone(),
                            wake: Arc::clone(&self.wake),
                        };
                        match self.manager.submit(session, shard_request, reply) {
                            Ok(()) => {
                                let conn = self.conns[idx]
                                    .as_mut()
                                    .expect("conn vanished mid-dispatch");
                                conn.in_flight_meta = Some((shard, note));
                                return true;
                            }
                            Err(refused) => {
                                self.manager.finish(shard, &note, &refused);
                                Some(refused)
                            }
                        }
                    }
                },
            };
            if let Some(response) = immediate {
                if !self.respond_with_faults(idx, &response) {
                    return false;
                }
            }
        }
    }

    /// Frames `response` into the connection's write buffer, applying
    /// the connection's wire-fault plan on the way. Returns false when
    /// the connection was closed (oversize response or injected fault).
    fn respond_with_faults(&mut self, idx: usize, response: &Response) -> bool {
        let Some(conn) = self.conns[idx].as_mut() else {
            return false;
        };
        conn.requests += 1;
        let mut payload = response.encode();
        if !conn.injector.armed() {
            if conn.state.respond(&payload).is_err() {
                self.close_conn(idx);
                return false;
            }
            return true;
        }
        // Draw every outbound point in fixed order so the per-point
        // fault streams stay aligned no matter which fault wins
        // precedence.
        let reset = conn.injector.fire(FaultPoint::WireReset);
        let corrupt_len = conn.injector.fire(FaultPoint::WireCorruptLen);
        let corrupt_payload = conn.injector.fire(FaultPoint::WireCorruptPayload);
        let torn = conn.injector.fire(FaultPoint::WireTornWrite);
        let stall = conn.injector.fire(FaultPoint::WireStall);
        let delay = conn.injector.fire(FaultPoint::WireDelayRead);
        let token = conn.token;
        if stall {
            note_wire_fault(FaultPoint::WireStall, token);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        if delay {
            // One thread owns every connection here, so a short sleep
            // also delays this connection's subsequent reads.
            note_wire_fault(FaultPoint::WireDelayRead, token);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        if reset || corrupt_len {
            let mut frame = Vec::with_capacity(4 + payload.len());
            frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            frame.extend_from_slice(&payload);
            if reset {
                note_wire_fault(FaultPoint::WireReset, token);
                let _ = conn.stream.write(&frame[..frame.len() / 2]);
            } else {
                note_wire_fault(FaultPoint::WireCorruptLen, token);
                // Bit 30 pushes the length past the frame cap, so the
                // client rejects it instantly; the stream is desynced
                // for good either way, so the connection drops.
                frame[3] ^= 0x40;
                let _ = conn.stream.write(&frame);
            }
            self.close_conn(idx);
            return false;
        }
        if corrupt_payload {
            note_wire_fault(FaultPoint::WireCorruptPayload, token);
            // Flip a high bit of the opcode: every response opcode is in
            // 0x80..=0x8B, so the result is always invalid and the
            // client sees a decode error — never silently wrong data.
            payload[0] ^= 0x40;
        }
        if conn.state.respond(&payload).is_err() {
            self.close_conn(idx);
            return false;
        }
        if torn {
            note_wire_fault(FaultPoint::WireTornWrite, token);
            if let Some(conn) = self.conns[idx].as_mut() {
                conn.torn_cap = Some((conn.state.buffered_write_bytes() / 2).max(1));
            }
        }
        true
    }

    /// Applies a shard completion to its connection (or discards it if
    /// the slot was recycled).
    fn complete(&mut self, completion: Completion) {
        let idx = (completion.token & 0xFFFF_FFFF) as usize;
        let meta = match self.conns.get_mut(idx) {
            Some(Some(conn)) if conn.token == completion.token => conn.in_flight_meta.take(),
            _ => return,
        };
        if let Some((shard, note)) = meta {
            self.manager.finish(shard, &note, &completion.response);
        }
        if !self.respond_with_faults(idx, &completion.response) {
            return;
        }
        if self.pump(idx) {
            self.settle(idx);
        }
    }

    /// Writes buffered bytes until `WouldBlock` or empty.
    fn flush_writes(&mut self, idx: usize) {
        loop {
            let Some(conn) = self.conns[idx].as_mut() else {
                return;
            };
            let pending = conn.state.writable();
            if pending.is_empty() {
                return;
            }
            // An injected torn write caps this pass, leaving the tail
            // buffered for the next writable event.
            let cap = conn.torn_cap.take();
            let n_max = cap.map_or(pending.len(), |c| c.min(pending.len()));
            match conn.stream.write(&pending[..n_max]) {
                Ok(0) => {
                    self.close_conn(idx);
                    return;
                }
                Ok(n) => {
                    conn.state.advance_write(n);
                    if cap.is_some() {
                        return;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    telemetry::emit!(telemetry::Event::WriteStalled {
                        reactor: self.index,
                        conn: conn.token,
                        buffered: conn.state.buffered_write_bytes() as u64,
                    });
                    return;
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(idx);
                    return;
                }
            }
        }
    }

    /// Post-event bookkeeping: flush what can be flushed, close a
    /// finished connection, re-register interest if it changed.
    fn settle(&mut self, idx: usize) {
        self.flush_writes(idx);
        let Some(conn) = self.conns[idx].as_mut() else {
            return;
        };
        if conn.state.finished() {
            self.close_conn(idx);
            return;
        }
        let desired = Interest {
            readable: conn.state.wants_read(),
            writable: conn.state.wants_write(),
        };
        if desired != conn.registered {
            let fd = conn.stream.as_raw_fd();
            let token = conn.token;
            if self.poller.modify(fd, token, desired).is_ok() {
                if let Some(conn) = self.conns[idx].as_mut() {
                    conn.registered = desired;
                }
            }
        }
    }

    fn close_conn(&mut self, idx: usize) {
        let Some(conn) = self.conns[idx].take() else {
            return;
        };
        let _ = self.poller.remove(conn.stream.as_raw_fd());
        self.totals.live.fetch_sub(1, Ordering::Relaxed);
        telemetry::emit!(telemetry::Event::ConnClosed {
            reactor: self.index,
            conn: conn.token,
            requests: conn.requests,
        });
        self.free.push(idx);
    }

    fn begin_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.drain_ticks = 0;
        if let Some(listener) = self.listener.take() {
            let _ = self.poller.remove(listener.as_raw_fd());
        }
        for idx in self.open_slots() {
            if let Some(conn) = self.conns[idx].as_mut() {
                conn.state.begin_drain();
            }
            if self.pump(idx) {
                self.settle(idx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(payload: &[u8]) -> Vec<u8> {
        let mut out = (payload.len() as u32).to_le_bytes().to_vec();
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn reassembles_frames_across_arbitrary_splits() {
        let payload = Request::Query { session: 42 }.encode();
        let wire = frame(&payload);
        for split in 0..wire.len() {
            let mut state = ConnState::new(ConnLimits::default());
            state.ingest(&wire[..split]).unwrap();
            assert!(state.next_dispatch().is_none(), "split at {split}");
            state.ingest(&wire[split..]).unwrap();
            assert_eq!(state.next_dispatch(), Some(payload.clone()));
        }
    }

    #[test]
    fn oversize_length_prefix_is_fatal() {
        let mut state = ConnState::new(ConnLimits::default());
        let bad = ((MAX_FRAME_BYTES + 1) as u32).to_le_bytes();
        assert_eq!(
            state.ingest(&bad),
            Err(ConnError::Oversize {
                len: MAX_FRAME_BYTES + 1
            })
        );
    }

    #[test]
    fn queue_overflow_answers_busy_in_order() {
        let limits = ConnLimits {
            max_queued: 2,
            ..ConnLimits::default()
        };
        let mut state = ConnState::new(limits);
        let payload = Request::Query { session: 1 }.encode();
        for _ in 0..3 {
            state.ingest(&frame(&payload)).unwrap();
        }
        // Two queued, third refused. Dispatch the first...
        let first = state.next_dispatch().expect("first dispatch");
        assert_eq!(first, payload);
        state.respond(&Response::Busy.encode()).unwrap();
        // ...and the second; popping past it must emit the ordered Busy.
        let second = state.next_dispatch().expect("second dispatch");
        assert_eq!(second, payload);
        state.respond(&Response::Busy.encode()).unwrap();
        assert!(state.next_dispatch().is_none());
        // Write buffer now holds three frames: two responses + one Busy.
        let mut frames = 0;
        let mut buf = state.writable();
        while buf.len() >= 4 {
            let len = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
            buf = &buf[4 + len..];
            frames += 1;
        }
        assert_eq!(frames, 3);
    }

    #[test]
    fn soft_write_bound_refuses_new_requests() {
        let limits = ConnLimits::with_write_soft(8);
        let mut state = ConnState::new(limits);
        let payload = Request::Query { session: 1 }.encode();
        state.ingest(&frame(&payload)).unwrap();
        let _ = state.next_dispatch().expect("dispatch");
        // A response larger than the soft bound leaves the buffer hot.
        state.respond(&[0u8; 32]).unwrap();
        assert!(state.buffered_write_bytes() >= limits.write_soft);
        state.ingest(&frame(&payload)).unwrap();
        assert!(
            state.next_dispatch().is_none(),
            "request over the soft bound must not dispatch"
        );
        // Draining the peer side clears the pressure; the refusal was
        // already queued as Busy though.
        let buffered = state.buffered_write_bytes();
        state.advance_write(buffered);
        assert_eq!(state.buffered_write_bytes(), 0);
    }

    #[test]
    fn hard_write_bound_stops_reading() {
        let limits = ConnLimits::with_write_soft(4);
        let mut state = ConnState::new(limits);
        assert!(state.wants_read());
        let payload = Request::Query { session: 1 }.encode();
        state.ingest(&frame(&payload)).unwrap();
        let _ = state.next_dispatch().unwrap();
        state.respond(&vec![0u8; limits.write_hard + 1]).unwrap();
        assert!(!state.wants_read(), "hard bound must gate reads");
        let buffered = state.buffered_write_bytes();
        state.advance_write(buffered);
        assert!(state.wants_read(), "flushing reopens the read side");
    }

    #[test]
    fn drain_answers_queued_frames_with_shutting_down() {
        let mut state = ConnState::new(ConnLimits::default());
        let payload = Request::Query { session: 1 }.encode();
        state.ingest(&frame(&payload)).unwrap();
        state.ingest(&frame(&payload)).unwrap();
        let _ = state.next_dispatch().expect("in-flight dispatch");
        state.begin_drain();
        assert!(!state.wants_read());
        // In-flight reply lands first; the queued frame then resolves to
        // ShuttingDown without dispatching.
        state.respond(&Response::Busy.encode()).unwrap();
        assert!(state.next_dispatch().is_none());
        let written = state.writable().to_vec();
        // Parse both frames back out.
        let first_len = u32::from_le_bytes(written[..4].try_into().unwrap()) as usize;
        let second = &written[4 + first_len..];
        let second_len = u32::from_le_bytes(second[..4].try_into().unwrap()) as usize;
        let second_payload = &second[4..4 + second_len];
        assert_eq!(Response::decode(second_payload), Ok(Response::ShuttingDown));
        let buffered = state.buffered_write_bytes();
        state.advance_write(buffered);
        assert!(state.finished(), "drained connection closes");
    }

    #[test]
    fn peer_close_finishes_after_replies_flush() {
        let mut state = ConnState::new(ConnLimits::default());
        let payload = Request::Query { session: 9 }.encode();
        state.ingest(&frame(&payload)).unwrap();
        state.set_peer_closed();
        assert!(!state.finished(), "queued work must finish first");
        let dispatched = state.next_dispatch().expect("dispatch");
        assert_eq!(dispatched, payload);
        state.respond(&Response::Busy.encode()).unwrap();
        let buffered = state.buffered_write_bytes();
        state.advance_write(buffered);
        assert!(state.finished());
    }
}
