//! `hotpath-serve`: a sharded, session-multiplexed serving layer for the
//! hot-path prediction engines.
//!
//! The paper's pipeline — profile, predict (NET), compile, link — runs
//! per process. This crate turns it into a service: a
//! [`SessionManager`] owns a pool of worker shards, each a thread with a
//! private table of [`Session`]s, and multiplexes many concurrent
//! sessions over them. Two front-ends share one request enum:
//!
//! * **in-process** — call [`SessionManager::request`] directly;
//! * **TCP** — [`serve`] binds a listener and speaks the same
//!   [`Request`]/[`Response`] pairs as length-prefixed binary frames
//!   ([`protocol`]); [`Client`] is the matching blocking client.
//!
//! Admission control is explicit rather than elastic: bounded shard
//! queues and session tables answer [`Response::Busy`] instead of
//! buffering without limit, and per-session fuel budgets
//! ([`SessionConfig::fuel_budget`]) bound how much execution a session
//! may consume.
//!
//! Sessions can be captured into persistent snapshots
//! ([`SessionSnapshot`]) — a versioned, checksummed binary image of the
//! engine's warm state (fragments, exit counters, NET counters) plus,
//! for workload-executing sessions, the exact machine state. Restoring
//! one resumes with a warm fragment cache, and the run's final
//! statistics, memory, and globals are bit-identical to a run that was
//! never interrupted: the same invariant the trace backend already
//! guarantees for flushes and slicing, extended across process
//! boundaries.

#![warn(missing_docs)]

mod client;
mod manager;
pub mod profile_store;
pub mod protocol;
#[cfg(unix)]
mod reactor;
mod server;
mod session;
mod shard;
pub mod snapshot;
#[cfg(unix)]
mod sys;
mod wire;

pub use client::{Client, ClientError, RetryPolicy};
pub use hotpath_faultinject::{FaultPlan, FaultPoint};
pub use manager::{ServeConfig, SessionManager};
pub use profile_store::{
    MergePolicy, PrewarmProfile, ProfileError, ProfileKey, ProfileStore, ProfileStoreConfig,
    ProfileStoreStats, PublishInfo, SessionProfile, PROFILE_MAGIC, PROFILE_VERSION,
};
pub use protocol::{
    read_frame, write_frame, PrewarmOutcome, ProtocolError, Request, Response, ServerStats,
    MAX_FRAME_BYTES,
};
#[cfg(unix)]
pub use reactor::{ConnError, ConnLimits, ConnState};
pub use server::{serve, serve_blocking, DrainTrigger, ServerHandle};
pub use session::{Session, SessionConfig, SessionStatus};
pub use snapshot::{SessionSnapshot, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
#[cfg(unix)]
pub use sys::{block_until_signal, install_drain_signals, max_rss_bytes};
