//! Thin, dependency-free OS bindings for the reactor front-end: a
//! readiness poller (epoll on Linux, `poll(2)` elsewhere on unix), a
//! self-pipe waker, signal-driven drain plumbing, and peak-RSS readout.
//!
//! The workspace is deliberately free of external crates, so the handful
//! of symbols the reactor needs are declared here directly against the
//! platform libc (which `std` already links). Everything is `#[cfg(unix)]`
//! — on other platforms the serve layer falls back to the blocking
//! thread-per-connection front-end and never compiles this module.

use std::io;
use std::os::raw::{c_int, c_void};
use std::os::unix::io::RawFd;
use std::sync::atomic::{AtomicI32, Ordering};

mod ffi {
    use std::os::raw::{c_int, c_void};

    extern "C" {
        pub fn pipe(fds: *mut c_int) -> c_int;
        pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn close(fd: c_int) -> c_int;
        pub fn signal(signum: c_int, handler: usize) -> usize;
    }

    #[cfg(target_os = "linux")]
    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut super::EpollEvent)
            -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut super::EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    #[cfg(not(target_os = "linux"))]
    extern "C" {
        pub fn poll(fds: *mut super::PollFd, nfds: usize, timeout: c_int) -> c_int;
    }
}

const F_GETFL: c_int = 3;
const F_SETFL: c_int = 4;
#[cfg(target_os = "linux")]
const O_NONBLOCK: c_int = 0o4000;
#[cfg(not(target_os = "linux"))]
const O_NONBLOCK: c_int = 0x0004;

const SIGINT: c_int = 2;
const SIGTERM: c_int = 15;

fn last_error() -> io::Error {
    io::Error::last_os_error()
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(last_error())
    } else {
        Ok(ret)
    }
}

/// Marks a raw fd nonblocking (used for the self-pipe; sockets go through
/// `std`'s own `set_nonblocking`).
fn set_nonblocking_fd(fd: RawFd) -> io::Result<()> {
    // SAFETY: plain fcntl on an fd we own; no memory is passed.
    unsafe {
        let flags = cvt(ffi::fcntl(fd, F_GETFL, 0))?;
        cvt(ffi::fcntl(fd, F_SETFL, flags | O_NONBLOCK))?;
    }
    Ok(())
}

/// The readiness a registration asks for.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest — the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
}

/// One readiness notification out of [`Poller::wait`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PollEvent {
    /// The token the fd was registered under.
    pub token: u64,
    /// Readable (or hung up — a read will observe the EOF/error).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

#[cfg(target_os = "linux")]
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
pub(crate) struct EpollEvent {
    events: u32,
    data: u64,
}

/// An epoll-backed readiness poller: O(1) registration and wakeups that
/// only report ready fds, which is what lets one thread watch 10K
/// sockets.
#[cfg(target_os = "linux")]
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

#[cfg(target_os = "linux")]
impl Poller {
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const CTL_ADD: c_int = 1;
    const CTL_DEL: c_int = 2;
    const CTL_MOD: c_int = 3;
    const CLOEXEC: c_int = 0o2000000;

    /// Creates the poller.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_create1` failures.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: no pointers involved.
        let epfd = cvt(unsafe { ffi::epoll_create1(Self::CLOEXEC) })?;
        Ok(Poller { epfd })
    }

    fn mask(interest: Interest) -> u32 {
        let mut events = Self::EPOLLRDHUP;
        if interest.readable {
            events |= Self::EPOLLIN;
        }
        if interest.writable {
            events |= Self::EPOLLOUT;
        }
        events
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut event = EpollEvent {
            events: Self::mask(interest),
            data: token,
        };
        // SAFETY: `event` outlives the call; the kernel copies it.
        cvt(unsafe { ffi::epoll_ctl(self.epfd, op, fd, &mut event) })?;
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(Self::CTL_ADD, fd, token, interest)
    }

    /// Changes the interest of an already-registered fd.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(Self::CTL_MOD, fd, token, interest)
    }

    /// Removes an fd from the poller (safe to call right before closing
    /// it).
    ///
    /// # Errors
    ///
    /// Propagates `epoll_ctl` failures.
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        let mut event = EpollEvent { events: 0, data: 0 };
        // SAFETY: pre-2.6.9 kernels require a non-null event for DEL.
        cvt(unsafe { ffi::epoll_ctl(self.epfd, Self::CTL_DEL, fd, &mut event) })?;
        Ok(())
    }

    /// Blocks until at least one registered fd is ready (or `timeout_ms`
    /// elapses; `-1` waits forever), appending notifications to `out`.
    ///
    /// # Errors
    ///
    /// Propagates `epoll_wait` failures; `EINTR` is retried internally.
    pub fn wait(&self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
        let mut buf: [EpollEvent; 256] = std::array::from_fn(|_| EpollEvent { events: 0, data: 0 });
        let n = loop {
            // SAFETY: `buf` is a valid out-array of the stated length.
            let ret = unsafe {
                ffi::epoll_wait(self.epfd, buf.as_mut_ptr(), buf.len() as c_int, timeout_ms)
            };
            if ret >= 0 {
                break ret as usize;
            }
            let err = last_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for event in &buf[..n] {
            let bits = event.events;
            out.push(PollEvent {
                token: event.data,
                readable: bits
                    & (Self::EPOLLIN | Self::EPOLLHUP | Self::EPOLLRDHUP | Self::EPOLLERR)
                    != 0,
                writable: bits & (Self::EPOLLOUT | Self::EPOLLERR) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: fd owned by this struct.
        unsafe { ffi::close(self.epfd) };
    }
}

#[cfg(not(target_os = "linux"))]
#[repr(C)]
pub(crate) struct PollFd {
    fd: c_int,
    events: i16,
    revents: i16,
}

/// A `poll(2)`-backed fallback poller for non-Linux unix: O(n) per
/// wakeup, which is fine at the connection counts those hosts see in
/// development.
#[cfg(not(target_os = "linux"))]
#[derive(Debug)]
pub struct Poller {
    registrations: std::sync::Mutex<Vec<(RawFd, u64, Interest)>>,
}

#[cfg(not(target_os = "linux"))]
impl Poller {
    const POLLIN: i16 = 0x0001;
    const POLLOUT: i16 = 0x0004;
    const POLLERR: i16 = 0x0008;
    const POLLHUP: i16 = 0x0010;

    /// Creates the poller.
    ///
    /// # Errors
    ///
    /// Infallible on this backend; kept for signature parity.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            registrations: std::sync::Mutex::new(Vec::new()),
        })
    }

    /// Registers `fd` under `token` with the given interest.
    ///
    /// # Errors
    ///
    /// Infallible on this backend.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.registrations
            .lock()
            .expect("poller lock")
            .push((fd, token, interest));
        Ok(())
    }

    /// Changes the interest of an already-registered fd.
    ///
    /// # Errors
    ///
    /// Fails when `fd` was never registered.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut regs = self.registrations.lock().expect("poller lock");
        for entry in regs.iter_mut() {
            if entry.0 == fd {
                *entry = (fd, token, interest);
                return Ok(());
            }
        }
        Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"))
    }

    /// Removes an fd from the poller.
    ///
    /// # Errors
    ///
    /// Infallible on this backend (removing an unknown fd is a no-op).
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        self.registrations
            .lock()
            .expect("poller lock")
            .retain(|&(f, _, _)| f != fd);
        Ok(())
    }

    /// Blocks until a registered fd is ready, appending notifications to
    /// `out`.
    ///
    /// # Errors
    ///
    /// Propagates `poll` failures; `EINTR` is retried internally.
    pub fn wait(&self, out: &mut Vec<PollEvent>, timeout_ms: i32) -> io::Result<()> {
        let regs = self.registrations.lock().expect("poller lock").clone();
        let mut fds: Vec<PollFd> = regs
            .iter()
            .map(|&(fd, _, interest)| PollFd {
                fd,
                events: if interest.readable { Self::POLLIN } else { 0 }
                    | if interest.writable { Self::POLLOUT } else { 0 },
                revents: 0,
            })
            .collect();
        loop {
            // SAFETY: `fds` is a valid array of the stated length.
            let ret = unsafe { ffi::poll(fds.as_mut_ptr(), fds.len(), timeout_ms) };
            if ret >= 0 {
                break;
            }
            let err = last_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        }
        for (pollfd, &(_, token, _)) in fds.iter().zip(&regs) {
            if pollfd.revents == 0 {
                continue;
            }
            out.push(PollEvent {
                token,
                readable: pollfd.revents & (Self::POLLIN | Self::POLLHUP | Self::POLLERR) != 0,
                writable: pollfd.revents & (Self::POLLOUT | Self::POLLERR) != 0,
            });
        }
        Ok(())
    }
}

/// A self-pipe waker: shard workers (and the drain trigger) write one
/// byte to unblock a reactor sitting in [`Poller::wait`]. The write end
/// is nonblocking, so a full pipe — the reactor is already guaranteed to
/// wake — degrades to a no-op instead of blocking a worker.
#[derive(Debug)]
pub struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    /// Creates the pipe; both ends nonblocking.
    ///
    /// # Errors
    ///
    /// Propagates `pipe`/`fcntl` failures.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0 as c_int; 2];
        // SAFETY: `fds` is a valid out-array of two ints.
        cvt(unsafe { ffi::pipe(fds.as_mut_ptr()) })?;
        let pipe = WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        };
        set_nonblocking_fd(pipe.read_fd)?;
        set_nonblocking_fd(pipe.write_fd)?;
        Ok(pipe)
    }

    /// The read end, for registration with a [`Poller`].
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Wakes the poller (nonblocking; a full pipe already guarantees a
    /// wakeup and is silently ignored).
    pub fn wake(&self) {
        let byte = 1u8;
        // SAFETY: one-byte write from a live stack slot.
        unsafe { ffi::write(self.write_fd, (&byte as *const u8).cast::<c_void>(), 1) };
    }

    /// Drains every pending wake byte so the next `wake` edge is visible.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: reading into a valid stack buffer.
            let n =
                unsafe { ffi::read(self.read_fd, buf.as_mut_ptr().cast::<c_void>(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        // SAFETY: fds owned by this struct.
        unsafe {
            ffi::close(self.read_fd);
            ffi::close(self.write_fd);
        }
    }
}

/// Write end of the signal self-pipe; `-1` until installed. The handler
/// only does an async-signal-safe one-byte `write`.
static SIGNAL_PIPE_WRITE: AtomicI32 = AtomicI32::new(-1);

extern "C" fn on_drain_signal(_signum: c_int) {
    let fd = SIGNAL_PIPE_WRITE.load(Ordering::Relaxed);
    if fd >= 0 {
        let byte = 1u8;
        // SAFETY: `write` is async-signal-safe; one byte from a stack slot.
        unsafe { ffi::write(fd, (&byte as *const u8).cast::<c_void>(), 1) };
    }
}

/// Installs SIGINT/SIGTERM handlers that write to a self-pipe; returns
/// the (blocking) read end. A blocking `read` on it —
/// [`block_until_signal`] — returns once either signal fires, letting the
/// serve binary drain instead of dying mid-request.
///
/// # Errors
///
/// Propagates pipe creation failures.
pub fn install_drain_signals() -> io::Result<RawFd> {
    let mut fds = [0 as c_int; 2];
    // SAFETY: `fds` is a valid out-array of two ints.
    cvt(unsafe { ffi::pipe(fds.as_mut_ptr()) })?;
    // Write end nonblocking (handler must never block); read end stays
    // blocking so the watcher thread can park on it.
    set_nonblocking_fd(fds[1])?;
    SIGNAL_PIPE_WRITE.store(fds[1], Ordering::Relaxed);
    // SAFETY: installing a handler that is itself async-signal-safe.
    unsafe {
        ffi::signal(SIGINT, on_drain_signal as *const () as usize);
        ffi::signal(SIGTERM, on_drain_signal as *const () as usize);
    }
    Ok(fds[0])
}

/// Parks the calling thread until a drain signal arrives (a byte shows up
/// on the pipe from [`install_drain_signals`]).
pub fn block_until_signal(read_fd: RawFd) {
    let mut byte = 0u8;
    loop {
        // SAFETY: one-byte read into a live stack slot.
        let n = unsafe { ffi::read(read_fd, (&mut byte as *mut u8).cast::<c_void>(), 1) };
        if n == 1 {
            return;
        }
        if n < 0 && last_error().kind() == io::ErrorKind::Interrupted {
            continue;
        }
        if n == 0 {
            return; // pipe closed — treat as a drain request
        }
    }
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); `0` where unavailable. The 10K-session sweep
/// records it to prove memory stays bounded. The sampling itself lives in
/// `hotpath-selfprof`, whose background aggregator also refreshes the
/// high-water cache this reads.
pub fn max_rss_bytes() -> u64 {
    hotpath_selfprof::peak_rss_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_pipe_wakes_and_drains() {
        let pipe = WakePipe::new().expect("pipe");
        let poller = Poller::new().expect("poller");
        poller
            .add(pipe.read_fd(), 7, Interest::READ)
            .expect("register");
        pipe.wake();
        pipe.wake();
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).expect("wait");
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
        pipe.drain();
        // Drained: a zero-timeout wait sees nothing.
        events.clear();
        poller.wait(&mut events, 0).expect("wait");
        assert!(events.is_empty());
    }

    #[test]
    fn poller_reports_writable_sockets() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let stream =
            std::net::TcpStream::connect(listener.local_addr().expect("addr")).expect("connect");
        stream.set_nonblocking(true).expect("nonblocking");
        let poller = Poller::new().expect("poller");
        use std::os::unix::io::AsRawFd as _;
        let both = Interest {
            readable: true,
            writable: true,
        };
        poller.add(stream.as_raw_fd(), 1, both).expect("register");
        let mut events = Vec::new();
        poller.wait(&mut events, 1000).expect("wait");
        assert!(events.iter().any(|e| e.token == 1 && e.writable));
        poller.remove(stream.as_raw_fd()).expect("remove");
    }

    #[test]
    fn max_rss_is_positive_on_linux() {
        if cfg!(target_os = "linux") {
            assert!(max_rss_bytes() > 0);
        }
    }
}
