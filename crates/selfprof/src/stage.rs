//! The fixed set of instrumented pipeline stages.
//!
//! Stages are a closed enum rather than free-form strings so the hot path
//! can index a flat per-thread slot array with one `u8` — no hashing, no
//! interning, and (crucially for the measuring allocator) no allocation on
//! the attribution path.

/// One instrumented stage of the serve/bench pipeline.
///
/// The discriminant indexes the per-thread slot arrays, so variants must
/// stay dense from zero and [`STAGE_COUNT`] must track the count.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum Stage {
    /// Decoding a request frame off the wire (reactor and blocking paths).
    FrameDecode = 0,
    /// A shard worker handling one dispatched request.
    ShardDispatch = 1,
    /// One fueled `Vm::step_linked` slice.
    VmSlice = 2,
    /// Encoding a session snapshot.
    SnapshotSave = 3,
    /// Decoding a session snapshot (restore and warm-start paths).
    SnapshotRestore = 4,
    /// Publishing a profile into the fleet store.
    ProfilePublish = 5,
    /// Prewarming a fresh session from the fleet store aggregate.
    Prewarm = 6,
    /// A bench recorder producing one workload record.
    BenchRecord = 7,
}

/// Number of [`Stage`] variants; sizes the per-thread slot arrays.
pub const STAGE_COUNT: usize = 8;

/// Sentinel for "no stage active" in the thread-local stage cell.
#[cfg(feature = "enabled")]
pub(crate) const NO_STAGE: u8 = u8::MAX;

impl Stage {
    /// Every stage, in discriminant order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::FrameDecode,
        Stage::ShardDispatch,
        Stage::VmSlice,
        Stage::SnapshotSave,
        Stage::SnapshotRestore,
        Stage::ProfilePublish,
        Stage::Prewarm,
        Stage::BenchRecord,
    ];

    /// The stable snake_case name used in reports, JSON, and gate files.
    pub fn name(self) -> &'static str {
        match self {
            Stage::FrameDecode => "frame_decode",
            Stage::ShardDispatch => "shard_dispatch",
            Stage::VmSlice => "vm_slice",
            Stage::SnapshotSave => "snapshot_save",
            Stage::SnapshotRestore => "snapshot_restore",
            Stage::ProfilePublish => "profile_publish",
            Stage::Prewarm => "prewarm",
            Stage::BenchRecord => "bench_record",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discriminants_are_dense_and_named() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(*stage as usize, i);
            assert!(!stage.name().is_empty());
        }
        let mut names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), STAGE_COUNT, "stage names must be unique");
    }
}
