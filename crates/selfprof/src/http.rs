//! A dependency-free HTTP endpoint serving the live self-profile.
//!
//! One detached accept-loop thread on plain `std::net`; `GET /selfprof`
//! returns the current [`crate::SelfProfReport`] as JSON, anything else
//! gets a 404. Compiled unconditionally — a disabled build answers with an
//! empty report, so dashboards can poll the same URL regardless of how the
//! binary was built.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Binds `addr` (e.g. `127.0.0.1:9191`) and serves the self-profile from
/// a detached background thread. Returns the bound address (useful with
/// port `0`).
///
/// # Errors
///
/// Propagates bind/spawn failures; per-connection errors are swallowed.
pub fn serve_http(addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new()
        .name("selfprof-http".into())
        .spawn(move || {
            for mut stream in listener.incoming().flatten() {
                let _ = handle(&mut stream);
            }
        })?;
    Ok(local)
}

fn handle(stream: &mut TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 2048];
    let mut used = 0;
    // Read until the header terminator; the request body is irrelevant.
    while used < buf.len() && !buf[..used].windows(4).any(|w| w == b"\r\n\r\n") {
        match stream.read(&mut buf[used..]) {
            Ok(0) => break,
            Ok(n) => used += n,
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&buf[..used]);
    let mut parts = request.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method == "GET" && path == "/selfprof" {
        let body = crate::report().to_json();
        write!(
            stream,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    } else {
        let body = "not found\n";
        write!(
            stream,
            "HTTP/1.1 404 Not Found\r\nContent-Type: text/plain\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            body.len(),
            body
        )?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("write");
        let mut out = String::new();
        stream.read_to_string(&mut out).expect("read");
        out
    }

    #[test]
    fn endpoint_serves_report_json_and_404s() {
        let addr = serve_http("127.0.0.1:0").expect("bind");
        let ok = get(addr, "/selfprof");
        assert!(ok.starts_with("HTTP/1.1 200 OK"));
        assert!(ok.contains("\"stages\""));
        assert!(ok.contains("\"peak_rss_bytes\""));
        let missing = get(addr, "/other");
        assert!(missing.starts_with("HTTP/1.1 404"));
    }
}
