//! The serializable self-profile report.
//!
//! A [`SelfProfReport`] is the drained, merged view of every stage's
//! counters plus the process peak RSS. It has one binary encoding — magic
//! `HPSP`, a version word, and a trailing FNV-1a-64 seal, mirroring the
//! serve snapshot format (`HPSS`) — and two renderings over the same data:
//! JSON for the `/selfprof` HTTP endpoint and a fixed-width table for the
//! loadgen `--console` view.

use std::fmt::Write as _;

use hotpath_ir::fasthash::fnv1a64;
use hotpath_telemetry::Histogram;

/// Wall-time bucket upper bounds in nanoseconds: powers of two from 2^8
/// (256ns, below which `Instant` jitter dominates) to 2^36 (~69s). The
/// telemetry `POW2_BOUNDS` top out at 2^20 ≈ 1ms — too low for snapshot
/// and publish stages — so the report carries its own layout.
pub const NS_BOUNDS: [u64; 29] = {
    let mut bounds = [0u64; 29];
    let mut i = 0;
    while i < 29 {
        bounds[i] = 1u64 << (i + 8);
        i += 1;
    }
    bounds
};

/// Bucket count per stage: one per bound plus the overflow bucket.
pub const BUCKET_COUNT: usize = NS_BOUNDS.len() + 1;

/// Encoding version this build writes and the only one it reads.
pub const REPORT_VERSION: u32 = 1;

const MAGIC: &[u8; 4] = b"HPSP";

/// Why a report blob failed to decode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReportError {
    /// Shorter than the fixed header plus seal.
    TooShort,
    /// Leading bytes are not `HPSP`.
    BadMagic,
    /// Version word is not [`REPORT_VERSION`].
    UnsupportedVersion(u32),
    /// The trailing FNV seal does not match the content.
    ChecksumMismatch,
    /// Structurally invalid content (field named for diagnostics).
    Malformed(&'static str),
}

impl std::fmt::Display for ReportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReportError::TooShort => write!(f, "report blob too short"),
            ReportError::BadMagic => write!(f, "bad report magic"),
            ReportError::UnsupportedVersion(v) => {
                write!(f, "unsupported report version {v}")
            }
            ReportError::ChecksumMismatch => write!(f, "report checksum mismatch"),
            ReportError::Malformed(field) => write!(f, "malformed report field: {field}"),
        }
    }
}

impl std::error::Error for ReportError {}

/// One stage's merged totals.
#[derive(Clone, PartialEq, Debug)]
pub struct StageReport {
    /// Stable stage name (`frame_decode`, `vm_slice`, …).
    pub name: String,
    /// Wall-time distribution over [`NS_BOUNDS`]; `total()` is the visit
    /// count, `sum()`/`max()` are nanoseconds.
    pub wall: Histogram,
    /// Bytes requested from the allocator while this stage was innermost.
    pub alloc_bytes: u64,
    /// Allocation calls while this stage was innermost.
    pub alloc_count: u64,
    /// Largest single allocation attributed to this stage.
    pub bytes_max_single: u64,
    /// Most bytes allocated over one visit (nested stages included).
    pub bytes_max_visit: u64,
    /// Most allocations over one visit (nested stages included).
    pub count_max_visit: u64,
}

impl StageReport {
    /// Completed visits.
    pub fn visits(&self) -> u64 {
        self.wall.total()
    }
}

/// The full self-profile: every active stage plus process peak RSS.
#[derive(Clone, PartialEq, Debug)]
pub struct SelfProfReport {
    /// Encoding version (always [`REPORT_VERSION`] for in-process
    /// reports).
    pub version: u32,
    /// Process peak RSS in bytes at snapshot time, `0` where unavailable.
    pub peak_rss_bytes: u64,
    /// Stages that saw at least one visit or allocation, in [`crate::Stage`]
    /// order.
    pub stages: Vec<StageReport>,
}

impl SelfProfReport {
    /// A report with no stage data (what a disabled build produces).
    pub fn empty() -> Self {
        SelfProfReport {
            version: REPORT_VERSION,
            peak_rss_bytes: crate::rss::peak_rss_bytes(),
            stages: Vec::new(),
        }
    }

    /// True when no stage recorded anything.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// The stage entry with this name, if it was active.
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Serializes to the sealed `HPSP` binary form.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.stages.len() * (16 + BUCKET_COUNT * 8));
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, REPORT_VERSION);
        put_u64(&mut out, self.peak_rss_bytes);
        put_u32(&mut out, self.stages.len() as u32);
        for stage in &self.stages {
            put_str(&mut out, &stage.name);
            put_u64(&mut out, stage.wall.sum());
            put_u64(&mut out, stage.wall.max());
            put_u32(&mut out, BUCKET_COUNT as u32);
            for (_, count) in stage.wall.bucket_counts() {
                put_u64(&mut out, count);
            }
            put_u64(&mut out, stage.alloc_bytes);
            put_u64(&mut out, stage.alloc_count);
            put_u64(&mut out, stage.bytes_max_single);
            put_u64(&mut out, stage.bytes_max_visit);
            put_u64(&mut out, stage.count_max_visit);
        }
        let seal = fnv1a64(&out);
        put_u64(&mut out, seal);
        out
    }

    /// Decodes and verifies a sealed `HPSP` blob.
    ///
    /// # Errors
    ///
    /// Returns a [`ReportError`] naming what is wrong with the blob.
    pub fn decode(bytes: &[u8]) -> Result<Self, ReportError> {
        // Header (magic + version + rss + count) and trailing seal.
        if bytes.len() < 4 + 4 + 8 + 4 + 8 {
            return Err(ReportError::TooShort);
        }
        if &bytes[..4] != MAGIC {
            return Err(ReportError::BadMagic);
        }
        let (content, seal_bytes) = bytes.split_at(bytes.len() - 8);
        let seal = u64::from_le_bytes(seal_bytes.try_into().expect("8 bytes"));
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != REPORT_VERSION {
            // Version is checked before the seal so a reader can give a
            // precise error for a future format it cannot verify.
            return Err(ReportError::UnsupportedVersion(version));
        }
        if fnv1a64(content) != seal {
            return Err(ReportError::ChecksumMismatch);
        }
        let mut r = Reader {
            bytes: &content[8..],
        };
        let peak_rss_bytes = r.u64("peak_rss")?;
        let stage_count = r.u32("stage_count")? as usize;
        if stage_count > crate::STAGE_COUNT {
            return Err(ReportError::Malformed("stage_count"));
        }
        let mut stages = Vec::with_capacity(stage_count);
        for _ in 0..stage_count {
            let name = r.str("stage_name")?.to_string();
            let wall_sum = r.u64("wall_ns_sum")?;
            let wall_max = r.u64("wall_ns_max")?;
            let buckets = r.u32("bucket_count")? as usize;
            if buckets != BUCKET_COUNT {
                return Err(ReportError::Malformed("bucket_count"));
            }
            let mut counts = Vec::with_capacity(BUCKET_COUNT);
            for _ in 0..BUCKET_COUNT {
                counts.push(r.u64("bucket")?);
            }
            let wall = Histogram::from_parts(&NS_BOUNDS, counts, wall_sum, wall_max)
                .map_err(|_| ReportError::Malformed("wall histogram"))?;
            stages.push(StageReport {
                name,
                wall,
                alloc_bytes: r.u64("alloc_bytes")?,
                alloc_count: r.u64("alloc_count")?,
                bytes_max_single: r.u64("bytes_max_single")?,
                bytes_max_visit: r.u64("bytes_max_visit")?,
                count_max_visit: r.u64("count_max_visit")?,
            });
        }
        if !r.bytes.is_empty() {
            return Err(ReportError::Malformed("trailing bytes"));
        }
        Ok(SelfProfReport {
            version,
            peak_rss_bytes,
            stages,
        })
    }

    /// Renders the report as a JSON document (the `/selfprof` body).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\n  \"version\": {},\n  \"enabled\": {},\n  \"peak_rss_bytes\": {},\n  \"stages\": [",
            self.version,
            crate::enabled(),
            self.peak_rss_bytes
        );
        let mut first = true;
        for stage in &self.stages {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"stage\": \"{}\", \"visits\": {}, \"wall_ns_sum\": {}, \
                 \"wall_ns_max\": {}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}, \
                 \"alloc_bytes\": {}, \"alloc_count\": {}, \"bytes_max_single\": {}, \
                 \"bytes_max_visit\": {}, \"count_max_visit\": {}}}",
                stage.name,
                stage.visits(),
                stage.wall.sum(),
                stage.wall.max(),
                stage.wall.percentile(0.50),
                stage.wall.percentile(0.95),
                stage.wall.percentile(0.99),
                stage.alloc_bytes,
                stage.alloc_count,
                stage.bytes_max_single,
                stage.bytes_max_visit,
                stage.count_max_visit,
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the report as a fixed-width table (the `--console` view).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<17} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9} {:>10}",
            "stage", "visits", "p50", "p95", "p99", "alloc", "allocs", "max/visit"
        );
        if self.stages.is_empty() {
            let _ = writeln!(out, "(no samples — selfprof feature disabled or idle)");
        }
        for stage in &self.stages {
            let _ = writeln!(
                out,
                "{:<17} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9} {:>10}",
                stage.name,
                stage.visits(),
                fmt_ns(stage.wall.percentile(0.50)),
                fmt_ns(stage.wall.percentile(0.95)),
                fmt_ns(stage.wall.percentile(0.99)),
                fmt_bytes(stage.alloc_bytes),
                stage.alloc_count,
                fmt_bytes(stage.bytes_max_visit),
            );
        }
        let _ = writeln!(out, "peak rss {}", fmt_bytes(self.peak_rss_bytes));
        out
    }
}

/// Human scale for nanosecond readouts (`842ns`, `3.1us`, `2.4ms`, …).
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns}ns"),
        1_000..=999_999 => format!("{:.1}us", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

/// Human scale for byte readouts.
fn fmt_bytes(bytes: u64) -> String {
    match bytes {
        0..=1023 => format!("{bytes}B"),
        1024..=1_048_575 => format!("{:.1}KiB", bytes as f64 / 1024.0),
        1_048_576..=1_073_741_823 => format!("{:.1}MiB", bytes as f64 / 1_048_576.0),
        _ => format!("{:.2}GiB", bytes as f64 / 1_073_741_824.0),
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, field: &'static str) -> Result<&'a [u8], ReportError> {
        if self.bytes.len() < n {
            return Err(ReportError::Malformed(field));
        }
        let (head, tail) = self.bytes.split_at(n);
        self.bytes = tail;
        Ok(head)
    }

    fn u32(&mut self, field: &'static str) -> Result<u32, ReportError> {
        Ok(u32::from_le_bytes(
            self.take(4, field)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, field: &'static str) -> Result<u64, ReportError> {
        Ok(u64::from_le_bytes(
            self.take(8, field)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self, field: &'static str) -> Result<&'a str, ReportError> {
        let len = self.u32(field)? as usize;
        if len > 64 {
            return Err(ReportError::Malformed(field));
        }
        std::str::from_utf8(self.take(len, field)?).map_err(|_| ReportError::Malformed(field))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> SelfProfReport {
        let mut wall = Histogram::new(&NS_BOUNDS);
        for ns in [300, 5_000, 5_000, 2_000_000] {
            wall.add(ns);
        }
        SelfProfReport {
            version: REPORT_VERSION,
            peak_rss_bytes: 123 << 20,
            stages: vec![StageReport {
                name: "vm_slice".to_string(),
                wall,
                alloc_bytes: 4096,
                alloc_count: 17,
                bytes_max_single: 1024,
                bytes_max_visit: 2048,
                count_max_visit: 9,
            }],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let report = sample_report();
        let blob = report.encode();
        let back = SelfProfReport::decode(&blob).expect("decode");
        assert_eq!(back, report);
        assert_eq!(back.stage("vm_slice").unwrap().visits(), 4);
        assert!(back.stage("prewarm").is_none());
    }

    #[test]
    fn decode_rejects_corruption() {
        let report = sample_report();
        let blob = report.encode();
        assert_eq!(
            SelfProfReport::decode(&blob[..10]),
            Err(ReportError::TooShort)
        );
        let mut bad_magic = blob.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            SelfProfReport::decode(&bad_magic),
            Err(ReportError::BadMagic)
        );
        let mut bad_version = blob.clone();
        bad_version[4] = 99;
        assert_eq!(
            SelfProfReport::decode(&bad_version),
            Err(ReportError::UnsupportedVersion(99))
        );
        let mut flipped = blob.clone();
        *flipped.last_mut().unwrap() ^= 1;
        assert_eq!(
            SelfProfReport::decode(&flipped),
            Err(ReportError::ChecksumMismatch)
        );
        let mut truncated = blob.clone();
        truncated.truncate(blob.len() - 12);
        assert!(SelfProfReport::decode(&truncated).is_err());
    }

    #[test]
    fn json_and_table_render_percentiles() {
        let report = sample_report();
        let json = report.to_json();
        assert!(json.contains("\"stage\": \"vm_slice\""));
        assert!(json.contains("\"visits\": 4"));
        // 4 samples: p50 is the 2nd (5000ns bucket → le 8192).
        assert!(json.contains("\"p50_ns\": 8192"));
        // p99 lands on the last sample's bucket (2ms → le 2^21 = 2097152).
        assert!(json.contains("\"p99_ns\": 2097152"));
        let table = report.render_table();
        assert!(table.contains("vm_slice"));
        assert!(table.contains("peak rss"));
        assert!(SelfProfReport::empty()
            .render_table()
            .contains("no samples"));
    }
}
