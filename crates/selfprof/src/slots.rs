//! Per-thread counter slots and the background aggregator.
//!
//! Each instrumented thread owns a [`ThreadSlot`]: a flat array of relaxed
//! atomics, one [`StageSlot`] per [`Stage`]. Stage guards and the measuring
//! allocator bump only their own thread's slot, so the hot path never takes
//! a lock and never contends a shared cache line with another thread. A
//! background aggregator periodically *drains* every slot — swapping the
//! counters back to zero and folding the deltas into the global
//! accumulator — so reports are cheap to produce and short-lived threads
//! (loadgen drivers) do not pin memory: once a thread exits, its slot is
//! drained one last time and dropped from the registry.

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::report::BUCKET_COUNT;
use crate::stage::{NO_STAGE, STAGE_COUNT};

/// Per-stage counters for one thread. All atomics are accessed with
/// relaxed ordering: each is an independent monotonic counter and the
/// drain only needs eventual, not instantaneous, consistency.
pub(crate) struct StageSlot {
    /// Completed visits (bumped once per guard drop, with the bucket).
    pub(crate) visits: AtomicU64,
    pub(crate) wall_ns_sum: AtomicU64,
    pub(crate) wall_ns_max: AtomicU64,
    pub(crate) wall_buckets: [AtomicU64; BUCKET_COUNT],
    pub(crate) alloc_bytes: AtomicU64,
    pub(crate) alloc_count: AtomicU64,
    /// Largest single allocation attributed to this stage.
    pub(crate) bytes_max_single: AtomicU64,
    /// Most bytes allocated during one visit (nested stages included).
    pub(crate) bytes_max_visit: AtomicU64,
    /// Most allocations made during one visit (nested stages included).
    pub(crate) count_max_visit: AtomicU64,
}

impl StageSlot {
    fn new() -> Self {
        StageSlot {
            visits: AtomicU64::new(0),
            wall_ns_sum: AtomicU64::new(0),
            wall_ns_max: AtomicU64::new(0),
            wall_buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            alloc_bytes: AtomicU64::new(0),
            alloc_count: AtomicU64::new(0),
            bytes_max_single: AtomicU64::new(0),
            bytes_max_visit: AtomicU64::new(0),
            count_max_visit: AtomicU64::new(0),
        }
    }
}

/// One thread's complete counter block, shared with the registry via
/// `Arc` so the aggregator can drain it while the thread runs.
pub(crate) struct ThreadSlot {
    pub(crate) stages: [StageSlot; STAGE_COUNT],
}

impl ThreadSlot {
    fn new() -> Self {
        ThreadSlot {
            stages: std::array::from_fn(|_| StageSlot::new()),
        }
    }
}

/// Plain (non-atomic) per-stage totals: the drained, merged view.
#[derive(Clone, Copy)]
pub(crate) struct StageAccum {
    pub(crate) visits: u64,
    pub(crate) wall_ns_sum: u64,
    pub(crate) wall_ns_max: u64,
    pub(crate) wall_buckets: [u64; BUCKET_COUNT],
    pub(crate) alloc_bytes: u64,
    pub(crate) alloc_count: u64,
    pub(crate) bytes_max_single: u64,
    pub(crate) bytes_max_visit: u64,
    pub(crate) count_max_visit: u64,
}

impl StageAccum {
    const fn new() -> Self {
        StageAccum {
            visits: 0,
            wall_ns_sum: 0,
            wall_ns_max: 0,
            wall_buckets: [0; BUCKET_COUNT],
            alloc_bytes: 0,
            alloc_count: 0,
            bytes_max_single: 0,
            bytes_max_visit: 0,
            count_max_visit: 0,
        }
    }
}

/// The global accumulator all slots drain into.
pub(crate) struct Accum {
    pub(crate) stages: [StageAccum; STAGE_COUNT],
}

impl Accum {
    const fn new() -> Self {
        Accum {
            stages: [StageAccum::new(); STAGE_COUNT],
        }
    }
}

/// Every live (and recently dead, not-yet-drained) thread slot.
static REGISTRY: Mutex<Vec<Arc<ThreadSlot>>> = Mutex::new(Vec::new());

/// Drained totals. Locked only by drains and report snapshots.
static ACCUM: Mutex<Accum> = Mutex::new(Accum::new());

thread_local! {
    /// Raw pointer to this thread's slot, null until registered. A plain
    /// const-initialized `Cell` with no destructor: reading it never
    /// allocates and never fails, which the allocator hook relies on.
    /// The pointee is kept alive by HOLDER (and the registry), and HOLDER's
    /// destructor nulls this cell before releasing its `Arc`.
    static SLOT_PTR: Cell<*const ThreadSlot> = const { Cell::new(std::ptr::null()) };

    /// Discriminant of the innermost active stage, `NO_STAGE` outside any
    /// guard. The allocator attributes to this stage.
    static CURRENT_STAGE: Cell<u8> = const { Cell::new(NO_STAGE) };

    /// Monotonic bytes/count allocated on this thread, bumped by the
    /// measuring allocator regardless of stage. Guards snapshot these at
    /// entry and diff at exit for the per-visit maxima, so the values are
    /// immune to concurrent drain swaps of the slot atomics.
    static VISIT_BYTES: Cell<u64> = const { Cell::new(0) };
    static VISIT_COUNT: Cell<u64> = const { Cell::new(0) };

    /// Owns this thread's registry `Arc`; its destructor nulls `SLOT_PTR`
    /// first so allocator callbacks during TLS teardown skip attribution.
    static HOLDER: RefCell<Option<SlotHolder>> = const { RefCell::new(None) };
}

struct SlotHolder(#[allow(dead_code)] Arc<ThreadSlot>);

impl Drop for SlotHolder {
    fn drop(&mut self) {
        let _ = SLOT_PTR.try_with(|c| c.set(std::ptr::null()));
    }
}

/// This thread's slot pointer, registering the thread on first use.
/// Registration runs in guard-entry context (never inside the allocator
/// hook), so the allocations it makes are safe.
pub(crate) fn slot_ptr() -> *const ThreadSlot {
    let existing = SLOT_PTR.with(|c| c.get());
    if !existing.is_null() {
        return existing;
    }
    let arc = Arc::new(ThreadSlot::new());
    let ptr = Arc::as_ptr(&arc);
    registry_lock().push(arc.clone());
    HOLDER.with(|h| *h.borrow_mut() = Some(SlotHolder(arc)));
    SLOT_PTR.with(|c| c.set(ptr));
    ensure_aggregator();
    ptr
}

/// Swaps the current-stage cell, returning the previous value.
pub(crate) fn swap_current_stage(stage: u8) -> u8 {
    CURRENT_STAGE.with(|c| c.replace(stage))
}

/// Current values of the monotonic per-thread allocation counters.
pub(crate) fn visit_marks() -> (u64, u64) {
    (VISIT_BYTES.with(Cell::get), VISIT_COUNT.with(Cell::get))
}

/// Attribution entry point for the measuring allocator. Must not
/// allocate: it touches only const-initialized, destructor-free TLS cells
/// and the pre-allocated slot atomics.
#[cfg(feature = "alloc")]
pub(crate) fn note_alloc(bytes: u64) {
    let _ = VISIT_BYTES.try_with(|c| c.set(c.get().wrapping_add(bytes)));
    let _ = VISIT_COUNT.try_with(|c| c.set(c.get().wrapping_add(1)));
    let ptr = match SLOT_PTR.try_with(|c| c.get()) {
        Ok(p) if !p.is_null() => p,
        _ => return,
    };
    let stage = match CURRENT_STAGE.try_with(|c| c.get()) {
        Ok(s) if (s as usize) < STAGE_COUNT => s as usize,
        _ => return,
    };
    // SAFETY: SLOT_PTR is non-null only between registration and the
    // holder's destructor, and the registry keeps the pointee alive for
    // that whole window (drains only free slots once the holder is gone).
    let slot = unsafe { &*ptr };
    let s = &slot.stages[stage];
    s.alloc_bytes.fetch_add(bytes, Relaxed);
    s.alloc_count.fetch_add(1, Relaxed);
    s.bytes_max_single.fetch_max(bytes, Relaxed);
}

fn registry_lock() -> std::sync::MutexGuard<'static, Vec<Arc<ThreadSlot>>> {
    REGISTRY.lock().unwrap_or_else(|p| p.into_inner())
}

pub(crate) fn accum_lock() -> std::sync::MutexGuard<'static, Accum> {
    ACCUM.lock().unwrap_or_else(|p| p.into_inner())
}

/// Drains every registered slot into the accumulator: counters swap back
/// to zero (deltas add), maxima fold with `max`. Slots whose owning
/// thread has exited (registry holds the last `Arc`) are dropped after
/// this final drain, bounding memory under thread churn.
pub(crate) fn drain() {
    let mut registry = registry_lock();
    let mut accum = accum_lock();
    registry.retain(|slot| {
        for (acc, live) in accum.stages.iter_mut().zip(&slot.stages) {
            acc.visits += live.visits.swap(0, Relaxed);
            acc.wall_ns_sum += live.wall_ns_sum.swap(0, Relaxed);
            acc.wall_ns_max = acc.wall_ns_max.max(live.wall_ns_max.swap(0, Relaxed));
            for (a, b) in acc.wall_buckets.iter_mut().zip(&live.wall_buckets) {
                *a += b.swap(0, Relaxed);
            }
            acc.alloc_bytes += live.alloc_bytes.swap(0, Relaxed);
            acc.alloc_count += live.alloc_count.swap(0, Relaxed);
            acc.bytes_max_single = acc
                .bytes_max_single
                .max(live.bytes_max_single.swap(0, Relaxed));
            acc.bytes_max_visit = acc
                .bytes_max_visit
                .max(live.bytes_max_visit.swap(0, Relaxed));
            acc.count_max_visit = acc
                .count_max_visit
                .max(live.count_max_visit.swap(0, Relaxed));
        }
        Arc::strong_count(slot) > 1
    });
}

/// Spawns the background aggregator once per process: every ~200ms it
/// drains the slots and refreshes the cached peak-RSS high-water mark.
pub(crate) fn ensure_aggregator() {
    static AGGREGATOR: OnceLock<()> = OnceLock::new();
    AGGREGATOR.get_or_init(|| {
        let _ = std::thread::Builder::new()
            .name("selfprof-aggregator".into())
            .spawn(|| loop {
                std::thread::park_timeout(Duration::from_millis(200));
                drain();
                crate::rss::refresh_cache();
            });
    });
}
