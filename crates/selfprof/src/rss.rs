//! Peak-RSS sampling with a background-refreshed high-water cache.
//!
//! `VmHWM` in `/proc/self/status` is the kernel's own high-water mark, so
//! a point sample is already monotonic — but only on Linux, and only when
//! someone asks. The aggregator calls [`refresh_cache`] periodically so
//! sweep curves read a mark that was actually maintained during the run,
//! and [`peak_rss_bytes`] folds the cache with a fresh direct sample so
//! callers always see the larger of the two.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Largest RSS ever observed by any sample in this process.
static CACHED_PEAK: AtomicU64 = AtomicU64::new(0);

/// Peak resident set size of this process in bytes; `0` where
/// unavailable. The maximum of a fresh `VmHWM` sample and the
/// aggregator-maintained cache.
pub fn peak_rss_bytes() -> u64 {
    let direct = sample();
    CACHED_PEAK.fetch_max(direct, Relaxed);
    CACHED_PEAK.load(Relaxed).max(direct)
}

/// Folds a fresh sample into the cached high-water mark (called from the
/// background aggregator; unused — beyond tests — when `enabled` is off).
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) fn refresh_cache() {
    let direct = sample();
    CACHED_PEAK.fetch_max(direct, Relaxed);
}

/// One direct `VmHWM` read from `/proc/self/status` (Linux), else `0`.
fn sample() -> u64 {
    #[cfg(target_os = "linux")]
    {
        if let Ok(status) = std::fs::read_to_string("/proc/self/status") {
            for line in status.lines() {
                if let Some(rest) = line.strip_prefix("VmHWM:") {
                    let kib: u64 = rest
                        .trim()
                        .trim_end_matches("kB")
                        .trim()
                        .parse()
                        .unwrap_or(0);
                    return kib * 1024;
                }
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_positive_on_linux_and_monotonic() {
        if cfg!(target_os = "linux") {
            let first = peak_rss_bytes();
            assert!(first > 0);
            refresh_cache();
            assert!(peak_rss_bytes() >= first);
        }
    }
}
