//! The measuring global allocator.
//!
//! [`MeasuringAlloc`] wraps [`System`] and attributes every allocation to
//! the stage active on the allocating thread. The hook path is careful
//! never to allocate itself: it touches only const-initialized,
//! destructor-free thread-local cells and pre-allocated per-thread atomics
//! (see `slots::note_alloc`), so re-entrancy is impossible by
//! construction.
//!
//! The `#[global_allocator]` registration lives behind the `alloc`
//! feature: a default build links [`System`] directly and carries zero
//! overhead. Deallocations are deliberately not tracked — the gate metric
//! is allocation *pressure* on the serve path (bytes and count requested
//! per block), not live heap size, and skipping the free side halves the
//! hook cost.

use std::alloc::{GlobalAlloc, Layout, System};

/// A [`System`] wrapper that reports each allocation's size to the
/// self-profiler's per-thread stage slots.
#[derive(Debug, Default, Clone, Copy)]
pub struct MeasuringAlloc;

// SAFETY: defers all allocation to `System`; the bookkeeping side effect
// never allocates and never observes the returned block.
unsafe impl GlobalAlloc for MeasuringAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            crate::slots::note_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc_zeroed(layout);
        if !ptr.is_null() {
            crate::slots::note_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            // A grow/shrink is one fresh request for `new_size` bytes:
            // count it like an allocation so realloc-heavy code (Vec
            // growth) shows up in the pressure numbers.
            crate::slots::note_alloc(new_size as u64);
        }
        new_ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }
}

/// The process-wide allocator when the `alloc` feature is on.
#[global_allocator]
static GLOBAL: MeasuringAlloc = MeasuringAlloc;
